//! A full statistical fault-injection campaign on one component, with the
//! Leveugle-style sampling statistics the paper uses (§III.A).
//!
//! ```text
//! cargo run --release -p mbu-gefin --example component_campaign [component] [workload] [runs]
//! # e.g.
//! cargo run --release -p mbu-gefin --example component_campaign dtlb qsort 500
//! ```

use mbu_cpu::HwComponent;
use mbu_gefin::avf::ClassBreakdown;
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::stats::{error_margin, fault_population, sample_size, Z_99};
use mbu_gefin::tech::component_bits;
use mbu_workloads::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let component: HwComponent = args
        .next()
        .map(|s| s.parse().expect("component: l1d|l1i|l2|regfile|dtlb|itlb"))
        .unwrap_or(HwComponent::DTlb);
    let workload: Workload = args
        .next()
        .map(|s| s.parse().expect("unknown workload name"))
        .unwrap_or(Workload::Qsort);
    let runs: usize = args.next().map(|s| s.parse().expect("runs")).unwrap_or(300);

    println!("campaign: {component} / {workload}, 1-3 bit faults, {runs} runs each");
    for faults in 1..=3 {
        let result = Campaign::new(
            CampaignConfig::new(workload, component, faults)
                .runs(runs)
                .seed(99),
        )
        .run();
        let b = ClassBreakdown::from_counts(&result.counts);
        println!("\n{faults}-bit faults: AVF = {:.2}%", b.avf() * 100.0);
        println!("  {b}");

        // The statistics the paper reports: the fault population is every
        // bit at every cycle; the achieved error margin uses the measured
        // AVF as the probability estimate (tighter than the p = 0.5 prior).
        let population = fault_population(component_bits(component), result.fault_free_cycles);
        let planned = sample_size(population, 0.0288, Z_99, 0.5).expect("valid sampling inputs");
        let achieved = error_margin(population, runs as u64, Z_99, b.avf().clamp(0.01, 0.99))
            .expect("valid sampling inputs");
        println!(
            "  population {population} fault sites; 2.88% margin needs {planned} runs; \
             these {runs} runs give ±{:.2}% at 99% confidence",
            achieved * 100.0
        );
    }
}
