//! Quickstart: inject one spatial multi-bit upset into the L1 data cache
//! while the SHA-1 workload runs, and classify the outcome.
//!
//! ```text
//! cargo run --release -p mbu-gefin --example quickstart
//! ```

use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::classify::{classify, FaultEffect};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_workloads::Workload;

fn main() {
    let workload = Workload::Sha;
    let program = workload.program();
    let core = CoreConfig::cortex_a9_like();

    // 1. Fault-free golden run: reference output and execution time.
    let golden = Simulator::new(core, &program).run(u64::MAX / 8);
    let RunEnd::Exited { code: golden_code } = golden.end else {
        panic!("fault-free run must exit cleanly");
    };
    println!(
        "fault-free: {} cycles, {} instructions, {} output bytes",
        golden.cycles,
        golden.instructions,
        golden.output.len()
    );

    // 2. Generate a double-bit fault in a 3x3 cluster and pick a cycle.
    let mut gen = MaskGenerator::seeded(2024, ClusterSpec::DEFAULT);
    let mut sim = Simulator::new(core, &program);
    let inject_at = gen.injection_cycle(golden.cycles);
    let mask = gen.generate(sim.component_geometry(HwComponent::L1D), 2);
    println!("injecting {mask} at cycle {inject_at}:");
    for line in mask.pattern().lines() {
        println!("    {line}");
    }

    // 3. Run to the injection point, flip the bits, run to completion.
    sim.run_until_cycle(inject_at);
    sim.inject_flips(HwComponent::L1D, &mask.coords);
    let end = sim
        .run_until_cycle(golden.cycles * 4)
        .unwrap_or(RunEnd::CycleLimit);
    let result = mbu_cpu::RunResult {
        end,
        output: sim.output().to_vec(),
        cycles: sim.cycle(),
        instructions: sim.instructions(),
    };

    // 4. Classify against the golden run (paper §III.C).
    let effect = classify(&result, &golden.output, golden_code);
    println!(
        "outcome: {effect} (ended {:?} after {} cycles)",
        result.end, result.cycles
    );
    match effect {
        FaultEffect::Masked => println!("the flipped bits were never consumed — output identical"),
        FaultEffect::Sdc => println!("silent data corruption — output differs, no error raised"),
        other => println!("abnormal termination class: {other}"),
    }
}
