//! Technology-node scaling (the paper's §V–VI): combine per-cardinality
//! AVFs with the per-node MBU rates (Table VI) and raw FIT rates
//! (Table VII) to produce Fig. 7 / Fig. 8-style views.
//!
//! Uses the paper's published Table V AVFs by default so it runs instantly;
//! pass `--measure` to measure a quick register-file campaign instead.
//!
//! ```text
//! cargo run --release -p mbu-gefin --example technology_scaling [--measure]
//! ```

use mbu_cpu::HwComponent;
use mbu_gefin::avf::ComponentAvf;
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::fit::cpu_fit;
use mbu_gefin::paper;
use mbu_gefin::tech::{assessment_gap, node_avf, TechNode};
use mbu_workloads::Workload;

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let mut avfs = paper::table5_avfs();

    if measure {
        println!("measuring a quick register-file campaign (sha, 100 runs per cardinality)...");
        let per_card: Vec<f64> = (1..=3)
            .map(|faults| {
                Campaign::new(
                    CampaignConfig::new(Workload::Sha, HwComponent::RegFile, faults)
                        .runs(100)
                        .seed(7),
                )
                .run()
                .avf()
            })
            .collect();
        let measured = ComponentAvf::new(per_card[0], per_card[1], per_card[2]);
        println!("measured register-file AVF: {measured}");
        avfs.insert(HwComponent::RegFile, measured);
    } else {
        println!("using the paper's published Table V AVFs (pass --measure to measure)");
    }

    println!("\naggregate multi-bit AVF per node (Eq. 3) — register file:");
    let rf = &avfs[&HwComponent::RegFile];
    for node in TechNode::ALL {
        println!(
            "  {node:>7}: single-bit {:.2}%  aggregate {:.2}%  gap {:+.1}%",
            rf.single * 100.0,
            node_avf(rf, node) * 100.0,
            assessment_gap(rf, node) * 100.0
        );
    }

    println!("\nCPU FIT per node (Eq. 4) and the share a single-bit-only analysis misses:");
    for node in TechNode::ALL {
        let fit = cpu_fit(&avfs, node);
        println!(
            "  {node:>7}: FIT {:>7.4}  (single-bit only {:>7.4}, MBU share {:>5.1}%)",
            fit.total,
            fit.single_bit_only,
            fit.mbu_contribution_pct()
        );
    }
    let fit22 = cpu_fit(&avfs, TechNode::N22);
    println!(
        "\nheadline: at 22 nm, multi-bit upsets contribute {:.0}% of the CPU FIT \
         (the paper reports 21%)",
        fit22.mbu_contribution_pct()
    );
}
