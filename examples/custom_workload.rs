//! Bring your own workload: assemble a program from source text, validate
//! it against the architectural interpreter, then run an injection campaign
//! on it.
//!
//! ```text
//! cargo run --release -p mbu-gefin --example custom_workload
//! ```

use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::classify::{classify, ClassCounts};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_isa::asm::assemble;
use mbu_isa::interp::ArchInterpreter;

/// A small matrix-multiply kernel written directly in the ISA's assembly
/// dialect: C = A × B over 8×8 word matrices, then checksum.
const SOURCE: &str = r#"
.text
main:
    li   r1, 0               # i
i_loop:
    li   r4, 0               # j
j_loop:
    li   r5, 0               # k
    li   r6, 0               # acc
k_loop:
    # a[i*8+k]
    slli r7, r1, 3
    add  r7, r7, r5
    slli r7, r7, 2
    la   r8, mat_a
    add  r7, r8, r7
    lw   r7, 0(r7)
    # b[k*8+j]
    slli r8, r5, 3
    add  r8, r8, r4
    slli r8, r8, 2
    la   r9, mat_b
    add  r8, r9, r8
    lw   r8, 0(r8)
    mul  r7, r7, r8
    add  r6, r6, r7
    addi r5, r5, 1
    li   r7, 8
    blt  r5, r7, k_loop
    # c[i*8+j] = acc
    slli r7, r1, 3
    add  r7, r7, r4
    slli r7, r7, 2
    la   r8, mat_c
    add  r7, r8, r7
    sw   r6, 0(r7)
    addi r4, r4, 1
    li   r7, 8
    blt  r4, r7, j_loop
    addi r1, r1, 1
    li   r7, 8
    blt  r1, r7, i_loop
    # checksum C
    la   r1, mat_c
    li   r4, 64
    li   r5, 0
ck:
    lw   r6, 0(r1)
    li   r7, 31
    mul  r5, r5, r7
    add  r5, r5, r6
    addi r1, r1, 4
    addi r4, r4, -1
    bnez r4, ck
    li   r2, 2
    mv   r3, r5
    syscall
    li   r2, 0
    li   r3, 0
    syscall
.data
mat_a:
    .word 1, 2, 3, 4, 5, 6, 7, 8
    .word 8, 7, 6, 5, 4, 3, 2, 1
    .word 2, 4, 6, 8, 1, 3, 5, 7
    .word 9, 8, 7, 6, 5, 4, 3, 2
    .word 1, 1, 2, 3, 5, 8, 13, 21
    .word 2, 3, 5, 7, 11, 13, 17, 19
    .word 1, 0, 1, 0, 1, 0, 1, 0
    .word 4, 4, 4, 4, 4, 4, 4, 4
mat_b:
    .word 1, 0, 0, 0, 0, 0, 0, 1
    .word 0, 1, 0, 0, 0, 0, 1, 0
    .word 0, 0, 1, 0, 0, 1, 0, 0
    .word 0, 0, 0, 1, 1, 0, 0, 0
    .word 1, 0, 0, 1, 1, 0, 0, 1
    .word 0, 1, 1, 0, 0, 1, 1, 0
    .word 2, 0, 0, 2, 2, 0, 0, 2
    .word 0, 2, 2, 0, 0, 2, 2, 0
mat_c:
    .space 256
"#;

fn main() {
    let program = assemble(SOURCE).expect("kernel must assemble");
    println!("assembled: {program}");

    // Validate on the architectural interpreter first.
    let golden = ArchInterpreter::new(&program)
        .run(10_000_000)
        .expect("golden run");
    println!(
        "interpreter: {} instructions, output {:02x?}",
        golden.instructions, golden.output
    );

    // Cross-check on the cycle-level core.
    let core = CoreConfig::cortex_a9_like();
    let timed = Simulator::new(core, &program).run(u64::MAX / 8);
    assert_eq!(
        timed.output, golden.output,
        "OoO core must match the interpreter"
    );
    let RunEnd::Exited { code } = timed.end else {
        panic!("must exit")
    };
    println!(
        "OoO core: {} cycles (IPC {:.2})",
        timed.cycles,
        timed.instructions as f64 / timed.cycles as f64
    );

    // A small 3-bit campaign against the DTLB.
    let runs = 100;
    let mut counts = ClassCounts::new();
    for i in 0..runs {
        let mut gen = MaskGenerator::seeded(5000 + i, ClusterSpec::DEFAULT);
        let mut sim = Simulator::new(core, &program);
        let at = gen.injection_cycle(timed.cycles);
        let mask = gen.generate(sim.component_geometry(HwComponent::DTlb), 3);
        sim.run_until_cycle(at);
        sim.inject_flips(HwComponent::DTlb, &mask.coords);
        let end = sim
            .run_until_cycle(timed.cycles * 4)
            .unwrap_or(RunEnd::CycleLimit);
        let result = mbu_cpu::RunResult {
            end,
            output: sim.output().to_vec(),
            cycles: sim.cycle(),
            instructions: sim.instructions(),
        };
        counts.record(classify(&result, &golden.output, code));
    }
    println!("DTLB 3-bit campaign over {runs} runs: {counts}");
}
