//! The distributed-sweep supervisor: spawns worker processes (or adopts
//! TCP-connected ones), assigns [`UnitSpec`] work units, and treats every
//! worker as unreliable.
//!
//! Fault model and responses:
//!
//! * **Lost worker** (process exit, broken pipe, closed socket) — the
//!   in-flight unit is retried on a surviving worker with bounded backoff;
//!   a replacement process is spawned (local pools only). Logged as a
//!   [`AnomalyKind::WorkerLost`] anomaly so degraded sweeps are auditable.
//! * **Stalled worker** (no message for [`FabricConfig::stall_timeout`]) —
//!   killed and treated as lost ([`AnomalyKind::WorkerStall`]). A hung
//!   worker stops heartbeating, so this is the reclaim path for freezes.
//! * **Garbage frames** (undecodable protocol data) — the worker is
//!   dropped ([`AnomalyKind::ProtocolGarbage`]); its unit retries.
//! * **Unit deadline** ([`FabricConfig::unit_deadline`]) — a unit running
//!   past its wall-clock budget is reclaimed ([`AnomalyKind::WallClock`]).
//! * **Deterministic failure** — a unit that *fails* (typed campaign
//!   error) on two distinct workers, or exhausts
//!   [`FabricConfig::max_attempts`], is quarantined
//!   ([`AnomalyKind::UnitQuarantined`]): the sweep completes degraded
//!   rather than aborting or retrying forever.
//! * **Straggler tails** — when workers idle and nothing is pending, the
//!   remaining tail of the slowest in-flight unit is split off
//!   ([`UnitSpec::split_at`]) and run speculatively elsewhere; the merge's
//!   exact-adjacency dedup resolves the overlap whichever side finishes.
//!
//! Durability is delegated: workers persist every completed unit to their
//! own checksummed shard store *before* acknowledging it, and the final
//! [`merge_rows`] (plus the pre-flight merge on startup) reads those
//! files, so a supervisor crash loses no completed runs — re-running the
//! same sweep resumes from the shard directory and produces a final store
//! byte-identical to a single-process sweep.

use crate::experiments::{env_value, parse_env, parse_switch, ConfigError};
use crate::fabric::{
    campaign_keys, load_shard_dir, merge_rows, merge_rows_with_totals, split_range, MergeReport,
};
use crate::io::RealIo;
use crate::protocol::{
    read_frame, write_frame, EquivSpec, ExpSpec, Json, ProtocolError, ToSupervisor, ToWorker,
};
use crate::store::{ExhaustiveMeta, Key, ResultStore, ShardStore, StoreError};
use crate::Experiments;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{Anomaly, AnomalyKind, AnomalyLog, UnitSpec};
use mbu_gefin::error::CampaignError;
use mbu_gefin::exhaustive::{ExhaustivePlan, ExhaustiveSpec, StratifiedSpec};
use mbu_gefin::integrity::{golden_fingerprint, GoldenFingerprint};
use mbu_workloads::Workload;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Supervisor knobs, env-configurable (`MBU_WORKERS`, `MBU_UNIT_RUNS`,
/// `MBU_UNIT_CLASSES`, `MBU_HEARTBEAT_MS`, `MBU_STALL_SECS`,
/// `MBU_UNIT_DEADLINE_SECS`, `MBU_UNIT_RETRIES`, `MBU_STEAL`,
/// `MBU_DISK_WATERMARK_MB`, `MBU_BREAKER_TRIP`, `MBU_BREAKER_COOLDOWN_MS`,
/// `MBU_RETRY_BUDGET`).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Worker processes (`MBU_WORKERS`, default 2, must be ≥ 1).
    pub workers: usize,
    /// Runs per planned unit (`MBU_UNIT_RUNS`, 0 = auto-size from the
    /// worker count; adaptive sweeps always use whole campaigns).
    pub unit_runs: usize,
    /// Live classes per planned unit of a distributed exhaustive sweep
    /// (`MBU_UNIT_CLASSES`, 0 = auto-size from the worker count;
    /// stratified campaigns always dispatch as one whole-campaign unit).
    pub unit_classes: usize,
    /// Worker heartbeat interval (`MBU_HEARTBEAT_MS`, default 100 ms).
    pub heartbeat: Duration,
    /// Silence window after which a busy worker is declared stalled and
    /// its unit reclaimed (`MBU_STALL_SECS`, default 30 s).
    pub stall_timeout: Duration,
    /// Per-unit wall-clock deadline (`MBU_UNIT_DEADLINE_SECS`, default
    /// none).
    pub unit_deadline: Option<Duration>,
    /// Attempts per unit before quarantine (`MBU_UNIT_RETRIES`, default 3,
    /// must be ≥ 1).
    pub max_attempts: usize,
    /// Base retry backoff, doubled per attempt (default 200 ms).
    pub retry_backoff: Duration,
    /// Work-stealing of straggler tails (`MBU_STEAL`, default on).
    pub steal: bool,
    /// Smallest tail worth stealing, in runs (default 8).
    pub min_steal_runs: usize,
    /// Free-disk watermark in MiB under the shard directory
    /// (`MBU_DISK_WATERMARK_MB`, default none). Below it, the supervisor
    /// pauses assigning new units — pending work queues, shard appends
    /// stop — and logs a typed `disk-pressure` anomaly instead of running
    /// into raw ENOSPC; assignment resumes when space recovers.
    pub disk_watermark_mb: Option<u64>,
    /// Consecutive worker losses (no unit completing in between) that open
    /// the respawn circuit breaker (`MBU_BREAKER_TRIP`, default 3, must be
    /// ≥ 1). An open breaker holds replacement spawns for the cooldown
    /// instead of hot-looping respawns of a worker that dies on arrival.
    pub breaker_trip: usize,
    /// How long the respawn breaker stays open once tripped
    /// (`MBU_BREAKER_COOLDOWN_MS`, default 2000 ms).
    pub breaker_cooldown: Duration,
    /// Total retries a sweep may schedule before failing with the typed
    /// [`FabricError::RetryBudgetExhausted`] (`MBU_RETRY_BUDGET`, default
    /// none = unbounded). Shard rows stay durable; the sweep is resumable.
    pub retry_budget: Option<usize>,
    /// Print scheduling decisions to stderr.
    pub verbose: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            unit_runs: 0,
            unit_classes: 0,
            heartbeat: Duration::from_millis(100),
            stall_timeout: Duration::from_secs(30),
            unit_deadline: None,
            max_attempts: 3,
            retry_backoff: Duration::from_millis(200),
            steal: true,
            min_steal_runs: 8,
            disk_watermark_mb: None,
            breaker_trip: 3,
            breaker_cooldown: Duration::from_millis(2000),
            retry_budget: None,
            verbose: false,
        }
    }
}

impl FabricConfig {
    /// Builds from the environment, rejecting invalid values with a typed
    /// [`ConfigError`] — a sweep fabric silently running with the wrong
    /// worker count is exactly the misconfiguration this forbids.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending variable.
    pub fn from_env() -> Result<Self, ConfigError> {
        let mut c = Self::default();
        if let Some(v) = env_value("MBU_WORKERS")? {
            c.workers = parse_env("MBU_WORKERS", &v, "must be a positive integer")?;
            if c.workers == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_WORKERS",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_UNIT_RUNS")? {
            c.unit_runs = parse_env("MBU_UNIT_RUNS", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_UNIT_CLASSES")? {
            c.unit_classes = parse_env("MBU_UNIT_CLASSES", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_HEARTBEAT_MS")? {
            c.heartbeat =
                Duration::from_millis(parse_env("MBU_HEARTBEAT_MS", &v, "must be an integer")?);
        }
        if let Some(v) = env_value("MBU_STALL_SECS")? {
            c.stall_timeout =
                Duration::from_secs(parse_env("MBU_STALL_SECS", &v, "must be an integer")?);
        }
        if let Some(v) = env_value("MBU_UNIT_DEADLINE_SECS")? {
            c.unit_deadline = Some(Duration::from_secs(parse_env(
                "MBU_UNIT_DEADLINE_SECS",
                &v,
                "must be an integer",
            )?));
        }
        if let Some(v) = env_value("MBU_UNIT_RETRIES")? {
            c.max_attempts = parse_env("MBU_UNIT_RETRIES", &v, "must be a positive integer")?;
            if c.max_attempts == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_UNIT_RETRIES",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_STEAL")? {
            c.steal = parse_switch("MBU_STEAL", &v)?;
        }
        if let Some(v) = env_value("MBU_DISK_WATERMARK_MB")? {
            c.disk_watermark_mb = Some(parse_env(
                "MBU_DISK_WATERMARK_MB",
                &v,
                "must be an integer (MiB)",
            )?);
        }
        if let Some(v) = env_value("MBU_BREAKER_TRIP")? {
            c.breaker_trip = parse_env("MBU_BREAKER_TRIP", &v, "must be a positive integer")?;
            if c.breaker_trip == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_BREAKER_TRIP",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_BREAKER_COOLDOWN_MS")? {
            c.breaker_cooldown = Duration::from_millis(parse_env(
                "MBU_BREAKER_COOLDOWN_MS",
                &v,
                "must be an integer",
            )?);
        }
        if let Some(v) = env_value("MBU_RETRY_BUDGET")? {
            c.retry_budget = Some(parse_env("MBU_RETRY_BUDGET", &v, "must be an integer")?);
        }
        Ok(c)
    }

    /// The planned unit size: the explicit `unit_runs`, or an auto size
    /// giving each worker several units per campaign for stealing slack.
    pub fn effective_unit_runs(&self, runs: usize) -> usize {
        if self.unit_runs != 0 {
            self.unit_runs
        } else {
            runs.div_ceil(self.workers * 4).max(8).min(runs.max(1))
        }
    }

    /// The planned class-range size of an exhaustive campaign with
    /// `classes` live classes: the explicit `unit_classes`, or the same
    /// auto sizing as [`FabricConfig::effective_unit_runs`] over the
    /// live-class unit space.
    pub fn effective_unit_classes(&self, classes: usize) -> usize {
        if self.unit_classes != 0 {
            self.unit_classes
        } else {
            classes
                .div_ceil(self.workers * 4)
                .max(8)
                .min(classes.max(1))
        }
    }
}

/// Why a distributed sweep could not run to completion.
#[derive(Debug)]
pub enum FabricError {
    /// A store read/write failed.
    Store(StoreError),
    /// Spawning or talking to worker processes failed at the OS level.
    Io(std::io::Error),
    /// Every worker died and none could be (re)spawned, with work still
    /// pending.
    WorkersExhausted {
        /// Units never completed.
        pending: usize,
    },
    /// The sweep spent its whole retry budget ([`FabricConfig::retry_budget`])
    /// and another retry was needed. The shard directory keeps every durable
    /// row, so the sweep is resumable once the underlying instability is
    /// fixed.
    RetryBudgetExhausted {
        /// The configured budget that was spent.
        budget: usize,
        /// The last per-unit error that asked for one retry too many.
        last_error: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Store(e) => write!(f, "shard store: {e}"),
            FabricError::Io(e) => write!(f, "worker I/O: {e}"),
            FabricError::WorkersExhausted { pending } => write!(
                f,
                "all workers lost and none respawnable with {pending} unit(s) still pending"
            ),
            FabricError::RetryBudgetExhausted { budget, last_error } => write!(
                f,
                "retry budget of {budget} exhausted (last error: {last_error}); \
                 durable shard rows are kept and the sweep is resumable"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<StoreError> for FabricError {
    fn from(e: StoreError) -> Self {
        FabricError::Store(e)
    }
}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError::Io(e)
    }
}

/// A live progress event from a running supervised sweep — the
/// subscription seam the HTTP service's event streams are fed from.
/// Every event also has a stable JSON form ([`FabricEvent::to_json`]).
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// Planning finished; the sweep is about to start.
    Planned {
        /// Units planned this invocation (after resume skipping).
        units: usize,
        /// Campaigns in the sweep.
        campaigns: usize,
    },
    /// A worker said hello and is eligible for assignments.
    WorkerReady {
        /// Worker slot index.
        slot: usize,
        /// The worker's OS process id.
        pid: u32,
        /// Whether this is a lost TCP worker rejoining under its old id.
        rejoined: bool,
    },
    /// A worker was declared dead (crash, stall, protocol garbage).
    WorkerLost {
        /// Worker slot index.
        slot: usize,
        /// Human-readable cause.
        detail: String,
    },
    /// A unit completed and its row is durable.
    UnitDone {
        /// The completed unit.
        unit: UnitSpec,
        /// Worker slot that ran it.
        worker: usize,
        /// Runs the unit classified.
        runs: u64,
        /// Anomalies the campaign logged.
        anomalies: usize,
        /// Units finished so far (completed + recovered).
        completed: usize,
        /// Units planned this invocation.
        planned: usize,
    },
    /// A requeued unit was retired from a rejoining worker's replayed
    /// shard row instead of being re-run.
    UnitRecovered {
        /// The recovered unit.
        unit: UnitSpec,
        /// Worker slot whose shard store held it.
        worker: usize,
        /// Units finished so far (completed + recovered).
        completed: usize,
        /// Units planned this invocation.
        planned: usize,
    },
    /// A unit failed with a typed campaign error and will retry or
    /// quarantine.
    UnitFailed {
        /// The failed unit.
        unit: UnitSpec,
        /// Worker slot it failed on.
        worker: usize,
        /// Display form of the error.
        error: String,
    },
    /// A straggler's tail was split off for speculative execution.
    TailStolen {
        /// The stolen tail range.
        unit: UnitSpec,
        /// Worker slot still running the head.
        worker: usize,
    },
    /// A unit was abandoned after deterministic failure or attempt
    /// exhaustion.
    Quarantined {
        /// The abandoned unit.
        unit: UnitSpec,
        /// Why it was given up on.
        why: String,
    },
    /// Free disk under the shard directory crossed the configured
    /// watermark (`paused == true`: assignment paused) or recovered above
    /// it (`paused == false`: assignment resumed).
    DiskPressure {
        /// Free space measured, in MiB.
        free_mb: u64,
        /// The configured watermark, in MiB.
        watermark_mb: u64,
        /// Whether unit assignment is paused as of this event.
        paused: bool,
    },
    /// Cancellation was requested; the sweep is draining in-flight units
    /// and will merge partial results.
    Cancelled,
    /// The final merge ran.
    Merged {
        /// Campaigns in the merged store.
        campaigns: usize,
        /// Uncovered run-ranges left (the resume plan).
        gaps: usize,
        /// The worst achieved error margin across merged campaigns.
        worst_margin: Option<f64>,
    },
}

fn unit_json(u: &UnitSpec) -> Json {
    Json::Obj(vec![
        (
            "comp".into(),
            Json::str(crate::store::component_slug(u.component)),
        ),
        ("wl".into(), Json::str(u.workload.name())),
        ("faults".into(), Json::usize(u.faults)),
        ("start".into(), Json::usize(u.start)),
        ("end".into(), Json::usize(u.end)),
    ])
}

impl FabricEvent {
    /// The event's kind discriminator, kebab-case.
    pub fn kind(&self) -> &'static str {
        match self {
            FabricEvent::Planned { .. } => "planned",
            FabricEvent::WorkerReady { .. } => "worker-ready",
            FabricEvent::WorkerLost { .. } => "worker-lost",
            FabricEvent::UnitDone { .. } => "unit-done",
            FabricEvent::UnitRecovered { .. } => "unit-recovered",
            FabricEvent::UnitFailed { .. } => "unit-failed",
            FabricEvent::TailStolen { .. } => "tail-stolen",
            FabricEvent::Quarantined { .. } => "quarantined",
            FabricEvent::DiskPressure { .. } => "disk-pressure",
            FabricEvent::Cancelled => "cancelled",
            FabricEvent::Merged { .. } => "merged",
        }
    }

    /// The event's payload as a JSON object (kind included).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind".into(), Json::str(self.kind()))];
        match self {
            FabricEvent::Planned { units, campaigns } => {
                fields.push(("units".into(), Json::usize(*units)));
                fields.push(("campaigns".into(), Json::usize(*campaigns)));
            }
            FabricEvent::WorkerReady {
                slot,
                pid,
                rejoined,
            } => {
                fields.push(("slot".into(), Json::usize(*slot)));
                fields.push(("pid".into(), Json::u64(*pid as u64)));
                fields.push(("rejoined".into(), Json::Bool(*rejoined)));
            }
            FabricEvent::WorkerLost { slot, detail } => {
                fields.push(("slot".into(), Json::usize(*slot)));
                fields.push(("detail".into(), Json::str(detail)));
            }
            FabricEvent::UnitDone {
                unit,
                worker,
                runs,
                anomalies,
                completed,
                planned,
            } => {
                fields.push(("unit".into(), unit_json(unit)));
                fields.push(("worker".into(), Json::usize(*worker)));
                fields.push(("runs".into(), Json::u64(*runs)));
                fields.push(("anomalies".into(), Json::usize(*anomalies)));
                fields.push(("completed".into(), Json::usize(*completed)));
                fields.push(("planned".into(), Json::usize(*planned)));
            }
            FabricEvent::UnitRecovered {
                unit,
                worker,
                completed,
                planned,
            } => {
                fields.push(("unit".into(), unit_json(unit)));
                fields.push(("worker".into(), Json::usize(*worker)));
                fields.push(("completed".into(), Json::usize(*completed)));
                fields.push(("planned".into(), Json::usize(*planned)));
            }
            FabricEvent::UnitFailed {
                unit,
                worker,
                error,
            } => {
                fields.push(("unit".into(), unit_json(unit)));
                fields.push(("worker".into(), Json::usize(*worker)));
                fields.push(("error".into(), Json::str(error)));
            }
            FabricEvent::TailStolen { unit, worker } => {
                fields.push(("unit".into(), unit_json(unit)));
                fields.push(("worker".into(), Json::usize(*worker)));
            }
            FabricEvent::Quarantined { unit, why } => {
                fields.push(("unit".into(), unit_json(unit)));
                fields.push(("why".into(), Json::str(why)));
            }
            FabricEvent::DiskPressure {
                free_mb,
                watermark_mb,
                paused,
            } => {
                fields.push(("free_mb".into(), Json::u64(*free_mb)));
                fields.push(("watermark_mb".into(), Json::u64(*watermark_mb)));
                fields.push(("paused".into(), Json::Bool(*paused)));
            }
            FabricEvent::Cancelled => {}
            FabricEvent::Merged {
                campaigns,
                gaps,
                worst_margin,
            } => {
                fields.push(("campaigns".into(), Json::usize(*campaigns)));
                fields.push(("gaps".into(), Json::usize(*gaps)));
                fields.push((
                    "worst_margin".into(),
                    match worst_margin {
                        Some(m) => Json::f64(*m),
                        None => Json::Null,
                    },
                ));
            }
        }
        Json::Obj(fields)
    }
}

/// A boxed [`FabricEvent`] observer.
pub type EventSink = Box<dyn FnMut(&FabricEvent) + Send>;

/// Observer and control hooks for a supervised sweep
/// ([`Supervisor::run_with`]): an event sink fed from inside the
/// scheduler loop, and a cooperative cancellation flag checked every tick.
#[derive(Default)]
pub struct SweepOptions {
    /// Called synchronously for every [`FabricEvent`].
    pub on_event: Option<EventSink>,
    /// When set to `true`, the sweep stops dispatching, drains in-flight
    /// units, and merges what it has — the shard directory stays
    /// resumable.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// What a supervised sweep did, end to end.
#[derive(Debug, Default)]
pub struct FabricReport {
    /// Units planned this invocation (after resume skipping).
    pub units_planned: usize,
    /// Units that completed (including steal tails and retries).
    pub units_completed: usize,
    /// Retries scheduled (worker loss, stall, deadline, typed failure).
    pub retries: usize,
    /// Straggler tails split off and run speculatively.
    pub steals: usize,
    /// Worker processes spawned (including replacements).
    pub workers_spawned: usize,
    /// Workers lost to crashes, stalls or protocol garbage.
    pub workers_lost: usize,
    /// Lost TCP workers that reconnected under their old worker id and
    /// rejoined the pool.
    pub workers_rejoined: usize,
    /// Units retired from a rejoining worker's replayed shard rows
    /// instead of being re-run.
    pub units_recovered: usize,
    /// Whether the sweep was cancelled before finishing (partial results
    /// merged; shard dir resumable).
    pub cancelled: bool,
    /// Units abandoned after deterministic failure on ≥ 2 workers or
    /// attempt exhaustion, with the last error text.
    pub quarantined: Vec<(UnitSpec, String)>,
    /// Campaigns skipped because the final store already held fresh rows.
    pub skipped_existing: usize,
    /// Campaigns whose stored fingerprint was stale (re-run).
    pub stale_rerun: usize,
    /// Workloads whose golden run failed (their campaigns cannot run).
    pub failed_workloads: Vec<(Workload, CampaignError)>,
    /// The final merge accounting.
    pub merge: MergeReport,
    /// Fabric-level anomalies (worker loss, stalls, quarantines …).
    pub anomalies: AnomalyLog,
}

impl FabricReport {
    /// Whether every planned unit completed and merged.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.merge.is_complete()
    }
}

/// How the supervisor acquires workers.
pub enum WorkerPool {
    /// Spawn `repro worker` child processes over stdio pipes, respawning
    /// replacements for lost ones.
    Spawn,
    /// Adopt workers that connect to this listener (`repro serve`); the
    /// supervisor keeps accepting for the whole sweep, so a lost remote
    /// worker that reconnects under its old `--id` rejoins the pool and
    /// replays its durable shard rows instead of re-running them.
    Tcp(TcpListener),
}

/// One worker's transport.
enum Link {
    Local {
        child: Child,
        stdin: BufWriter<ChildStdin>,
    },
    Remote(TcpStream),
}

impl Link {
    fn send(&mut self, msg: &ToWorker) -> std::io::Result<()> {
        match self {
            Link::Local { stdin, .. } => write_frame(stdin, &msg.to_json()),
            Link::Remote(stream) => write_frame(stream, &msg.to_json()),
        }
    }

    fn kill(&mut self) {
        match self {
            Link::Local { child, .. } => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Link::Remote(stream) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn wait(&mut self) {
        if let Link::Local { child, .. } = self {
            let _ = child.wait();
        }
    }
}

struct Slot {
    link: Link,
    /// Hello received; eligible for assignments.
    ready: bool,
    alive: bool,
    /// The in-flight unit id, if busy.
    busy: Option<u64>,
    /// Last message of any kind (stall detection).
    last_seen: Instant,
    /// The stable worker id announced in Hello, if any (TCP session
    /// resume: a reconnecting worker re-registers under the same id).
    worker_id: Option<String>,
}

#[derive(Debug, Clone)]
struct UnitState {
    spec: UnitSpec,
    attempts: usize,
    /// Distinct workers this unit *failed* (typed error) on.
    failed_on: BTreeSet<usize>,
    eligible_at: Instant,
    last_error: String,
}

struct Flight {
    state: UnitState,
    worker: usize,
    started: Instant,
    /// Runs the worker reported started (heartbeats).
    progress: usize,
    stolen: bool,
}

/// What kind of units a supervised sweep dispatches and how its shard
/// rows merge back into campaigns.
enum SweepMode {
    /// Sampled run-range units: every campaign's unit space is the
    /// sweep-wide `exp.runs` (adaptive campaigns go whole).
    Runs {
        /// The components swept, for the final merge's key set.
        components: Vec<HwComponent>,
    },
    /// Equivalence-class units: exhaustive campaigns shard by live-class
    /// range, stratified campaigns dispatch as one whole-campaign
    /// sampler unit.
    Equiv {
        /// The exhaustive spec every worker compiles its plan under.
        exhaustive: ExhaustiveSpec,
        /// The sampler stratified campaigns run.
        sampler: StratifiedSpec,
        /// Per-campaign unit-space size: the supervisor-validated live
        /// class count (exhaustive) or 1 (stratified). Also the merge's
        /// completeness reference.
        totals: Vec<(Key, usize)>,
        /// Campaigns dispatched as whole-campaign stratified samplers.
        stratified: BTreeSet<Key>,
    },
}

/// Component sets selecting the sweep flavor at entry.
enum ModeInput<'c> {
    Runs(&'c [HwComponent]),
    Equiv {
        exhaustive: &'c [HwComponent],
        stratified: &'c [HwComponent],
    },
}

/// The supervisor: plans, schedules, merges.
pub struct Supervisor<'a> {
    exp: &'a Experiments,
    config: &'a FabricConfig,
    mode: SweepMode,
    shard_dir: PathBuf,
    expected: BTreeMap<Workload, GoldenFingerprint>,
    slots: Vec<Slot>,
    events: mpsc::Receiver<(usize, Result<ToSupervisor, ProtocolError>)>,
    events_tx: mpsc::Sender<(usize, Result<ToSupervisor, ProtocolError>)>,
    pending: Vec<UnitState>,
    in_flight: BTreeMap<u64, Flight>,
    next_unit_id: u64,
    report: FabricReport,
    can_respawn: bool,
    /// The chaos target parsed from `MBU_CHAOS_WORKER`, armed once.
    chaos_target: Option<(usize, String)>,
    /// Event sink and cancellation flag.
    opts: SweepOptions,
    /// Late TCP connections (rejoining workers) arrive here from the
    /// acceptor thread after the initial pool is adopted.
    conn_rx: Option<mpsc::Receiver<TcpStream>>,
    /// Replacement spawns owed for lost workers; paid down from the
    /// scheduler tick while the circuit breaker is closed.
    respawn_deficit: usize,
    /// Worker losses since the last completed unit; reaching
    /// [`FabricConfig::breaker_trip`] opens the breaker.
    consecutive_losses: usize,
    /// While set, the respawn breaker is open: replacements wait until
    /// this instant instead of hot-looping a worker that dies on arrival.
    breaker_open_until: Option<Instant>,
    /// Whether the disk-space governor has paused unit assignment.
    disk_paused: bool,
    /// Last free-disk probe (throttles the `df` subprocess to ~2/s).
    last_disk_probe: Option<Instant>,
}

fn spawn_reader(
    index: usize,
    reader: impl std::io::Read + Send + 'static,
    tx: mpsc::Sender<(usize, Result<ToSupervisor, ProtocolError>)>,
) {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(reader);
        loop {
            let item = read_frame(&mut reader).and_then(|v| ToSupervisor::from_json(&v));
            let stop = item.is_err();
            if tx.send((index, item)).is_err() || stop {
                // After any framing error the stream cannot be resynced;
                // the scheduler drops the worker.
                break;
            }
        }
    });
}

impl<'a> Supervisor<'a> {
    /// Plans a sweep over `components` and runs it to completion on the
    /// given pool, returning the merged accounting. The merged final
    /// store is saved to `out_csv` atomically.
    ///
    /// # Errors
    ///
    /// [`FabricError`] on store I/O failures, unspawnable workers, or a
    /// fully-exhausted pool with work remaining. Campaign-level failures
    /// never abort the sweep — they quarantine.
    pub fn run(
        exp: &'a Experiments,
        components: &[HwComponent],
        config: &'a FabricConfig,
        shard_dir: &Path,
        out_csv: &Path,
        pool: WorkerPool,
    ) -> Result<(ResultStore, FabricReport), FabricError> {
        Self::run_with(
            exp,
            components,
            config,
            shard_dir,
            out_csv,
            pool,
            SweepOptions::default(),
        )
    }

    /// [`Supervisor::run`] with observer and control hooks: a live
    /// [`FabricEvent`] sink and a cooperative cancellation flag. On
    /// cancellation the sweep drains in-flight units (their rows become
    /// durable), merges the partial coverage, and returns with
    /// `report.cancelled == true` — the shard directory resumes exactly
    /// where it stopped.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::run`].
    pub fn run_with(
        exp: &'a Experiments,
        components: &[HwComponent],
        config: &'a FabricConfig,
        shard_dir: &Path,
        out_csv: &Path,
        pool: WorkerPool,
        opts: SweepOptions,
    ) -> Result<(ResultStore, FabricReport), FabricError> {
        Self::run_inner(
            exp,
            ModeInput::Runs(components),
            config,
            shard_dir,
            out_csv,
            pool,
            opts,
        )
    }

    /// Plans and runs a distributed *equivalence-class* sweep: every
    /// campaign in `exhaustive_components` is sharded by live-class range
    /// (one simulation per class, dead classes credited `Masked` at
    /// merge), every campaign in `stratified_components` dispatches as a
    /// single whole-campaign stratified-sampler unit. All campaigns are
    /// single-bit.
    ///
    /// The supervisor compiles each exhaustive campaign's
    /// [`ExhaustivePlan`] itself — the `LiveIndex` is the unit space, and
    /// the `CoverageReport` proves the partition exact *before* anything
    /// is dispatched. Workers compile the identical plan (the spec rides
    /// the wire) and cache it across that campaign's units, so the merged
    /// store is byte-identical to a single-process
    /// [`Experiments::run_equiv_with`].
    ///
    /// # Errors
    ///
    /// As [`Supervisor::run`]. Campaigns whose plan cannot compile are
    /// quarantined, not fatal.
    #[allow(clippy::too_many_arguments)]
    pub fn run_equiv(
        exp: &'a Experiments,
        exhaustive_components: &[HwComponent],
        stratified_components: &[HwComponent],
        config: &'a FabricConfig,
        shard_dir: &Path,
        out_csv: &Path,
        pool: WorkerPool,
        opts: SweepOptions,
    ) -> Result<(ResultStore, FabricReport), FabricError> {
        Self::run_inner(
            exp,
            ModeInput::Equiv {
                exhaustive: exhaustive_components,
                stratified: stratified_components,
            },
            config,
            shard_dir,
            out_csv,
            pool,
            opts,
        )
    }

    fn run_inner(
        exp: &'a Experiments,
        input: ModeInput<'_>,
        config: &'a FabricConfig,
        shard_dir: &Path,
        out_csv: &Path,
        pool: WorkerPool,
        opts: SweepOptions,
    ) -> Result<(ResultStore, FabricReport), FabricError> {
        std::fs::create_dir_all(shard_dir)?;
        let (events_tx, events) = mpsc::channel();
        let mut sup = Supervisor {
            exp,
            config,
            mode: SweepMode::Runs {
                components: Vec::new(),
            },
            shard_dir: shard_dir.to_path_buf(),
            expected: BTreeMap::new(),
            slots: Vec::new(),
            events,
            events_tx,
            pending: Vec::new(),
            in_flight: BTreeMap::new(),
            next_unit_id: 0,
            report: FabricReport::default(),
            can_respawn: matches!(pool, WorkerPool::Spawn),
            chaos_target: crate::chaos::WorkerChaos::target_from_env(),
            opts,
            conn_rx: None,
            respawn_deficit: 0,
            consecutive_losses: 0,
            breaker_open_until: None,
            disk_paused: false,
            last_disk_probe: None,
        };
        // Golden fingerprints per workload: the freshness reference for
        // resume skipping, shard-row validation and the final merge.
        for &w in &exp.workloads {
            match golden_fingerprint(exp.core, w) {
                Ok(fp) => {
                    sup.expected.insert(w, fp);
                }
                Err(e) => sup.report.failed_workloads.push((w, e)),
            }
        }
        let mut existing = sup.load_existing(out_csv)?;
        let campaigns = match input {
            ModeInput::Runs(components) => {
                sup.mode = SweepMode::Runs {
                    components: components.to_vec(),
                };
                sup.plan(components, &existing)?;
                campaign_keys(exp, components).len()
            }
            ModeInput::Equiv {
                exhaustive,
                stratified,
            } => {
                sup.plan_equiv(exhaustive, stratified, &mut existing)?;
                (exhaustive.len() + stratified.len()) * exp.workloads.len()
            }
        };
        if sup.config.verbose {
            eprintln!(
                "fabric: {} unit(s) planned across {campaigns} campaign(s), {} worker(s)",
                sup.report.units_planned, config.workers,
            );
        }
        sup.emit(FabricEvent::Planned {
            units: sup.report.units_planned,
            campaigns,
        });
        if sup.cancel_requested() {
            // Cancelled before any dispatch: merge whatever the shard
            // directory already holds and return.
            sup.report.cancelled = true;
            sup.emit(FabricEvent::Cancelled);
        } else if !sup.pending.is_empty() {
            match pool {
                WorkerPool::Spawn => {
                    for _ in 0..config.workers {
                        sup.spawn_worker()?;
                    }
                }
                WorkerPool::Tcp(listener) => sup.accept_workers(listener)?,
            }
            sup.schedule()?;
            sup.shutdown_workers();
        }
        sup.finish(existing, out_csv)
    }

    fn emit(&mut self, ev: FabricEvent) {
        if let Some(f) = self.opts.on_event.as_mut() {
            f(&ev);
        }
    }

    fn cancel_requested(&self) -> bool {
        self.opts
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Loads the final store, keeping only rows whose fingerprint matches
    /// the current build (stale rows re-run).
    fn load_existing(&mut self, out_csv: &Path) -> Result<ResultStore, FabricError> {
        let (disk, _audit) = ResultStore::recover(out_csv)?;
        let mut fresh = ResultStore::new();
        for r in disk.iter() {
            let stored = disk.fingerprint(r.component, r.workload, r.faults);
            if stored.is_some() && stored == self.expected.get(&r.workload).copied() {
                // Exhaustive rows keep their coverage metadata on resume.
                match disk.exhaustive_meta(r.component, r.workload, r.faults) {
                    Some(meta) => fresh.insert_exhaustive(r.clone(), meta, stored),
                    None => fresh.insert_with_fingerprint(r.clone(), stored),
                }
                self.report.skipped_existing += 1;
            } else {
                self.report.stale_rerun += 1;
            }
        }
        Ok(fresh)
    }

    /// Plans pending units: all campaigns not already in the final store,
    /// minus whatever complete coverage the shard directory already holds
    /// (supervisor-crash resume), split into unit-sized ranges.
    fn plan(
        &mut self,
        components: &[HwComponent],
        existing: &ResultStore,
    ) -> Result<(), FabricError> {
        let keys: Vec<Key> = campaign_keys(self.exp, components)
            .into_iter()
            .filter(|&(c, w, f)| !existing.contains(c, w, f))
            .filter(|&(_, w, _)| self.expected.contains_key(&w))
            .collect();
        let (rows, _audits) = load_shard_dir(&RealIo, &self.shard_dir)?;
        let (_pre, pre_report) = merge_rows(self.exp, &keys, &rows, &self.expected);
        let unit_runs = if self.exp.adaptive.is_some() {
            0
        } else {
            self.config.effective_unit_runs(self.exp.runs)
        };
        let now = Instant::now();
        for gap in &pre_report.gaps {
            for spec in split_range(gap.campaign_key(), gap.start, gap.end, unit_runs) {
                self.pending.push(UnitState {
                    spec,
                    attempts: 0,
                    failed_on: BTreeSet::new(),
                    eligible_at: now,
                    last_error: String::new(),
                });
            }
        }
        // Deterministic dispatch order.
        self.pending
            .sort_by_key(|u| (u.spec.campaign_key(), u.spec.start));
        self.report.units_planned = self.pending.len();
        Ok(())
    }

    /// Plans an equivalence-class sweep: compiles every exhaustive
    /// campaign's [`ExhaustivePlan`] supervisor-side so the `LiveIndex`
    /// defines the unit space and the `CoverageReport` proves the
    /// partition exact before dispatch; stratified campaigns become one
    /// whole-campaign unit each. Shard rows already on disk pre-merge
    /// exactly as in run-range mode, so a crashed sweep resumes from its
    /// class-range gaps.
    fn plan_equiv(
        &mut self,
        exhaustive_components: &[HwComponent],
        stratified_components: &[HwComponent],
        existing: &mut ResultStore,
    ) -> Result<(), FabricError> {
        let ex_spec = self.exp.exhaustive_spec();
        let sampler = self.exp.stratified_spec();
        let mut totals: Vec<(Key, usize)> = Vec::new();
        let mut stratified: BTreeSet<Key> = BTreeSet::new();
        for (i, &component) in exhaustive_components
            .iter()
            .chain(stratified_components)
            .enumerate()
        {
            let is_exhaustive = i < exhaustive_components.len();
            for &w in &self.exp.workloads.clone() {
                let key = (component, w, 1);
                if existing.contains(component, w, 1) || !self.expected.contains_key(&w) {
                    continue;
                }
                if !is_exhaustive {
                    totals.push((key, 1));
                    stratified.insert(key);
                    continue;
                }
                let plan =
                    match ExhaustivePlan::try_new(self.exp.equiv_config(component, w), ex_spec) {
                        Ok(p) => p,
                        Err(e) => {
                            self.quarantine_campaign(key, &format!("plan compilation: {e}"));
                            continue;
                        }
                    };
                let cov = plan.coverage();
                if cov.holes != 0 || cov.overlaps != 0 {
                    self.quarantine_campaign(
                        key,
                        &format!(
                            "coverage proof failed: {} hole(s), {} overlap(s)",
                            cov.holes, cov.overlaps
                        ),
                    );
                    continue;
                }
                if plan.live_classes() == 0 {
                    // Every class is provably dead: nothing to dispatch.
                    // Resolve the campaign supervisor-side so the merge
                    // never sees a zero-row cover.
                    match plan.run(None) {
                        Ok(r) => {
                            let meta = ExhaustiveMeta {
                                classes: r.simulated,
                                weight: r.coverage.population,
                            };
                            existing.insert_exhaustive(
                                r.campaign,
                                meta,
                                self.expected.get(&w).copied(),
                            );
                        }
                        Err(e) => {
                            self.quarantine_campaign(key, &format!("dead-only campaign: {e}"))
                        }
                    }
                    continue;
                }
                totals.push((key, plan.live_classes()));
            }
        }
        // Pre-merge whatever class ranges the shard directory already
        // holds (supervisor-crash resume), then split the gaps.
        let (rows, _audits) = load_shard_dir(&RealIo, &self.shard_dir)?;
        let (_pre, pre_report) = merge_rows_with_totals(self.exp, &totals, &rows, &self.expected);
        let now = Instant::now();
        for gap in &pre_report.gaps {
            let key = gap.campaign_key();
            // A stratified sampler is indivisible (its one unit is the
            // whole campaign); exhaustive gaps split into class ranges.
            let unit_classes = if stratified.contains(&key) {
                0
            } else {
                self.config.effective_unit_classes(gap.len())
            };
            for spec in split_range(key, gap.start, gap.end, unit_classes) {
                self.pending.push(UnitState {
                    spec,
                    attempts: 0,
                    failed_on: BTreeSet::new(),
                    eligible_at: now,
                    last_error: String::new(),
                });
            }
        }
        self.pending
            .sort_by_key(|u| (u.spec.campaign_key(), u.spec.start));
        self.report.units_planned = self.pending.len();
        self.mode = SweepMode::Equiv {
            exhaustive: ex_spec,
            sampler,
            totals,
            stratified,
        };
        Ok(())
    }

    /// Quarantines a whole campaign at planning time (plan compilation or
    /// coverage-proof failure) as its zero-length unit — the same
    /// accounting path units that fail at execution time take.
    fn quarantine_campaign(&mut self, key: Key, why: &str) {
        let (component, workload, faults) = key;
        let spec = UnitSpec {
            component,
            workload,
            faults,
            start: 0,
            end: 0,
        };
        self.report.anomalies.record(Anomaly {
            run_index: 0,
            run_seed: self.exp.seed,
            kind: AnomalyKind::UnitQuarantined,
            message: format!("{spec} quarantined at planning: {why}"),
        });
        if self.config.verbose {
            eprintln!("fabric: quarantined {spec} at planning: {why}");
        }
        self.emit(FabricEvent::Quarantined {
            unit: spec,
            why: why.to_string(),
        });
        self.report.quarantined.push((spec, why.to_string()));
    }

    /// The per-unit equivalence-class instruction, if this sweep
    /// dispatches class units: the shared exhaustive spec, plus the
    /// sampler for campaigns in the stratified set.
    fn unit_equiv(&self, key: Key) -> Option<EquivSpec> {
        match &self.mode {
            SweepMode::Runs { .. } => None,
            SweepMode::Equiv {
                exhaustive,
                sampler,
                stratified,
                ..
            } => Some(EquivSpec {
                exhaustive: *exhaustive,
                stratified: stratified.contains(&key).then_some(*sampler),
            }),
        }
    }

    fn exp_spec(&self, equiv: Option<EquivSpec>) -> ExpSpec {
        ExpSpec {
            runs: self.exp.runs,
            seed: self.exp.seed,
            threads: self.exp.threads,
            adaptive: self.exp.adaptive,
            use_snapshots: self.exp.use_snapshots,
            snapshot_interval: self.exp.snapshot_interval,
            snapshot_mem_mb: self.exp.snapshot_mem_mb,
            use_golden_cache: self.exp.use_golden_cache,
            equiv,
        }
    }

    fn shard_path(&self, slot: usize) -> PathBuf {
        self.shard_dir.join(format!("worker-{slot:03}.csv"))
    }

    /// Spawns one local worker process, arming the chaos fault if this is
    /// the targeted index's *first* spawn (replacements never inherit it,
    /// so a kill fault cannot loop).
    fn spawn_worker(&mut self) -> Result<(), FabricError> {
        let index = self.slots.len();
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.arg("worker")
            .arg("--shard")
            .arg(self.shard_path(index))
            .env_remove(crate::chaos::CHAOS_WORKER_ENV)
            .env_remove(crate::chaos::WORKER_FAULT_ENV)
            .env(
                "MBU_HEARTBEAT_MS",
                self.config.heartbeat.as_millis().to_string(),
            )
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some((target, fault)) = &self.chaos_target {
            if *target == index {
                cmd.env(crate::chaos::WORKER_FAULT_ENV, fault);
                // Armed exactly once.
                self.chaos_target = None;
            }
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let stdin = child.stdin.take().expect("stdin was piped");
        spawn_reader(index, stdout, self.events_tx.clone());
        self.slots.push(Slot {
            link: Link::Local {
                child,
                stdin: BufWriter::new(stdin),
            },
            ready: false,
            alive: true,
            busy: None,
            last_seen: Instant::now(),
            worker_id: None,
        });
        self.report.workers_spawned += 1;
        if self.config.verbose {
            eprintln!("fabric: spawned worker {index}");
        }
        Ok(())
    }

    /// Accepts `workers` TCP connections as the initial worker pool, then
    /// keeps the listener alive on an acceptor thread so lost workers can
    /// reconnect and rejoin mid-sweep.
    fn accept_workers(&mut self, listener: TcpListener) -> Result<(), FabricError> {
        eprintln!(
            "fabric: waiting for {} worker(s) on {}",
            self.config.workers,
            listener.local_addr()?
        );
        let (tx, rx) = mpsc::channel();
        let accept = listener.try_clone()?;
        std::thread::spawn(move || {
            // Runs for the life of the process; dies when accept fails or
            // the supervisor drops the receiver.
            while let Ok((stream, _)) = accept.accept() {
                if tx.send(stream).is_err() {
                    break;
                }
            }
        });
        drop(listener);
        for _ in 0..self.config.workers {
            let stream = rx
                .recv()
                .map_err(|_| std::io::Error::other("TCP acceptor thread died"))?;
            self.adopt_remote(stream)?;
        }
        self.conn_rx = Some(rx);
        Ok(())
    }

    /// Adopts one remote TCP connection as a new worker slot.
    fn adopt_remote(&mut self, stream: TcpStream) -> Result<(), FabricError> {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".into());
        let index = self.slots.len();
        spawn_reader(index, stream.try_clone()?, self.events_tx.clone());
        self.slots.push(Slot {
            link: Link::Remote(stream),
            ready: false,
            alive: true,
            busy: None,
            last_seen: Instant::now(),
            worker_id: None,
        });
        self.report.workers_spawned += 1;
        eprintln!("fabric: worker {index} connected from {peer}");
        Ok(())
    }

    /// Adopts any TCP connections that arrived since the last tick
    /// (reconnecting workers).
    fn poll_new_connections(&mut self) -> Result<(), FabricError> {
        let Some(rx) = self.conn_rx.take() else {
            return Ok(());
        };
        while let Ok(stream) = rx.try_recv() {
            self.adopt_remote(stream)?;
        }
        self.conn_rx = Some(rx);
        Ok(())
    }

    /// Blocks (bounded by the stall timeout) for one reconnecting TCP
    /// worker when the pool is otherwise exhausted. Returns whether a
    /// connection was adopted.
    fn await_reconnect(&mut self) -> Result<bool, FabricError> {
        let Some(rx) = self.conn_rx.take() else {
            return Ok(false);
        };
        eprintln!(
            "fabric: all workers lost; waiting up to {:.1}s for a reconnect",
            self.config.stall_timeout.as_secs_f64()
        );
        match rx.recv_timeout(self.config.stall_timeout) {
            Ok(stream) => {
                self.adopt_remote(stream)?;
                self.conn_rx = Some(rx);
                Ok(true)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.conn_rx = Some(rx);
                Ok(false)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(false),
        }
    }

    /// Whether any unit is eligible now (vs. backing off).
    fn next_pending(&mut self) -> Option<UnitState> {
        let now = Instant::now();
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, u)| u.eligible_at <= now)
            .min_by_key(|(_, u)| (u.eligible_at, u.spec.campaign_key(), u.spec.start))
            .map(|(i, _)| i)?;
        Some(self.pending.remove(idx))
    }

    fn assign(&mut self, slot: usize, state: UnitState) -> Result<(), FabricError> {
        let unit_id = self.next_unit_id;
        self.next_unit_id += 1;
        let msg = ToWorker::Assign {
            unit_id,
            unit: state.spec,
            exp: self.exp_spec(self.unit_equiv(state.spec.campaign_key())),
        };
        if self.config.verbose {
            eprintln!(
                "fabric: assign unit {unit_id} ({}) -> worker {slot} (attempt {})",
                state.spec,
                state.attempts + 1
            );
        }
        match self.slots[slot].link.send(&msg) {
            Ok(()) => {
                self.slots[slot].busy = Some(unit_id);
                self.slots[slot].last_seen = Instant::now();
                self.in_flight.insert(
                    unit_id,
                    Flight {
                        state,
                        worker: slot,
                        started: Instant::now(),
                        progress: 0,
                        stolen: false,
                    },
                );
                Ok(())
            }
            Err(e) => {
                // The worker died between messages; requeue and drop it.
                self.pending.push(state);
                self.drop_worker(slot, AnomalyKind::WorkerLost, &format!("send failed: {e}"))?;
                Ok(())
            }
        }
    }

    /// Marks a worker dead, reclaims its in-flight unit, and records a
    /// replacement spawn to be paid down by the scheduler tick — through
    /// the circuit breaker, so a worker that dies on arrival cools down
    /// instead of hot-looping respawns.
    fn drop_worker(
        &mut self,
        slot: usize,
        kind: AnomalyKind,
        detail: &str,
    ) -> Result<(), FabricError> {
        if !self.slots[slot].alive {
            return Ok(());
        }
        self.slots[slot].alive = false;
        self.slots[slot].ready = false;
        self.slots[slot].link.kill();
        self.report.workers_lost += 1;
        self.consecutive_losses += 1;
        self.emit(FabricEvent::WorkerLost {
            slot,
            detail: detail.to_string(),
        });
        if let Some(unit_id) = self.slots[slot].busy.take() {
            if let Some(flight) = self.in_flight.remove(&unit_id) {
                let spec = flight.state.spec;
                self.report.anomalies.record(Anomaly {
                    run_index: spec.start,
                    run_seed: self.exp.seed,
                    kind,
                    message: format!(
                        "worker {slot} lost while running {spec} ({detail}); unit will be retried"
                    ),
                });
                self.retry(flight.state, None, detail)?;
            }
        } else if self.config.verbose {
            eprintln!("fabric: idle worker {slot} dropped ({detail})");
        }
        if self.can_respawn && !(self.pending.is_empty() && self.in_flight.is_empty()) {
            // Replacements stay bounded: each loss owes at most one spawn.
            self.respawn_deficit += 1;
            if self.consecutive_losses >= self.config.breaker_trip
                && self.breaker_open_until.is_none()
            {
                self.breaker_open_until = Some(Instant::now() + self.config.breaker_cooldown);
                self.report.anomalies.record(Anomaly {
                    run_index: 0,
                    run_seed: self.exp.seed,
                    kind: AnomalyKind::WorkerLost,
                    message: format!(
                        "respawn breaker opened after {} consecutive worker losses; \
                         cooling down {:.1}s before spawning replacements",
                        self.consecutive_losses,
                        self.config.breaker_cooldown.as_secs_f64()
                    ),
                });
                eprintln!(
                    "fabric: respawn breaker open ({} consecutive losses); \
                     cooldown {:.1}s",
                    self.consecutive_losses,
                    self.config.breaker_cooldown.as_secs_f64()
                );
            }
        }
        Ok(())
    }

    /// Pays down owed replacement spawns, but only while the circuit
    /// breaker is closed. Called from the scheduler tick.
    fn pump_respawns(&mut self) -> Result<(), FabricError> {
        if !self.can_respawn || self.respawn_deficit == 0 {
            return Ok(());
        }
        if let Some(until) = self.breaker_open_until {
            if Instant::now() < until {
                return Ok(());
            }
            self.breaker_open_until = None;
            self.consecutive_losses = 0;
            if self.config.verbose {
                eprintln!("fabric: respawn breaker closed; resuming replacements");
            }
        }
        while self.respawn_deficit > 0 {
            if self.pending.is_empty() && self.in_flight.is_empty() {
                self.respawn_deficit = 0;
                break;
            }
            self.respawn_deficit -= 1;
            self.spawn_worker()?;
        }
        Ok(())
    }

    /// The disk-space governor: probes free space under the shard
    /// directory (throttled) and pauses/resumes unit assignment around the
    /// configured watermark, logging one typed `disk-pressure` anomaly per
    /// breach instead of letting shard appends hit raw ENOSPC.
    fn check_disk(&mut self) {
        let Some(watermark) = self.config.disk_watermark_mb else {
            return;
        };
        if self
            .last_disk_probe
            .is_some_and(|t| t.elapsed() < Duration::from_millis(500))
        {
            return;
        }
        self.last_disk_probe = Some(Instant::now());
        // An unprobeable disk is "no information", not pressure.
        let Some(free) = crate::io::free_disk_mb(&self.shard_dir) else {
            return;
        };
        if !self.disk_paused && free < watermark {
            self.disk_paused = true;
            self.report.anomalies.record(Anomaly {
                run_index: 0,
                run_seed: self.exp.seed,
                kind: AnomalyKind::DiskPressure,
                message: format!(
                    "free disk {free} MiB under watermark {watermark} MiB; \
                     pausing unit assignment until space recovers"
                ),
            });
            eprintln!(
                "fabric: disk pressure ({free} MiB free < {watermark} MiB watermark); \
                 pausing unit assignment"
            );
            self.emit(FabricEvent::DiskPressure {
                free_mb: free,
                watermark_mb: watermark,
                paused: true,
            });
        } else if self.disk_paused && free >= watermark {
            self.disk_paused = false;
            eprintln!("fabric: disk pressure cleared ({free} MiB free); resuming unit assignment");
            self.emit(FabricEvent::DiskPressure {
                free_mb: free,
                watermark_mb: watermark,
                paused: false,
            });
        }
    }

    /// Requeues a unit with backoff, or quarantines it after
    /// deterministic failure on ≥ 2 workers / attempt exhaustion.
    ///
    /// # Errors
    ///
    /// [`FabricError::RetryBudgetExhausted`] when scheduling this retry
    /// would exceed the sweep's configured retry budget.
    fn retry(
        &mut self,
        mut state: UnitState,
        failed_worker: Option<usize>,
        error: &str,
    ) -> Result<(), FabricError> {
        state.attempts += 1;
        state.last_error = error.to_string();
        if let Some(w) = failed_worker {
            state.failed_on.insert(w);
        }
        let deterministic = state.failed_on.len() >= 2;
        if deterministic || state.attempts >= self.config.max_attempts {
            let spec = state.spec;
            let why = if deterministic {
                format!(
                    "failed deterministically on {} distinct workers: {error}",
                    state.failed_on.len()
                )
            } else {
                format!("exhausted {} attempts: {error}", state.attempts)
            };
            self.report.anomalies.record(Anomaly {
                run_index: spec.start,
                run_seed: self.exp.seed,
                kind: AnomalyKind::UnitQuarantined,
                message: format!("{spec} quarantined: {why}"),
            });
            if self.config.verbose {
                eprintln!("fabric: quarantined {spec}: {why}");
            }
            self.emit(FabricEvent::Quarantined {
                unit: spec,
                why: why.clone(),
            });
            self.report.quarantined.push((spec, why));
            return Ok(());
        }
        if let Some(budget) = self.config.retry_budget {
            if self.report.retries >= budget {
                return Err(FabricError::RetryBudgetExhausted {
                    budget,
                    last_error: error.to_string(),
                });
            }
        }
        self.report.retries += 1;
        let backoff = self.config.retry_backoff * 2u32.pow((state.attempts - 1).min(8) as u32);
        state.eligible_at = Instant::now() + backoff;
        self.pending.push(state);
        Ok(())
    }

    /// Splits the straggler with the largest remaining tail and runs the
    /// tail speculatively on the idle capacity.
    fn steal_tail(&mut self) {
        let Some((unit_id, mid)) = self
            .in_flight
            .iter()
            .filter(|(_, f)| !f.stolen)
            .filter_map(|(&id, f)| {
                let spec = f.state.spec;
                // Split at the reported progress frontier (conservative:
                // runs the straggler already started stay on it).
                let mid = (spec.start + f.progress).max(spec.start + 1);
                let remaining = spec.end.saturating_sub(mid);
                (remaining >= self.config.min_steal_runs).then_some((id, mid, remaining))
            })
            .max_by_key(|&(id, _, remaining)| (remaining, std::cmp::Reverse(id)))
            .map(|(id, mid, _)| (id, mid))
        else {
            return;
        };
        let flight = self.in_flight.get_mut(&unit_id).expect("picked from map");
        let Some((_, tail)) = flight.state.spec.split_at(mid) else {
            return;
        };
        flight.stolen = true;
        let worker = flight.worker;
        self.report.steals += 1;
        if self.config.verbose {
            eprintln!("fabric: stealing tail {tail} from worker {worker} (unit {unit_id})");
        }
        self.emit(FabricEvent::TailStolen { unit: tail, worker });
        self.pending.push(UnitState {
            spec: tail,
            attempts: 0,
            failed_on: BTreeSet::new(),
            eligible_at: Instant::now(),
            last_error: String::new(),
        });
    }

    /// The scheduler loop: dispatch, supervise, reclaim, until no work
    /// remains.
    fn schedule(&mut self) -> Result<(), FabricError> {
        let tick = Duration::from_millis(50);
        loop {
            // Adopt any reconnecting TCP workers before dispatching.
            self.poll_new_connections()?;
            // Pay down owed replacement spawns (breaker permitting) and
            // probe the disk-space governor.
            self.pump_respawns()?;
            self.check_disk();
            if self.cancel_requested() {
                // Stop dispatching: drop queued units (their gaps stay in
                // the merge's resume plan) and drain what's in flight so
                // every started unit becomes a durable shard row.
                if !self.report.cancelled {
                    self.report.cancelled = true;
                    self.emit(FabricEvent::Cancelled);
                    if self.config.verbose {
                        eprintln!(
                            "fabric: cancellation requested; draining {} in-flight unit(s)",
                            self.in_flight.len()
                        );
                    }
                }
                self.pending.clear();
            } else if !self.disk_paused {
                // Dispatch to every idle ready worker (held while the
                // disk-space governor has assignment paused).
                while let Some(slot) = self
                    .slots
                    .iter()
                    .position(|s| s.alive && s.ready && s.busy.is_none())
                {
                    let Some(state) = self.next_pending() else {
                        break;
                    };
                    self.assign(slot, state)?;
                }
            }
            if self.pending.is_empty() && self.in_flight.is_empty() {
                return Ok(());
            }
            if !self.slots.iter().any(|s| s.alive) {
                if self.can_respawn && self.respawn_deficit > 0 {
                    // Replacements are owed but the breaker is open (or
                    // about to pay them down next tick); keep ticking
                    // through the cooldown instead of declaring the pool
                    // exhausted.
                } else if self.await_reconnect()? {
                    // A rejoining TCP worker can still save the sweep.
                    continue;
                } else {
                    return Err(FabricError::WorkersExhausted {
                        pending: self.pending.len() + self.in_flight.len(),
                    });
                }
            }
            // Opportunistic stealing: idle capacity + nothing pending.
            if self.config.steal
                && !self.report.cancelled
                && !self.disk_paused
                && self.pending.is_empty()
                && self
                    .slots
                    .iter()
                    .any(|s| s.alive && s.ready && s.busy.is_none())
            {
                self.steal_tail();
            }
            match self.events.recv_timeout(tick) {
                Ok((slot, Ok(msg))) => self.on_message(slot, msg)?,
                Ok((slot, Err(ProtocolError::Eof))) => {
                    self.drop_worker(slot, AnomalyKind::WorkerLost, "connection closed")?;
                }
                Ok((slot, Err(e))) => {
                    self.drop_worker(slot, AnomalyKind::ProtocolGarbage, &e.to_string())?;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(FabricError::WorkersExhausted {
                        pending: self.pending.len() + self.in_flight.len(),
                    });
                }
            }
            self.check_liveness()?;
        }
    }

    fn on_message(&mut self, slot: usize, msg: ToSupervisor) -> Result<(), FabricError> {
        if !self.slots[slot].alive {
            // Late message from a worker already declared dead; its rows
            // are still on disk and the merge dedups them.
            return Ok(());
        }
        self.slots[slot].last_seen = Instant::now();
        match msg {
            ToSupervisor::Hello { pid, worker_id } => {
                self.slots[slot].ready = true;
                let mut rejoined = false;
                if let Some(id) = &worker_id {
                    rejoined =
                        self.slots.iter().enumerate().any(|(i, s)| {
                            i != slot && !s.alive && s.worker_id.as_deref() == Some(id)
                        });
                    if rejoined {
                        self.report.workers_rejoined += 1;
                        self.report.anomalies.record(Anomaly {
                            run_index: 0,
                            run_seed: self.exp.seed,
                            kind: AnomalyKind::WorkerRejoined,
                            message: format!(
                                "worker `{id}` reconnected as slot {slot}; durable shard \
                                 rows will be recovered instead of re-run"
                            ),
                        });
                    }
                }
                self.slots[slot].worker_id = worker_id;
                if self.config.verbose {
                    eprintln!(
                        "fabric: worker {slot} ready (pid {pid}{})",
                        if rejoined { ", rejoined" } else { "" }
                    );
                }
                self.emit(FabricEvent::WorkerReady {
                    slot,
                    pid,
                    rejoined,
                });
            }
            ToSupervisor::Recovered { row } => {
                // A reconnecting worker replayed a durable shard row. For
                // remote workers the shard file is on another machine, so
                // persist the replayed row supervisor-side.
                if matches!(self.slots[slot].link, Link::Remote(_)) {
                    ShardStore::append_row_with(
                        &RealIo,
                        &self.shard_dir.join("supervisor.csv"),
                        &row,
                    )?;
                }
                // If the row retires a still-pending unit (completed but
                // never acknowledged before the worker died), take it off
                // the queue instead of re-running it. An in-flight
                // duplicate is left alone — the merge dedups rows.
                let fresh = row.seed == self.exp.seed
                    && self.expected.get(&row.unit.workload) == Some(&row.fingerprint);
                if fresh {
                    if let Some(i) = self.pending.iter().position(|u| u.spec == row.unit) {
                        let state = self.pending.remove(i);
                        self.report.units_recovered += 1;
                        if self.config.verbose {
                            eprintln!(
                                "fabric: unit {} recovered from worker {slot}'s shard \
                                 (completed before its previous session died)",
                                state.spec
                            );
                        }
                        self.emit(FabricEvent::UnitRecovered {
                            unit: state.spec,
                            worker: slot,
                            completed: self.report.units_completed + self.report.units_recovered,
                            planned: self.report.units_planned,
                        });
                    }
                }
            }
            ToSupervisor::Heartbeat { unit_id, done } => {
                if let Some(flight) = self.in_flight.get_mut(&unit_id) {
                    flight.progress = flight.progress.max(done);
                }
            }
            ToSupervisor::Done {
                unit_id,
                row,
                anomalies,
            } => {
                if self.slots[slot].busy == Some(unit_id) {
                    self.slots[slot].busy = None;
                }
                if let Some(flight) = self.in_flight.remove(&unit_id) {
                    self.report.units_completed += 1;
                    // Real progress: the pool is healthy enough that the
                    // respawn breaker's loss streak resets.
                    self.consecutive_losses = 0;
                    if self.config.verbose {
                        eprintln!(
                            "fabric: unit {unit_id} done on worker {slot} \
                             ({} runs, {anomalies} anomalies)",
                            row.counts.total()
                        );
                    }
                    self.emit(FabricEvent::UnitDone {
                        unit: flight.state.spec,
                        worker: slot,
                        runs: row.counts.total(),
                        anomalies,
                        completed: self.report.units_completed + self.report.units_recovered,
                        planned: self.report.units_planned,
                    });
                }
                // Remote workers' shard files are on another machine; the
                // acknowledged row is persisted supervisor-side so the
                // merge sees it. (Local rows would merely duplicate —
                // harmless, but skipped.)
                if matches!(self.slots[slot].link, Link::Remote(_)) {
                    ShardStore::append_row_with(
                        &RealIo,
                        &self.shard_dir.join("supervisor.csv"),
                        &row,
                    )?;
                }
            }
            ToSupervisor::Fail { unit_id, error } => {
                if self.slots[slot].busy == Some(unit_id) {
                    self.slots[slot].busy = None;
                }
                if let Some(flight) = self.in_flight.remove(&unit_id) {
                    let spec = flight.state.spec;
                    self.report.anomalies.record(Anomaly {
                        run_index: spec.start,
                        run_seed: self.exp.seed,
                        kind: AnomalyKind::WorkerLost,
                        message: format!(
                            "unit {spec} failed on worker {slot}: {error}; retry scheduled"
                        ),
                    });
                    self.emit(FabricEvent::UnitFailed {
                        unit: spec,
                        worker: slot,
                        error: error.clone(),
                    });
                    self.retry(flight.state, Some(slot), &error)?;
                }
            }
        }
        Ok(())
    }

    /// Stall and deadline supervision.
    fn check_liveness(&mut self) -> Result<(), FabricError> {
        let now = Instant::now();
        let stalled: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.alive
                    && s.busy.is_some()
                    && now.duration_since(s.last_seen) > self.config.stall_timeout
            })
            .map(|(i, _)| i)
            .collect();
        for slot in stalled {
            self.drop_worker(
                slot,
                AnomalyKind::WorkerStall,
                &format!(
                    "no heartbeat for {:.1}s",
                    self.config.stall_timeout.as_secs_f64()
                ),
            )?;
        }
        if let Some(deadline) = self.config.unit_deadline {
            let overdue: Vec<usize> = self
                .in_flight
                .values()
                .filter(|f| now.duration_since(f.started) > deadline)
                .map(|f| f.worker)
                .collect();
            for slot in overdue {
                self.drop_worker(
                    slot,
                    AnomalyKind::WallClock,
                    &format!("unit exceeded its {:.1}s deadline", deadline.as_secs_f64()),
                )?;
            }
        }
        Ok(())
    }

    /// Clean shutdown of surviving workers.
    fn shutdown_workers(&mut self) {
        for slot in &mut self.slots {
            if slot.alive {
                let _ = slot.link.send(&ToWorker::Shutdown);
            }
        }
        for slot in &mut self.slots {
            if slot.alive {
                slot.link.wait();
            }
        }
    }

    /// The final crash-consistent merge: re-read every shard file, splice
    /// campaigns, recompute margins, combine with pre-existing fresh rows
    /// and save atomically.
    fn finish(
        mut self,
        existing: ResultStore,
        out_csv: &Path,
    ) -> Result<(ResultStore, FabricReport), FabricError> {
        let (rows, _audits) = load_shard_dir(&RealIo, &self.shard_dir)?;
        let (merged, merge_report) = match &self.mode {
            SweepMode::Runs { components } => {
                let keys: Vec<Key> = campaign_keys(self.exp, components)
                    .into_iter()
                    .filter(|&(c, w, f)| !existing.contains(c, w, f))
                    .collect();
                merge_rows(self.exp, &keys, &rows, &self.expected)
            }
            // `totals` only ever holds campaigns that were not already in
            // the final store at planning time, so no filtering here.
            SweepMode::Equiv { totals, .. } => {
                merge_rows_with_totals(self.exp, totals, &rows, &self.expected)
            }
        };
        let mut store = existing;
        for r in merged.iter() {
            let fp = merged.fingerprint(r.component, r.workload, r.faults);
            // Exhaustive campaigns carry their coverage metadata
            // (classes, population) into the final store.
            match merged.exhaustive_meta(r.component, r.workload, r.faults) {
                Some(meta) => store.insert_exhaustive(r.clone(), meta, fp),
                None => store.insert_with_fingerprint(r.clone(), fp),
            }
        }
        store.save(out_csv)?;
        self.report.merge = merge_report;
        let worst_margin = store
            .iter()
            .filter_map(|r| r.achieved_margin)
            .fold(None, |acc: Option<f64>, m| {
                Some(acc.map_or(m, |a| a.max(m)))
            });
        self.emit(FabricEvent::Merged {
            campaigns: store.len(),
            gaps: self.report.merge.gaps.len(),
            worst_margin,
        });
        Ok((store, self.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_env_defaults_are_sane() {
        let c = FabricConfig::default();
        assert!(c.workers >= 1);
        assert!(c.max_attempts >= 1);
        assert!(c.steal);
        assert!(c.disk_watermark_mb.is_none(), "governor off by default");
        assert!(c.breaker_trip >= 1);
        assert!(
            c.retry_budget.is_none(),
            "retry budget unbounded by default"
        );
    }

    #[test]
    fn governor_env_knobs_are_typed() {
        // Each governor knob rejects garbage with a typed ConfigError that
        // names the variable — no silent fallback to defaults.
        for var in [
            "MBU_DISK_WATERMARK_MB",
            "MBU_BREAKER_TRIP",
            "MBU_BREAKER_COOLDOWN_MS",
            "MBU_RETRY_BUDGET",
            "MBU_UNIT_CLASSES",
        ] {
            std::env::set_var(var, "banana");
            let err = FabricConfig::from_env().unwrap_err();
            assert!(
                err.to_string().contains(var),
                "error for {var} should name it: {err}"
            );
            std::env::remove_var(var);
        }
        // A negative class count is garbage too (usize parse).
        std::env::set_var("MBU_UNIT_CLASSES", "-4");
        assert!(FabricConfig::from_env().is_err());
        std::env::remove_var("MBU_UNIT_CLASSES");
        // Zero is not a sane breaker trip point (it could never close).
        std::env::set_var("MBU_BREAKER_TRIP", "0");
        assert!(FabricConfig::from_env().is_err());
        std::env::remove_var("MBU_BREAKER_TRIP");
        // Valid values land in the right fields.
        std::env::set_var("MBU_DISK_WATERMARK_MB", "256");
        std::env::set_var("MBU_BREAKER_TRIP", "5");
        std::env::set_var("MBU_BREAKER_COOLDOWN_MS", "750");
        std::env::set_var("MBU_RETRY_BUDGET", "12");
        std::env::set_var("MBU_UNIT_CLASSES", "64");
        let c = FabricConfig::from_env().unwrap();
        assert_eq!(c.disk_watermark_mb, Some(256));
        assert_eq!(c.breaker_trip, 5);
        assert_eq!(c.breaker_cooldown, Duration::from_millis(750));
        assert_eq!(c.retry_budget, Some(12));
        assert_eq!(c.unit_classes, 64);
        for var in [
            "MBU_DISK_WATERMARK_MB",
            "MBU_BREAKER_TRIP",
            "MBU_BREAKER_COOLDOWN_MS",
            "MBU_RETRY_BUDGET",
            "MBU_UNIT_CLASSES",
        ] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn auto_unit_sizing_scales_with_workers() {
        let c = FabricConfig {
            workers: 3,
            ..FabricConfig::default()
        };
        // 150 runs / (3 workers × 4) = 13 runs per unit.
        assert_eq!(c.effective_unit_runs(150), 13);
        // Tiny campaigns never split below 8 runs…
        assert_eq!(c.effective_unit_runs(20), 8);
        // …and a unit never exceeds the campaign.
        assert_eq!(c.effective_unit_runs(5), 5);
        // An explicit size wins.
        let c = FabricConfig {
            unit_runs: 25,
            ..FabricConfig::default()
        };
        assert_eq!(c.effective_unit_runs(150), 25);
    }

    #[test]
    fn auto_unit_class_sizing_scales_with_workers() {
        let c = FabricConfig {
            workers: 4,
            ..FabricConfig::default()
        };
        // 1000 live classes / (4 workers × 4) = 63 classes per unit.
        assert_eq!(c.effective_unit_classes(1000), 63);
        // Tiny campaigns never split below 8 classes…
        assert_eq!(c.effective_unit_classes(20), 8);
        // …a unit never exceeds the live-class count…
        assert_eq!(c.effective_unit_classes(3), 3);
        // …and an explicit `MBU_UNIT_CLASSES` wins.
        let c = FabricConfig {
            unit_classes: 50,
            ..FabricConfig::default()
        };
        assert_eq!(c.effective_unit_classes(1000), 50);
    }
}
