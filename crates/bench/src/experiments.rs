//! The per-table / per-figure experiment implementations.

use crate::io::{RealIo, RetryIo, RetryPolicy, StoreIo};
use crate::store::{
    component_slug, AnalyticalRow, AnalyticalStore, ExhaustiveMeta, Key, ResultStore, StoreError,
    StoreVersion,
};
use mbu_ace::{capture, AceStructure, CaptureError, LivenessMap};
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::avf::{weighted_avf, ClassBreakdown, ComponentAvf};
use mbu_gefin::beam::{run_beam, BeamConfig};
use mbu_gefin::campaign::{
    AdaptiveSpec, Anomaly, AnomalyKind, AnomalyLog, Campaign, CampaignConfig, CampaignResult,
    InjectionTarget,
};
use mbu_gefin::classify::FaultEffect;
use mbu_gefin::error::CampaignError;
use mbu_gefin::exhaustive::{ExhaustivePlan, ExhaustiveSpec, StratifiedSpec, DEFAULT_MAX_CLASSES};
use mbu_gefin::fit::cpu_fit;
use mbu_gefin::integrity::{config_digest, golden_fingerprint, GoldenFingerprint};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_gefin::paper;
use mbu_gefin::report::{
    cross_validation_table, factor, pct, pct_opt, stacked_chart, AvfCrossValidation, StackedBar,
    Table,
};
use mbu_gefin::stats::{error_margin, fault_population, Z_99};
use mbu_gefin::tech::{
    assessment_gap, component_bits, node_avf, node_avf_with_rates, projected, TechNode,
};
use mbu_gefin::{GoldenArtifacts, SnapshotSpec};
use mbu_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a [`Experiments::run_sweep`] call actually did — the resume
/// accounting that lets callers (and tests) verify that completed campaigns
/// are never re-executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Campaigns executed in this call.
    pub executed: usize,
    /// Campaigns skipped because the store already held their key.
    pub skipped_existing: usize,
    /// Campaigns that could not run (e.g. a failed golden run); the sweep
    /// continues past them.
    pub failed: Vec<(Key, CampaignError)>,
    /// Checkpointed campaigns whose golden-run fingerprint no longer
    /// matches the current binaries/configuration; they were re-run, not
    /// merged.
    pub stale_rerun: usize,
    /// Checkpointed campaigns carrying no fingerprint (pre-integrity
    /// files); kept as-is, but flagged — their provenance is unverifiable.
    pub legacy_unverified: usize,
    /// Whether the sweep stopped early because its wall-clock deadline
    /// expired. Everything finished up to that point is checkpointed;
    /// re-running resumes where it stopped.
    pub deadline_expired: bool,
    /// Achieved error margin per campaign, for every campaign that has one
    /// (executed this call or loaded from a v2 checkpoint).
    pub margins: Vec<(Key, f64)>,
    /// Sweep-level irregularities — e.g. the golden-artifact cache being
    /// bypassed (`MBU_GOLDEN_CACHE=off`). Per-campaign anomalies stay on
    /// their [`CampaignResult`]s; entries here never affect classifications.
    pub anomalies: AnomalyLog,
}

impl SweepReport {
    /// Whether every attempted campaign succeeded.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }

    /// The worst (largest) achieved margin across the sweep, if any
    /// campaign reported one.
    pub fn worst_margin(&self) -> Option<f64> {
        self.margins
            .iter()
            .map(|(_, m)| *m)
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// Knobs governing how a sweep interacts with the outside world: which I/O
/// implementation checkpoint writes go through, how transient failures are
/// retried, the wall-clock deadline, and whether checkpoint rows are
/// verified against the current golden-run fingerprints on resume.
pub struct SweepControl<'a> {
    /// The checkpoint I/O layer (the chaos harness substitutes its own).
    pub io: &'a dyn StoreIo,
    /// Retry policy for transient checkpoint I/O failures.
    pub retry: RetryPolicy,
    /// Hard wall-clock deadline; when it passes, the sweep stops cleanly
    /// with partial, checkpointed results instead of being killed.
    pub deadline: Option<Instant>,
    /// Re-verify each resumed row's golden-run fingerprint and re-run rows
    /// that no longer match (on by default).
    pub verify_fingerprints: bool,
}

impl Default for SweepControl<'static> {
    fn default() -> Self {
        Self {
            io: &RealIo,
            retry: RetryPolicy::DEFAULT,
            deadline: None,
            verify_fingerprints: true,
        }
    }
}

/// Small structures whose full fault space the exhaustive driver
/// enumerates by equivalence class: the partition is provably exact and
/// every live class simulates exactly once, so the result carries margin 0.
pub const EXHAUSTIVE_COMPONENTS: [HwComponent; 3] =
    [HwComponent::ITlb, HwComponent::DTlb, HwComponent::RegFile];

/// Big data arrays covered by class-weighted stratified sampling when
/// [`Experiments::equiv`] is on — exhaustively enumerating their live
/// classes is infeasible, but the dead stratum is still pruned exactly.
pub const STRATIFIED_COMPONENTS: [HwComponent; 3] =
    [HwComponent::L1D, HwComponent::L1I, HwComponent::L2];

/// What one [`Experiments::run_equiv`] call did — resume accounting plus
/// the coverage aggregates the CLI and the equivalence benchmark report.
#[derive(Debug, Clone, Default)]
pub struct EquivReport {
    /// Campaigns executed in this call (exhaustive + stratified).
    pub executed: usize,
    /// Campaigns skipped because the store already held their key.
    pub skipped_existing: usize,
    /// Campaigns that could not run; the sweep continues past them.
    pub failed: Vec<(Key, CampaignError)>,
    /// Distinct simulations actually run across the executed campaigns.
    pub simulated: u64,
    /// Fault-space population (bit × cycle pairs) the executed campaigns
    /// covered — exactly for exhaustive keys, by scaling for stratified.
    pub covered_weight: u64,
    /// Population mass proven `Masked` without simulation (dead classes).
    pub pruned_weight: u64,
    /// Weight-proportional draws taken by the stratified campaigns.
    pub stratified_draws: u64,
}

impl EquivReport {
    /// Whether every attempted campaign succeeded.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

/// An invalid `MBU_*` environment variable. The silent-fallback failure
/// mode this replaces — an unparsable `MBU_THREADS` quietly running on the
/// default — is exactly the kind of misconfiguration that makes a
/// distributed sweep's shards subtly inconsistent, so every defect is
/// typed and names its variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The variable was set to a value that does not parse.
    Invalid {
        /// The environment variable.
        var: &'static str,
        /// Its actual value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// The variable was set to bytes that are not valid unicode — which
    /// `std::env::var` reports indistinguishably from "unset", silently
    /// activating the default.
    NotUnicode {
        /// The environment variable.
        var: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Invalid {
                var,
                value,
                expected,
            } => write!(f, "{var} {expected}, got `{value}`"),
            ConfigError::NotUnicode { var } => {
                write!(f, "{var} is set to non-unicode bytes")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Reads an environment variable, distinguishing "unset" from "set to
/// garbage bytes".
pub(crate) fn env_value(var: &'static str) -> Result<Option<String>, ConfigError> {
    match std::env::var_os(var) {
        None => Ok(None),
        Some(os) => match os.into_string() {
            Ok(s) => Ok(Some(s)),
            Err(_) => Err(ConfigError::NotUnicode { var }),
        },
    }
}

/// Parses an environment value with a typed failure.
pub(crate) fn parse_env<T: std::str::FromStr>(
    var: &'static str,
    value: &str,
    expected: &'static str,
) -> Result<T, ConfigError> {
    value.trim().parse().map_err(|_| ConfigError::Invalid {
        var,
        value: value.to_string(),
        expected,
    })
}

/// Parses an on/off switch value.
pub(crate) fn parse_switch(var: &'static str, value: &str) -> Result<bool, ConfigError> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" | "" => Ok(false),
        _ => Err(ConfigError::Invalid {
            var,
            value: value.to_string(),
            expected: "must be on/off",
        }),
    }
}

/// Per-component campaign data: one [`CampaignResult`] per (workload,
/// cardinality).
pub type ComponentData = Vec<CampaignResult>;

/// The experiment driver, configured from the environment.
#[derive(Debug, Clone)]
pub struct Experiments {
    /// Injection runs per campaign (`MBU_RUNS`, default 150).
    pub runs: usize,
    /// Campaign seed (`MBU_SEED`).
    pub seed: u64,
    /// Worker threads (`MBU_THREADS`, 0 = available parallelism).
    pub threads: usize,
    /// Workload subset (`MBU_WORKLOADS`, default: all 15).
    pub workloads: Vec<Workload>,
    /// Core configuration for all simulations.
    pub core: CoreConfig,
    /// Print progress lines while measuring.
    pub verbose: bool,
    /// Margin-driven adaptive early stopping per campaign
    /// (`MBU_ADAPTIVE_MARGIN`, default off: fixed `runs` per campaign).
    pub adaptive: Option<AdaptiveSpec>,
    /// Wall-clock budget for a whole sweep (`MBU_DEADLINE_SECS`, default
    /// none); on expiry the sweep stops cleanly with partial results.
    pub deadline: Option<Duration>,
    /// Checkpoint/restore fast-forward injection (`MBU_SNAPSHOTS`, default
    /// off): every campaign records golden-run snapshots, restores the
    /// nearest one instead of re-simulating the fault-free prefix, and
    /// classifies reconverged runs `Masked` early. Classifications are
    /// bit-identical to the plain path.
    pub use_snapshots: bool,
    /// Snapshot interval in cycles (`MBU_SNAPSHOT_INTERVAL`, default:
    /// auto-tuned from each workload's fault-free execution time).
    pub snapshot_interval: Option<u64>,
    /// Hard cap on retained snapshot memory in MiB (`MBU_SNAPSHOT_MEM_MB`);
    /// over the cap the store thins to sparser intervals instead of
    /// growing.
    pub snapshot_mem_mb: Option<u64>,
    /// Sweep-wide golden-artifact cache (`MBU_GOLDEN_CACHE`, default on):
    /// each workload's golden run (and snapshot store, when enabled) is
    /// computed once per sweep and shared read-only across every campaign
    /// targeting that workload. Results are bit-identical either way; `off`
    /// is an escape hatch that re-runs the golden execution per campaign
    /// and logs a sweep-level anomaly.
    pub use_golden_cache: bool,
    /// Fault-equivalence mode (`MBU_EQUIV`, default off): the exhaustive
    /// driver additionally covers the big data arrays (L1D/L1I/L2) with
    /// class-weighted stratified sampling — draws proportional to
    /// live-interval mass, the dead stratum credited `Masked` exactly.
    pub equiv: bool,
    /// Hard cap on live equivalence classes per exhaustive campaign
    /// (`MBU_EXHAUSTIVE_MAX_CLASSES`, default 4 000 000). A partition
    /// larger than the cap is rejected with a typed
    /// [`CampaignError::ClassCapExceeded`] — never silently subsampled.
    pub exhaustive_max_classes: u64,
    /// Highest fault cardinality swept (`MBU_CARDINALITY`, default 3):
    /// every sweep measures cardinalities `1..=max_cardinality`. The
    /// paper's per-component figures use 3; the full Fig. 7 sweep goes to
    /// 8 (the largest multi-bit upset the 2×2…3×3 cluster models produce).
    pub max_cardinality: usize,
}

impl Default for Experiments {
    fn default() -> Self {
        Self {
            runs: 150,
            seed: 0x6EF1_2019,
            threads: 0,
            workloads: Workload::ALL.to_vec(),
            core: CoreConfig::cortex_a9_like(),
            verbose: false,
            adaptive: None,
            deadline: None,
            use_snapshots: false,
            snapshot_interval: None,
            snapshot_mem_mb: None,
            use_golden_cache: true,
            equiv: false,
            exhaustive_max_classes: DEFAULT_MAX_CLASSES,
            max_cardinality: 3,
        }
    }
}

impl Experiments {
    /// Builds the configuration from `MBU_*` environment variables,
    /// panicking on invalid values (legacy entry point; prefer
    /// [`Experiments::try_from_env`] for a typed error).
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`]'s message on any invalid variable.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(e) => e,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the configuration from `MBU_*` environment variables,
    /// rejecting invalid values with a typed [`ConfigError`] instead of a
    /// panic or — worse — a silent fallback to the default. Non-unicode
    /// values (which `std::env::var` reports indistinguishably from
    /// "unset") are rejected too: a supervisor misconfigured with
    /// `MBU_THREADS=<garbage bytes>` must fail loudly, not quietly run on
    /// the default thread count.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending variable, its value, and what
    /// was expected of it.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        let mut e = Self::default();
        if let Some(v) = env_value("MBU_RUNS")? {
            e.runs = parse_env("MBU_RUNS", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_SEED")? {
            e.seed = parse_env("MBU_SEED", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_THREADS")? {
            e.threads = parse_env("MBU_THREADS", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_WORKLOADS")? {
            e.workloads = v
                .split(',')
                .map(|s| {
                    s.trim().parse().map_err(|_| ConfigError::Invalid {
                        var: "MBU_WORKLOADS",
                        value: s.trim().to_string(),
                        expected: "a known workload name",
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = env_value("MBU_ADAPTIVE_MARGIN")? {
            let target_margin: f64 = parse_env("MBU_ADAPTIVE_MARGIN", &v, "must be a float")?;
            e.adaptive = Some(AdaptiveSpec {
                target_margin,
                ..AdaptiveSpec::paper()
            });
        }
        if let Some(v) = env_value("MBU_DEADLINE_SECS")? {
            e.deadline = Some(Duration::from_secs(parse_env(
                "MBU_DEADLINE_SECS",
                &v,
                "must be an integer",
            )?));
        }
        if let Some(v) = env_value("MBU_SNAPSHOTS")? {
            e.use_snapshots = parse_switch("MBU_SNAPSHOTS", &v)?;
        }
        if let Some(v) = env_value("MBU_SNAPSHOT_INTERVAL")? {
            e.snapshot_interval = Some(parse_env(
                "MBU_SNAPSHOT_INTERVAL",
                &v,
                "must be an integer",
            )?);
        }
        if let Some(v) = env_value("MBU_SNAPSHOT_MEM_MB")? {
            e.snapshot_mem_mb = Some(parse_env("MBU_SNAPSHOT_MEM_MB", &v, "must be an integer")?);
        }
        if let Some(v) = env_value("MBU_GOLDEN_CACHE")? {
            e.use_golden_cache = parse_switch("MBU_GOLDEN_CACHE", &v)?;
        }
        if let Some(v) = env_value("MBU_EQUIV")? {
            e.equiv = parse_switch("MBU_EQUIV", &v)?;
        }
        if let Some(v) = env_value("MBU_EXHAUSTIVE_MAX_CLASSES")? {
            e.exhaustive_max_classes = parse_env(
                "MBU_EXHAUSTIVE_MAX_CLASSES",
                &v,
                "must be a positive integer",
            )?;
            if e.exhaustive_max_classes == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_EXHAUSTIVE_MAX_CLASSES",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_CARDINALITY")? {
            e.max_cardinality = parse_env("MBU_CARDINALITY", &v, "must be an integer in 1..=8")?;
            if !(1..=8).contains(&e.max_cardinality) {
                return Err(ConfigError::Invalid {
                    var: "MBU_CARDINALITY",
                    value: v,
                    expected: "must be an integer in 1..=8",
                });
            }
        }
        Ok(e)
    }

    /// The fault cardinalities this configuration sweeps.
    pub fn cardinalities(&self) -> std::ops::RangeInclusive<usize> {
        1..=self.max_cardinality
    }

    /// Table I: the microarchitectural configuration actually in force.
    pub fn table1(&self) -> Table {
        let c = &self.core;
        let m = &c.mem;
        let mut t = Table::new(
            "Table I — summary of setup attributes (scaled experimental config)",
            &["Microarchitectural attribute", "Value"],
        );
        let mut row = |k: &str, v: String| t.row(vec![k.to_string(), v]);
        row("ISA / Core", "custom 32-bit RISC / Out-of-Order".into());
        row(
            "L1 Data cache",
            format!("{} KB {}-way", m.l1d.size_bytes / 1024, m.l1d.ways),
        );
        row(
            "L1 Instruction cache",
            format!("{} KB {}-way", m.l1i.size_bytes / 1024, m.l1i.ways),
        );
        row(
            "L2 cache",
            format!("{} KB {}-way", m.l2.size_bytes / 1024, m.l2.ways),
        );
        row(
            "Data / Instruction TLB",
            format!("{} / {} entries", m.dtlb.entries, m.itlb.entries),
        );
        row(
            "Physical Register File",
            format!("{} registers", c.phys_regs),
        );
        row("Instruction queue", c.iq_entries.to_string());
        row("Reorder buffer", c.rob_entries.to_string());
        row(
            "Fetch / Execute / Writeback width",
            format!("{}/{}/{}", c.fetch_width, c.issue_width, c.writeback_width),
        );
        row("Page size", format!("{} B", mbu_mem::PAGE_SIZE));
        t
    }

    /// Table II: example MBU patterns drawn from the mask generator.
    pub fn table2(&self) -> String {
        let mut out =
            String::from("== Table II — multi-bit upset pattern examples (3x3 cluster) ==\n");
        let geometry = mbu_sram::Geometry::new(64, 64);
        for faults in 1..=3 {
            out.push_str(&format!("\n{}-bit fault examples:\n", faults));
            let mut gen = MaskGenerator::seeded(self.seed + faults as u64, ClusterSpec::DEFAULT);
            for i in 0..3 {
                let mask = gen.generate(geometry, faults);
                out.push_str(&format!("  example {}:\n", i + 1));
                for line in mask.pattern().lines() {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out
    }

    /// Table III: fault-free execution time of every workload, with the
    /// paper's gem5 cycle counts for shape comparison.
    pub fn table3(&self) -> Table {
        let mut t = Table::new(
            "Table III — benchmark execution time",
            &[
                "Benchmark",
                "Cycles (ours)",
                "Instructions",
                "IPC",
                "Cycles (paper, gem5)",
            ],
        );
        for &w in &self.workloads {
            let r = Simulator::new(self.core, &w.program()).run(u64::MAX / 8);
            assert_eq!(r.end, RunEnd::Exited { code: 0 }, "{w} must exit");
            t.row(vec![
                w.name().into(),
                r.cycles.to_string(),
                r.instructions.to_string(),
                format!("{:.2}", r.instructions as f64 / r.cycles as f64),
                paper::table3_cycles(w.name())
                    .map(|c| c.to_string())
                    .unwrap_or_default(),
            ]);
        }
        t
    }

    /// The snapshot-recording parameters shared by every campaign (and by
    /// [`GoldenArtifacts`] built for sweep-wide sharing).
    pub(crate) fn snapshot_spec(&self) -> SnapshotSpec {
        SnapshotSpec {
            interval: self.snapshot_interval,
            mem_cap_bytes: self.snapshot_mem_mb.map(|mb| mb * 1024 * 1024),
        }
    }

    /// The campaign configuration for one (component, workload,
    /// cardinality) — the single source of truth both execution paths and
    /// the fingerprint computation share.
    pub(crate) fn campaign_config(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(workload, component, faults)
            .runs(self.runs)
            .seed(self.seed)
            .threads(self.threads)
            .adaptive(self.adaptive)
            .use_snapshots(self.use_snapshots)
            .snapshot_spec(self.snapshot_spec());
        cfg.core = self.core;
        cfg
    }

    /// Runs one campaign.
    pub fn campaign(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> CampaignResult {
        Campaign::new(self.campaign_config(component, workload, faults)).run()
    }

    /// Runs one campaign without panicking on configuration/golden-run
    /// failures.
    pub fn try_campaign(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> Result<CampaignResult, CampaignError> {
        Campaign::try_new(self.campaign_config(component, workload, faults))?.try_run()
    }

    /// [`Experiments::try_campaign`] with shared golden artifacts: the
    /// campaign skips its private golden (and snapshot-recording) run and
    /// classifies against the pre-built reference instead. Bit-identical to
    /// the plain path — the simulator is deterministic.
    pub fn try_campaign_with_artifacts(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
        artifacts: &GoldenArtifacts,
    ) -> Result<CampaignResult, CampaignError> {
        Campaign::try_new(self.campaign_config(component, workload, faults))?
            .try_run_with_artifacts(Some(artifacts))
    }

    /// Builds (once) and memoizes the golden artifacts of `workload` for
    /// sweep-wide sharing. A failed golden run is memoized too, so a
    /// poisoned workload costs one attempt, not one per campaign.
    fn workload_artifacts(
        &self,
        cache: &mut BTreeMap<Workload, Result<Arc<GoldenArtifacts>, CampaignError>>,
        workload: Workload,
    ) -> Result<Arc<GoldenArtifacts>, CampaignError> {
        cache
            .entry(workload)
            .or_insert_with(|| {
                // Any (component, faults) combination yields the same
                // artifacts; campaign 1-bit is always constructible.
                Campaign::try_new(self.campaign_config(HwComponent::RegFile, workload, 1))?
                    .build_artifacts()
                    .map(Arc::new)
            })
            .clone()
    }

    /// The golden-run fingerprint derived from already-built artifacts —
    /// the same digest [`golden_fingerprint`] computes, without re-running
    /// the golden execution.
    pub(crate) fn artifact_fingerprint(&self, artifacts: &GoldenArtifacts) -> GoldenFingerprint {
        GoldenFingerprint::digest(
            artifacts.output(),
            artifacts.exit_code(),
            artifacts.cycles(),
            artifacts.instructions(),
            config_digest(&self.core),
        )
    }

    /// The crash-safe sweep driver: runs every missing (component, workload,
    /// cardinality) campaign over `components`, skipping keys the store
    /// already holds, optionally flushing each finished campaign to
    /// `checkpoint` via [`ResultStore::append_row`].
    ///
    /// Resumability comes from the skip + flush pair: load the checkpoint
    /// into `store` before calling, and an interrupted sweep restarts where
    /// it stopped, losing at most the single campaign that was in flight. A
    /// workload whose golden run fails is reported in
    /// [`SweepReport::failed`] and skipped (including its remaining
    /// cardinalities) rather than aborting the sweep.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O aborts the sweep — losing the ability to flush
    /// would silently forfeit crash-safety. Campaign failures never do.
    pub fn run_sweep(
        &self,
        components: &[HwComponent],
        store: &mut ResultStore,
        checkpoint: Option<&Path>,
    ) -> Result<SweepReport, StoreError> {
        let control = SweepControl {
            deadline: self.deadline.map(|d| Instant::now() + d),
            ..SweepControl::default()
        };
        self.run_sweep_with(components, store, checkpoint, &control)
    }

    /// The current golden-run fingerprint of `workload`, computed lazily
    /// and cached (`None` if the golden run fails — the campaign itself
    /// will then report the failure in detail).
    fn current_fingerprint(
        &self,
        cache: &mut BTreeMap<Workload, Option<GoldenFingerprint>>,
        workload: Workload,
    ) -> Option<GoldenFingerprint> {
        *cache
            .entry(workload)
            .or_insert_with(|| golden_fingerprint(self.core, workload).ok())
    }

    /// [`Experiments::run_sweep`] with explicit [`SweepControl`]: the form
    /// the chaos harness drives, and the one to use for custom I/O, retry,
    /// deadline or fingerprint-verification policies.
    ///
    /// On resume, each checkpointed row's stored golden-run fingerprint is
    /// compared against the fingerprint the current binaries produce; a
    /// mismatch means the simulator, core configuration or workload changed
    /// underneath the checkpoint, so the row is **re-run**, not merged.
    /// Rows from pre-integrity files carry no fingerprint; they are kept
    /// (old results are not orphaned) but counted in
    /// [`SweepReport::legacy_unverified`].
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O aborts the sweep (after the retry policy is
    /// exhausted) — losing the ability to flush would silently forfeit
    /// crash-safety. Campaign failures never do.
    pub fn run_sweep_with(
        &self,
        components: &[HwComponent],
        store: &mut ResultStore,
        checkpoint: Option<&Path>,
        control: &SweepControl<'_>,
    ) -> Result<SweepReport, StoreError> {
        let retry_io = RetryIo::new(control.io, control.retry);
        let mut report = SweepReport::default();
        let mut fingerprints: BTreeMap<Workload, Option<GoldenFingerprint>> = BTreeMap::new();
        let mut artifacts: BTreeMap<Workload, Result<Arc<GoldenArtifacts>, CampaignError>> =
            BTreeMap::new();
        if !self.use_golden_cache {
            report.anomalies.record(Anomaly {
                run_index: 0,
                run_seed: self.seed,
                kind: AnomalyKind::GoldenCacheBypass,
                message: "golden-artifact cache disabled (MBU_GOLDEN_CACHE=off); every campaign \
                          re-ran its own golden execution"
                    .into(),
            });
            if self.verbose {
                eprintln!("  golden-artifact cache bypassed (MBU_GOLDEN_CACHE=off)");
            }
        }
        'sweep: for &component in components {
            for &w in &self.workloads {
                let mut workload_poisoned = false;
                for faults in self.cardinalities() {
                    if let Some(deadline) = control.deadline {
                        if Instant::now() >= deadline {
                            report.deadline_expired = true;
                            if self.verbose {
                                eprintln!(
                                    "  sweep deadline expired; stopping with partial results"
                                );
                            }
                            break 'sweep;
                        }
                    }
                    if store.contains(component, w, faults) {
                        let stale = control.verify_fingerprints
                            && match store.fingerprint(component, w, faults) {
                                None => {
                                    report.legacy_unverified += 1;
                                    if self.verbose {
                                        eprintln!(
                                            "  warning: {component}/{w}/{faults}-bit comes from a \
                                             pre-integrity checkpoint (no fingerprint); kept as-is"
                                        );
                                    }
                                    false
                                }
                                Some(stored) => {
                                    // An unobtainable current fingerprint
                                    // (golden run fails today) cannot prove
                                    // staleness; the row is kept.
                                    self.current_fingerprint(&mut fingerprints, w)
                                        .is_some_and(|current| current != stored)
                                }
                            };
                        if !stale {
                            report.skipped_existing += 1;
                            if let Some(m) = store
                                .get(component, w, faults)
                                .and_then(|r| r.achieved_margin)
                            {
                                report.margins.push(((component, w, faults), m));
                            }
                            continue;
                        }
                        report.stale_rerun += 1;
                        if self.verbose {
                            eprintln!(
                                "  {component}/{w}/{faults}-bit checkpoint is stale \
                                 (fingerprint mismatch); re-running"
                            );
                        }
                    }
                    if workload_poisoned {
                        continue;
                    }
                    let outcome = if self.use_golden_cache {
                        // One golden (and recording) run per workload,
                        // shared read-only across every campaign.
                        self.workload_artifacts(&mut artifacts, w).and_then(|a| {
                            self.try_campaign_with_artifacts(component, w, faults, &a)
                        })
                    } else {
                        self.try_campaign(component, w, faults)
                    };
                    match outcome {
                        Ok(r) => {
                            report.executed += 1;
                            if let Some(m) = r.achieved_margin {
                                report.margins.push(((component, w, faults), m));
                            }
                            if self.verbose {
                                eprintln!("  {r}");
                                if !r.anomalies.is_empty() {
                                    eprintln!("  {}", r.anomalies);
                                }
                            }
                            // With cached artifacts the fingerprint is
                            // derived from them — no extra golden run.
                            let fp = match artifacts.get(&w) {
                                Some(Ok(a)) => *fingerprints
                                    .entry(w)
                                    .or_insert_with(|| Some(self.artifact_fingerprint(a))),
                                _ => self.current_fingerprint(&mut fingerprints, w),
                            };
                            if let Some(path) = checkpoint {
                                ResultStore::append_row_with(&retry_io, path, &r, fp)?;
                            }
                            store.insert_with_fingerprint(r, fp);
                        }
                        Err(e) => {
                            if self.verbose {
                                eprintln!("  {component}/{w}/{faults}-bit failed: {e}");
                            }
                            // A golden-run failure poisons every cardinality
                            // of this workload; don't burn time rediscovering
                            // it twice.
                            workload_poisoned = matches!(e, CampaignError::GoldenRunFailed { .. });
                            report.failed.push(((component, w, faults), e));
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// The exhaustive-campaign parameters this configuration implies.
    pub fn exhaustive_spec(&self) -> ExhaustiveSpec {
        ExhaustiveSpec {
            max_classes: self.exhaustive_max_classes,
            ..ExhaustiveSpec::default()
        }
    }

    /// The stratified-sampling parameters this configuration implies: the
    /// paper's 2.88 % @ 99 % target, drawn with this sweep's seed.
    pub fn stratified_spec(&self) -> StratifiedSpec {
        StratifiedSpec {
            seed: self.seed,
            ..StratifiedSpec::paper()
        }
    }

    /// The single-bit campaign configuration an equivalence-class campaign
    /// runs under — the sampled-path configuration with adaptive stopping
    /// cleared (exhaustive campaigns enumerate, they never stop early).
    pub(crate) fn equiv_config(
        &self,
        component: HwComponent,
        workload: Workload,
    ) -> CampaignConfig {
        let mut cfg = self.campaign_config(component, workload, 1);
        cfg.adaptive = None;
        cfg
    }

    /// The crash-safe equivalence-class campaign driver: enumerates the
    /// full single-bit fault space of every small structure in
    /// [`EXHAUSTIVE_COMPONENTS`] by fault-equivalence class (one simulation
    /// per live class, dead classes pruned `Masked`, margin exactly 0) and
    /// — when [`Experiments::equiv`] is on — covers the big arrays in
    /// [`STRATIFIED_COMPONENTS`] with class-weighted stratified sampling.
    ///
    /// Results land in `store` under the exhaustive row flavor
    /// ([`ResultStore::insert_exhaustive`]) and flush to `checkpoint` as
    /// they complete, so an interrupted run resumes where it stopped
    /// exactly like [`Experiments::run_sweep`].
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O aborts the driver; campaign failures are
    /// reported in [`EquivReport::failed`] and skipped.
    pub fn run_equiv(
        &self,
        store: &mut ResultStore,
        checkpoint: Option<&Path>,
    ) -> Result<EquivReport, StoreError> {
        let stratified: &[HwComponent] = if self.equiv {
            &STRATIFIED_COMPONENTS
        } else {
            &[]
        };
        self.run_equiv_with(&EXHAUSTIVE_COMPONENTS, stratified, store, checkpoint)
    }

    /// [`Experiments::run_equiv`] with explicit component sets: every
    /// component in `exhaustive` gets a full class enumeration, every
    /// component in `stratified` a class-weighted stratified campaign.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O aborts the driver.
    pub fn run_equiv_with(
        &self,
        exhaustive_components: &[HwComponent],
        stratified_components: &[HwComponent],
        store: &mut ResultStore,
        checkpoint: Option<&Path>,
    ) -> Result<EquivReport, StoreError> {
        let retry_io = RetryIo::new(&RealIo, RetryPolicy::DEFAULT);
        let mut report = EquivReport::default();
        let mut artifacts: BTreeMap<Workload, Result<Arc<GoldenArtifacts>, CampaignError>> =
            BTreeMap::new();
        let mut fingerprints: BTreeMap<Workload, Option<GoldenFingerprint>> = BTreeMap::new();
        let spec = self.exhaustive_spec();
        for (i, &component) in exhaustive_components
            .iter()
            .chain(stratified_components)
            .enumerate()
        {
            let exhaustive = i < exhaustive_components.len();
            for &w in &self.workloads {
                if store.contains(component, w, 1) {
                    report.skipped_existing += 1;
                    continue;
                }
                let outcome = self.run_equiv_campaign(
                    component,
                    w,
                    spec,
                    exhaustive,
                    &mut artifacts,
                    &mut report,
                );
                match outcome {
                    Ok((result, meta)) => {
                        report.executed += 1;
                        report.covered_weight = report.covered_weight.saturating_add(meta.weight);
                        let fp = match artifacts.get(&w) {
                            Some(Ok(a)) => *fingerprints
                                .entry(w)
                                .or_insert_with(|| Some(self.artifact_fingerprint(a))),
                            _ => self.current_fingerprint(&mut fingerprints, w),
                        };
                        if self.verbose {
                            eprintln!(
                                "  {result} [{} classes over {} bit-cycles]",
                                meta.classes, meta.weight
                            );
                        }
                        if let Some(path) = checkpoint {
                            ResultStore::append_flavored_row_with(
                                &retry_io,
                                path,
                                &result,
                                fp,
                                Some(meta),
                            )?;
                        }
                        store.insert_exhaustive(result, meta, fp);
                    }
                    Err(e) => {
                        if self.verbose {
                            eprintln!("  {component}/{w}/1-bit failed: {e}");
                        }
                        report.failed.push(((component, w, 1), e));
                    }
                }
            }
        }
        Ok(report)
    }

    /// Runs one equivalence-class campaign (exhaustive or stratified) and
    /// returns the population-weighted result plus its store metadata.
    fn run_equiv_campaign(
        &self,
        component: HwComponent,
        workload: Workload,
        spec: ExhaustiveSpec,
        exhaustive: bool,
        artifacts: &mut BTreeMap<Workload, Result<Arc<GoldenArtifacts>, CampaignError>>,
        report: &mut EquivReport,
    ) -> Result<(CampaignResult, ExhaustiveMeta), CampaignError> {
        let plan = ExhaustivePlan::try_new(self.equiv_config(component, workload), spec)?;
        let shared = if self.use_golden_cache {
            Some(self.workload_artifacts(artifacts, workload)?)
        } else {
            None
        };
        if exhaustive {
            let r = plan.run(shared.as_deref())?;
            report.simulated += r.simulated;
            report.pruned_weight = report.pruned_weight.saturating_add(r.pruned_weight);
            let meta = ExhaustiveMeta {
                classes: r.simulated,
                weight: r.coverage.population,
            };
            Ok((r.campaign, meta))
        } else {
            let r = plan.run_stratified(self.stratified_spec(), shared.as_deref())?;
            report.simulated += r.simulated;
            report.pruned_weight = report.pruned_weight.saturating_add(r.coverage.dead_weight);
            report.stratified_draws += r.draws;
            let meta = ExhaustiveMeta {
                classes: r.simulated,
                weight: r.coverage.population,
            };
            Ok((r.campaign, meta))
        }
    }

    /// Renders the equivalence-class campaigns the store holds — one row
    /// per key carrying the exhaustive flavor, with its coverage proof.
    pub fn equiv_table(&self, store: &ResultStore) -> Table {
        let mut t = Table::new(
            "Equivalence-class campaigns — coverage per (component, workload)",
            &[
                "Component",
                "Workload",
                "Mode",
                "Classes",
                "Population",
                "AVF",
                "±margin",
                "Coverage",
            ],
        );
        for &c in EXHAUSTIVE_COMPONENTS.iter().chain(&STRATIFIED_COMPONENTS) {
            for &w in &self.workloads {
                let (Some(r), Some(meta)) = (store.get(c, w, 1), store.exhaustive_meta(c, w, 1))
                else {
                    continue;
                };
                let proved = r.achieved_margin == Some(0.0);
                t.row(vec![
                    c.to_string(),
                    w.to_string(),
                    if proved { "exhaustive" } else { "stratified" }.into(),
                    meta.classes.to_string(),
                    meta.weight.to_string(),
                    pct(r.avf()),
                    pct_opt(r.achieved_margin),
                    if proved {
                        "100% (proved)".into()
                    } else {
                        "100% (dead exact, live scaled)".into()
                    },
                ]);
            }
        }
        t
    }

    /// Read-only integrity audit of a checkpoint file: format version,
    /// per-row CRC verification, and each stored golden-run fingerprint
    /// checked against what the *current* binaries produce. Nothing is
    /// modified — defective rows are reported, not quarantined.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`StoreError::UnsupportedVersion`].
    pub fn verify_store(&self, path: &Path) -> Result<Table, StoreError> {
        let text = std::fs::read_to_string(path)?;
        let (store, audit) = ResultStore::from_csv_lossy(&text)?;
        let mut t = Table::new(
            &format!("Checkpoint audit — {}", path.display()),
            &["Check", "Result"],
        );
        t.row(vec![
            "format version".into(),
            match audit.version {
                StoreVersion::V2 => "v2 (checksummed)".into(),
                StoreVersion::Legacy => "legacy v1 (no checksums, no fingerprints)".into(),
            },
        ]);
        t.row(vec!["rows parsed".into(), audit.rows_loaded.to_string()]);
        t.row(vec!["distinct campaigns".into(), store.len().to_string()]);
        t.row(vec![
            "defective rows".into(),
            audit.quarantined.len().to_string(),
        ]);
        for q in &audit.quarantined {
            t.row(vec![format!("  line {}", q.line), q.defect.to_string()]);
        }
        let mut fingerprints: BTreeMap<Workload, Option<GoldenFingerprint>> = BTreeMap::new();
        let (mut fresh, mut stale, mut unstamped) = (0usize, 0usize, 0usize);
        for r in store.iter() {
            match store.fingerprint(r.component, r.workload, r.faults) {
                None => unstamped += 1,
                Some(stored) => match self.current_fingerprint(&mut fingerprints, r.workload) {
                    Some(current) if current == stored => fresh += 1,
                    _ => stale += 1,
                },
            }
        }
        t.row(vec![
            "fingerprints matching current binaries".into(),
            fresh.to_string(),
        ]);
        t.row(vec![
            "fingerprints stale (would re-run on resume)".into(),
            stale.to_string(),
        ]);
        t.row(vec![
            "rows without fingerprint".into(),
            unstamped.to_string(),
        ]);
        let margins: Vec<f64> = store.iter().filter_map(|r| r.achieved_margin).collect();
        t.row(vec![
            "worst achieved margin".into(),
            margins
                .iter()
                .copied()
                .max_by(f64::total_cmp)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
        // Exhaustive-flavor rows: the class/weight columns already parsed
        // (counts summing to the declared population), so what remains to
        // audit is whether that population reconciles with the structure's
        // actual bit × cycle fault space under the current configuration.
        let mut geometry: BTreeMap<HwComponent, u64> = BTreeMap::new();
        let (mut exhaustive_rows, mut reconciled) = (0usize, 0usize);
        let mut mismatches = Vec::new();
        for r in store.iter() {
            let Some(meta) = store.exhaustive_meta(r.component, r.workload, r.faults) else {
                continue;
            };
            exhaustive_rows += 1;
            let bits = *geometry.entry(r.component).or_insert_with(|| {
                Simulator::new(self.core, &r.workload.program())
                    .component_geometry(r.component)
                    .total_bits() as u64
            });
            let expected = bits.saturating_mul(r.fault_free_cycles);
            if meta.weight == expected {
                reconciled += 1;
            } else {
                mismatches.push(format!(
                    "  {}/{}/{}-bit: weight {} != {} bits x {} cycles",
                    r.component, r.workload, r.faults, meta.weight, bits, r.fault_free_cycles
                ));
            }
        }
        t.row(vec![
            "exhaustive-flavor rows".into(),
            exhaustive_rows.to_string(),
        ]);
        if exhaustive_rows > 0 {
            t.row(vec![
                "exhaustive weights reconciling with bit x cycle space".into(),
                reconciled.to_string(),
            ]);
            for m in mismatches {
                t.row(vec![m, "WEIGHT MISMATCH".into()]);
            }
        }
        Ok(t)
    }

    /// Runs the full campaign set of one component (every workload × 1/2/3
    /// bits) and stores the results.
    ///
    /// # Panics
    ///
    /// Panics if any campaign fails; use [`Experiments::run_sweep`] for the
    /// fault-tolerant, checkpointing form.
    pub fn measure_component(&self, component: HwComponent, store: &mut ResultStore) {
        let report = self
            .run_sweep(&[component], store, None)
            .expect("no checkpoint file, so no I/O can fail");
        if let Some((key, e)) = report.failed.first() {
            panic!("campaign {}/{}/{} failed: {e}", key.0, key.1, key.2);
        }
    }

    /// Figure 1–6: per-benchmark fault-effect breakdown for one component.
    pub fn figure_table(&self, component: HwComponent, store: &ResultStore) -> Table {
        let fig = match component {
            HwComponent::L1D => 1,
            HwComponent::L1I => 2,
            HwComponent::L2 => 3,
            HwComponent::RegFile => 4,
            HwComponent::DTlb => 5,
            HwComponent::ITlb => 6,
        };
        let mut t = Table::new(
            &format!("Fig. {fig} — AVF for 1/2/3-bit fault injection, {component}"),
            &[
                "Benchmark",
                "Faults",
                "Masked",
                "SDC",
                "Crash",
                "Timeout",
                "Assert",
                "AVF",
                "±margin",
            ],
        );
        for &w in &self.workloads {
            for faults in self.cardinalities() {
                if let Some(r) = store.get(component, w, faults) {
                    let b = ClassBreakdown::from_counts(&r.counts);
                    t.row(vec![
                        w.name().into(),
                        faults.to_string(),
                        pct(b.masked),
                        pct(b.sdc),
                        pct(b.crash),
                        pct(b.timeout),
                        pct(b.assert_),
                        pct(b.avf()),
                        pct_opt(r.achieved_margin),
                    ]);
                }
            }
        }
        t
    }

    /// Eq. 2: execution-time-weighted AVFs per component from the store.
    ///
    /// # Panics
    ///
    /// Panics if the store is missing campaigns for the configured
    /// workloads.
    pub fn component_avfs(&self, store: &ResultStore) -> BTreeMap<HwComponent, ComponentAvf> {
        let mut out = BTreeMap::new();
        for c in HwComponent::ALL {
            let per_card: Vec<f64> = (1..=3)
                .map(|faults| {
                    let samples: Vec<(f64, u64)> = self
                        .workloads
                        .iter()
                        .map(|&w| {
                            let r = store
                                .get(c, w, faults)
                                .unwrap_or_else(|| panic!("missing campaign {c}/{w}/{faults}"));
                            (r.avf(), r.fault_free_cycles)
                        })
                        .collect();
                    weighted_avf(&samples)
                })
                .collect();
            out.insert(c, ComponentAvf::new(per_card[0], per_card[1], per_card[2]));
        }
        out
    }

    /// Table IV: per-component vulnerability increase (2-bit and 3-bit vs
    /// single-bit), both as the maximum over benchmarks (the paper's view)
    /// and as the ratio of weighted AVFs.
    pub fn table4(&self, store: &ResultStore) -> Table {
        let avfs = self.component_avfs(store);
        let mut t = Table::new(
            "Table IV — vulnerability increase per component",
            &[
                "Component",
                "2-bit (max over benchmarks)",
                "3-bit (max over benchmarks)",
                "2-bit (weighted)",
                "3-bit (weighted)",
                "paper 2-bit",
                "paper 3-bit",
            ],
        );
        for c in HwComponent::ALL {
            let mut max2: f64 = 0.0;
            let mut max3: f64 = 0.0;
            for &w in &self.workloads {
                let a1 = store.get(c, w, 1).map(|r| r.avf()).unwrap_or(0.0);
                if a1 > 0.0 {
                    if let Some(r2) = store.get(c, w, 2) {
                        max2 = max2.max(r2.avf() / a1);
                    }
                    if let Some(r3) = store.get(c, w, 3) {
                        max3 = max3.max(r3.avf() / a1);
                    }
                }
            }
            let a = &avfs[&c];
            let (p2, p3) = paper::table4_increases(c);
            t.row(vec![
                c.to_string(),
                factor(max2),
                factor(max3),
                factor(a.increase_2bit()),
                factor(a.increase_3bit()),
                factor(p2),
                factor(p3),
            ]);
        }
        t
    }

    /// Table V: weighted AVF per component for 1/2/3 faults, with error
    /// margins (99 % confidence) and the paper's values alongside.
    pub fn table5(&self, store: &ResultStore) -> Table {
        let avfs = self.component_avfs(store);
        let paper_avfs = paper::table5_avfs();
        let mut t = Table::new(
            "Table V — weighted AVF per component for 1, 2 and 3 faults",
            &[
                "Component",
                "Faults",
                "AVF",
                "Increase",
                "±99% margin",
                "AVF (paper)",
            ],
        );
        for c in HwComponent::ALL {
            let a = &avfs[&c];
            let p = &paper_avfs[&c];
            for faults in 1..=3 {
                let avf = a.for_cardinality(faults);
                let increase = match faults {
                    2 => format!("+{:.2}%", a.pct_increase_1_to_2()),
                    3 => format!("+{:.2}%", a.pct_increase_2_to_3()),
                    _ => "-".into(),
                };
                // Mean fault population and mean executed sample count
                // across workloads for the margin (adaptive campaigns may
                // have stopped short of the configured run cap).
                let present: Vec<&CampaignResult> = self
                    .workloads
                    .iter()
                    .filter_map(|&w| store.get(c, w, faults))
                    .collect();
                let denom = present.len().max(1) as u64;
                let mean_cycles = present.iter().map(|r| r.fault_free_cycles).sum::<u64>() / denom;
                let mean_samples = present.iter().map(|r| r.counts.total()).sum::<u64>() / denom;
                let population = fault_population(component_bits(c), mean_cycles.max(1));
                let margin = error_margin(
                    population,
                    mean_samples.clamp(1, population),
                    Z_99,
                    avf.clamp(0.01, 0.99),
                )
                .map(pct)
                .unwrap_or_else(|_| "-".into());
                t.row(vec![
                    c.to_string(),
                    faults.to_string(),
                    pct(avf),
                    increase,
                    margin,
                    pct(p.for_cardinality(faults)),
                ]);
            }
        }
        t
    }

    /// Table VI: the per-node MBU rates (input data from Ibe et al.).
    pub fn table6(&self) -> Table {
        let mut t = Table::new(
            "Table VI — multi-bit rates per node",
            &["Technology Node", "Single-bit", "Double-bit", "Triple-bit"],
        );
        for node in TechNode::ALL {
            let r = node.mbu_rates();
            t.row(vec![node.to_string(), pct(r[0]), pct(r[1]), pct(r[2])]);
        }
        t
    }

    /// Table VII: raw FIT per bit per node (input data).
    pub fn table7(&self) -> Table {
        let mut t = Table::new(
            "Table VII — raw FIT for 250 nm to 22 nm nodes",
            &["Node", "Raw FIT per bit"],
        );
        for node in TechNode::ALL {
            t.row(vec![
                node.to_string(),
                format!("{:.0} x 10^-8", node.raw_fit_per_bit() * 1e8),
            ]);
        }
        t
    }

    /// Table VIII: component sizes in bits.
    pub fn table8(&self) -> Table {
        let mut t = Table::new(
            "Table VIII — component sizes in bits",
            &["Component", "Size (bits)"],
        );
        for c in HwComponent::ALL {
            t.row(vec![c.to_string(), component_bits(c).to_string()]);
        }
        t
    }

    /// Figure 7: aggregate multi-bit AVF per component per node (Eq. 3),
    /// with the single-bit baseline and the assessment gap.
    pub fn fig7(&self, avfs: &BTreeMap<HwComponent, ComponentAvf>) -> Table {
        let mut t = Table::new(
            "Fig. 7 — multi-bit weighted AVF per component per technology node",
            &[
                "Component",
                "Node",
                "Single-bit AVF",
                "Aggregate AVF",
                "Gap",
            ],
        );
        for c in HwComponent::ALL {
            let a = &avfs[&c];
            for node in TechNode::ALL {
                t.row(vec![
                    c.to_string(),
                    node.to_string(),
                    pct(a.single),
                    pct(node_avf(a, node)),
                    format!("{:+.1}%", assessment_gap(a, node) * 100.0),
                ]);
            }
        }
        t
    }

    /// Figure 8: CPU FIT per node with the multi-bit contribution (Eq. 4).
    pub fn fig8(&self, avfs: &BTreeMap<HwComponent, ComponentAvf>) -> Table {
        let mut t = Table::new(
            "Fig. 8 — FIT for the entire CPU core per technology node",
            &[
                "Node",
                "Total FIT",
                "Single-bit FIT",
                "MBU FIT",
                "MBU contribution",
            ],
        );
        for node in TechNode::ALL {
            let fit = cpu_fit(avfs, node);
            t.row(vec![
                node.to_string(),
                format!("{:.4}", fit.total),
                format!("{:.4}", fit.single_bit_only),
                format!("{:.4}", fit.mbu_part()),
                format!("{:.1}%", fit.mbu_contribution_pct()),
            ]);
        }
        t
    }

    /// Summary + observations (Table IV right column analogue): the
    /// per-class character of each component, computed from the store.
    pub fn class_character(&self, store: &ResultStore) -> Table {
        let mut t = Table::new(
            "Per-component fault-effect character (aggregate over benchmarks, 1-3 bit)",
            &["Component", "Masked", "SDC", "Crash", "Timeout", "Assert"],
        );
        for c in HwComponent::ALL {
            let mut counts = mbu_gefin::ClassCounts::new();
            for r in store.iter().filter(|r| r.component == c) {
                counts.merge(&r.counts);
            }
            if counts.total() == 0 {
                continue;
            }
            t.row(vec![
                c.to_string(),
                pct(counts.fraction(FaultEffect::Masked)),
                pct(counts.fraction(FaultEffect::Sdc)),
                pct(counts.fraction(FaultEffect::Crash)),
                pct(counts.fraction(FaultEffect::Timeout)),
                pct(counts.fraction(FaultEffect::Assert)),
            ]);
        }
        t
    }

    /// Ablation A: data-array vs tag-array injection for the caches
    /// (DESIGN.md design-choice ablation; the paper injects data arrays).
    pub fn ablation_tag_vs_data(&self) -> Table {
        let mut t = Table::new(
            "Ablation — data array vs tag array AVF (2-bit faults)",
            &["Component", "Workload", "Data-array AVF", "Tag-array AVF"],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Sha);
        for c in [HwComponent::L1D, HwComponent::L1I, HwComponent::L2] {
            let data = Campaign::new(
                CampaignConfig::new(workload, c, 2)
                    .runs(self.runs)
                    .seed(self.seed)
                    .threads(self.threads),
            )
            .run();
            let tag = Campaign::new(
                CampaignConfig::new(workload, c, 2)
                    .runs(self.runs)
                    .seed(self.seed)
                    .threads(self.threads)
                    .target(InjectionTarget::TagArray),
            )
            .run();
            t.row(vec![
                c.to_string(),
                workload.to_string(),
                pct(data.avf()),
                pct(tag.avf()),
            ]);
        }
        t
    }

    /// Ablation B: out-of-order vs in-order issue — performance and
    /// register-file vulnerability (the paper's conclusion extends the
    /// methodology to in-order CPUs).
    pub fn ablation_in_order(&self) -> Table {
        let mut t = Table::new(
            "Ablation — out-of-order vs in-order core",
            &["Core", "Workload", "Cycles", "IPC", "RegFile 2-bit AVF"],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Sha);
        for (name, core) in [
            ("out-of-order", CoreConfig::cortex_a9_like()),
            ("in-order", CoreConfig::in_order_a9()),
        ] {
            let r = Simulator::new(core, &workload.program()).run(u64::MAX / 8);
            let mut cfg = CampaignConfig::new(workload, HwComponent::RegFile, 2)
                .runs(self.runs)
                .seed(self.seed)
                .threads(self.threads);
            cfg.core = core;
            let campaign = Campaign::new(cfg).run();
            t.row(vec![
                name.into(),
                workload.to_string(),
                r.cycles.to_string(),
                format!("{:.2}", r.instructions as f64 / r.cycles as f64),
                pct(campaign.avf()),
            ]);
        }
        t
    }

    /// Ablation C: cluster-window size (the paper fixes 3×3 because larger
    /// upsets have ~zero rates; this quantifies the sensitivity).
    pub fn ablation_cluster_size(&self) -> Table {
        let mut t = Table::new(
            "Ablation — cluster window size (3-bit faults, DTLB)",
            &["Cluster", "Workload", "AVF"],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Qsort);
        for (name, cluster) in [
            ("2x2", ClusterSpec::new(2, 2)),
            ("3x3", ClusterSpec::new(3, 3)),
            ("4x4", ClusterSpec::new(4, 4)),
            ("1x9 (row burst)", ClusterSpec::new(1, 9)),
        ] {
            let r = Campaign::new(
                CampaignConfig::new(workload, HwComponent::DTlb, 3)
                    .runs(self.runs)
                    .seed(self.seed)
                    .threads(self.threads)
                    .cluster(cluster),
            )
            .run();
            t.row(vec![name.into(), workload.to_string(), pct(r.avf())]);
        }
        t
    }

    /// Extension: the projected 14 nm FinFET node appended to the Fig. 7 /
    /// Fig. 8 series (clearly marked as a projection).
    pub fn projected_14nm(&self, avfs: &BTreeMap<HwComponent, ComponentAvf>) -> Table {
        let mut t = Table::new(
            "Extension — projected 14 nm FinFET node (not paper data)",
            &[
                "Component",
                "22 nm aggregate AVF",
                "14 nm projected AVF",
                "14 nm projected FIT",
            ],
        );
        let rates = projected::finfet_14nm_rates();
        let raw = projected::finfet_14nm_raw_fit();
        for c in HwComponent::ALL {
            let a = &avfs[&c];
            let v22 = node_avf(a, TechNode::N22);
            let v14 = node_avf_with_rates(a, rates);
            let fit14 = v14 * raw * component_bits(c) as f64;
            t.row(vec![
                c.to_string(),
                pct(v22),
                pct(v14),
                format!("{fit14:.5}"),
            ]);
        }
        t
    }

    /// Figure 1–6 as an ASCII stacked-bar chart (the paper's visual form):
    /// `.` masked, `S` SDC, `C` crash, `T` timeout, `A` assert.
    pub fn figure_chart(&self, component: HwComponent, store: &ResultStore) -> String {
        let mut bars = Vec::new();
        for &w in &self.workloads {
            for faults in self.cardinalities() {
                if let Some(r) = store.get(component, w, faults) {
                    let b = ClassBreakdown::from_counts(&r.counts);
                    bars.push(StackedBar {
                        label: format!("{}/{}", w.name(), faults),
                        segments: vec![
                            ('.', b.masked),
                            ('S', b.sdc),
                            ('C', b.crash),
                            ('T', b.timeout),
                            ('A', b.assert_),
                        ],
                    });
                }
            }
        }
        stacked_chart(
            &format!("{component} — masked(.) SDC(S) crash(C) timeout(T) assert(A)"),
            &bars,
            60,
        )
    }

    /// Ablation D: data-array column interleaving (the paper's refs
    /// \[39\]\[46\] protection): with interleave ≥ 3, a 3×3 spatial cluster
    /// degenerates into ≤1 flipped bit per logical word.
    pub fn ablation_interleaving(&self) -> Table {
        let mut t = Table::new(
            "Ablation — L1D column interleaving vs 3-bit spatial MBU AVF",
            &["Interleave", "Workload", "AVF"],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Sha);
        for interleave in [1u32, 2, 4] {
            let mut cfg = CampaignConfig::new(workload, HwComponent::L1D, 3)
                .runs(self.runs)
                .seed(self.seed)
                .threads(self.threads);
            cfg.core.mem.l1d = cfg.core.mem.l1d.with_interleave(interleave);
            let r = Campaign::new(cfg).run();
            t.row(vec![
                format!("{interleave}x"),
                workload.to_string(),
                pct(r.avf()),
            ]);
        }
        t
    }

    /// Extension: beam emulation vs the Eq. 3 aggregate — validates the
    /// single-fault injection methodology against a Poisson multi-strike
    /// protocol at the same node.
    pub fn beam_validation(&self, store: &ResultStore) -> Table {
        let mut t = Table::new(
            "Extension — beam emulation vs Eq. 3 aggregate (22 nm)",
            &[
                "Workload",
                "Component",
                "Beam AVF|struck",
                "Eq. 3 aggregate AVF",
            ],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Sha);
        for component in [HwComponent::RegFile, HwComponent::L1D] {
            let beam = run_beam(
                &BeamConfig::new(workload, component, TechNode::N22)
                    .runs(self.runs)
                    .flux(0.7)
                    .seed(self.seed),
            );
            let eq3 = (1..=3)
                .map(|f| {
                    store
                        .get(component, workload, f)
                        .map(|r| r.avf())
                        .unwrap_or(0.0)
                        * TechNode::N22.mbu_rates()[f - 1]
                })
                .sum::<f64>();
            t.row(vec![
                workload.to_string(),
                component.to_string(),
                pct(beam.avf_given_struck()),
                pct(eq3),
            ]);
        }
        t
    }

    /// Ablation E: stall-on-branch (the default front end) vs bimodal
    /// speculation — cycles and register-file AVF. Speculation shortens
    /// runs and changes instruction-level liveness, so this bounds the
    /// modeling error of the no-speculation divergence noted in DESIGN.md.
    pub fn ablation_speculation(&self) -> Table {
        let mut t = Table::new(
            "Ablation — stall-on-branch vs bimodal speculation",
            &["Front end", "Workload", "Cycles", "RegFile 2-bit AVF"],
        );
        let workload = self.workloads.first().copied().unwrap_or(Workload::Qsort);
        for (name, core) in [
            ("stall-on-branch", CoreConfig::cortex_a9_like()),
            ("bimodal speculation", CoreConfig::speculative_a9()),
        ] {
            let run = Simulator::new(core, &workload.program()).run(u64::MAX / 8);
            let mut cfg = CampaignConfig::new(workload, HwComponent::RegFile, 2)
                .runs(self.runs)
                .seed(self.seed)
                .threads(self.threads);
            cfg.core = core;
            let campaign = Campaign::new(cfg).run();
            t.row(vec![
                name.into(),
                workload.to_string(),
                run.cycles.to_string(),
                pct(campaign.avf()),
            ]);
        }
        t
    }

    /// Analytical (ACE) vs injected AVF cross-validation over every
    /// configured workload and all six components.
    ///
    /// One fault-free [`mbu_ace::capture`] per workload yields the
    /// analytical AVF of all six data arrays at once; the injected AVF is
    /// the single-bit campaign (`1 − masked fraction`), reused from
    /// `rstore` when present. Both sides checkpoint incrementally
    /// ([`AnalyticalStore::append_row`] / [`ResultStore::append_row`]), so
    /// an interrupted cross-validation resumes where it stopped.
    ///
    /// A workload whose capture or golden run fails is skipped (reported on
    /// stderr when verbose) rather than aborting the sweep.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O aborts the run, mirroring
    /// [`Experiments::run_sweep`].
    pub fn xval_rows(
        &self,
        astore: &mut AnalyticalStore,
        rstore: &mut ResultStore,
        analytical_checkpoint: Option<&Path>,
        injected_checkpoint: Option<&Path>,
    ) -> Result<Vec<AvfCrossValidation>, StoreError> {
        let mut rows = Vec::new();
        for &w in &self.workloads {
            // Analytical side: capture once per workload, unless every
            // component is already checkpointed.
            if HwComponent::ALL.iter().any(|&c| !astore.contains(c, w)) {
                match capture(self.core, &w.program()) {
                    Ok(map) => {
                        for c in HwComponent::ALL {
                            let r = &map.structures[&AceStructure::for_component(c)];
                            let row = AnalyticalRow {
                                component: c,
                                workload: w,
                                analytical_avf: r.analytical_avf(),
                                total_cycles: map.total_cycles,
                            };
                            if let Some(path) = analytical_checkpoint {
                                AnalyticalStore::append_row(path, &row)?;
                            }
                            astore.insert(row);
                        }
                    }
                    Err(e) => {
                        if self.verbose {
                            eprintln!("  {w}: fault-free capture failed: {e}");
                        }
                        continue;
                    }
                }
            }
            // Injected side: single-bit data-array campaigns.
            for c in HwComponent::ALL {
                if !rstore.contains(c, w, 1) {
                    match self.try_campaign(c, w, 1) {
                        Ok(r) => {
                            if self.verbose {
                                eprintln!("  {r}");
                            }
                            if let Some(path) = injected_checkpoint {
                                ResultStore::append_row(path, &r)?;
                            }
                            rstore.insert(r);
                        }
                        Err(e) => {
                            if self.verbose {
                                eprintln!("  {c}/{w}/1-bit failed: {e}");
                            }
                            continue;
                        }
                    }
                }
                let (Some(a), Some(i)) = (astore.get(c, w), rstore.get(c, w, 1)) else {
                    continue;
                };
                rows.push(AvfCrossValidation {
                    component: component_slug(c).into(),
                    workload: w.name().into(),
                    analytical: a.analytical_avf,
                    injected: i.avf(),
                });
            }
        }
        Ok(rows)
    }

    /// Renders [`Experiments::xval_rows`] as the paper-style table.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O failures.
    pub fn xval_table(
        &self,
        astore: &mut AnalyticalStore,
        rstore: &mut ResultStore,
        analytical_checkpoint: Option<&Path>,
        injected_checkpoint: Option<&Path>,
    ) -> Result<Table, StoreError> {
        let rows = self.xval_rows(astore, rstore, analytical_checkpoint, injected_checkpoint)?;
        Ok(cross_validation_table(&rows))
    }

    /// Fault-free occupancy / liveness observation of one workload.
    ///
    /// # Errors
    ///
    /// Propagates [`CaptureError`] if the observation run does not exit
    /// cleanly.
    pub fn observe(&self, workload: Workload) -> Result<LivenessMap, CaptureError> {
        capture(self.core, &workload.program())
    }

    /// Per-structure residency summary of one captured run: geometry,
    /// recorded events, live-bit-cycles, analytical AVF and mean live
    /// fraction for all nine observed arrays.
    pub fn occupancy_table(&self, workload: Workload, map: &LivenessMap) -> Table {
        let mut t = Table::new(
            &format!(
                "Occupancy & liveness — {workload} ({} cycles, {} instructions)",
                map.total_cycles, map.instructions
            ),
            &[
                "Structure",
                "Geometry",
                "Events",
                "Live-bit-cycles",
                "Analytical AVF",
                "Mean live",
            ],
        );
        for s in AceStructure::ALL {
            let r = &map.structures[&s];
            t.row(vec![
                s.slug().into(),
                format!("{}x{}", r.rows(), r.cols()),
                r.events.to_string(),
                r.live_bit_cycles().to_string(),
                pct(r.analytical_avf()),
                pct(r.mean_live_fraction()),
            ]);
        }
        t
    }

    /// Pipeline-queue occupancy summary (ROB / issue queue / store buffer).
    pub fn pipeline_occupancy_table(&self, map: &LivenessMap) -> Table {
        let o = &map.occupancy;
        let mut t = Table::new(
            &format!("Pipeline occupancy ({} sampled cycles)", o.samples),
            &["Queue", "Capacity", "Mean", "Peak", "Mean utilization"],
        );
        let cap_rob = self.core.rob_entries as usize;
        let cap_iq = self.core.iq_entries as usize;
        let mut row = |name: &str, cap: usize, mean: f64, peak: usize| {
            t.row(vec![
                name.into(),
                if cap > 0 { cap.to_string() } else { "-".into() },
                format!("{mean:.2}"),
                peak.to_string(),
                if cap > 0 {
                    pct(mean / cap as f64)
                } else {
                    "-".into()
                },
            ]);
        };
        row("reorder buffer", cap_rob, o.mean_rob, o.max_rob);
        row("issue queue", cap_iq, o.mean_iq, o.max_iq);
        row("store buffer", 0, o.mean_sb, o.max_sb);
        t
    }

    /// The bucketed occupancy time series as CSV
    /// (`cycle,rob,iq,store_buffer`), for plotting.
    pub fn occupancy_series_csv(&self, map: &LivenessMap) -> String {
        let mut out = String::from("cycle,rob,iq,store_buffer\n");
        for p in &map.occupancy.series {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3}\n",
                p.cycle, p.rob, p.iq, p.store_buffer
            ));
        }
        out
    }

    /// Progress label for one component measurement.
    pub fn describe(&self, component: HwComponent) -> String {
        format!(
            "{} ({}): {} workloads x 3 cardinalities x {} runs",
            component,
            component_slug(component),
            self.workloads.len(),
            self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiments {
        Experiments {
            runs: 8,
            workloads: vec![Workload::Stringsearch],
            ..Experiments::default()
        }
    }

    #[test]
    fn table1_lists_scaled_config() {
        let t = tiny().table1();
        let s = t.to_string();
        assert!(s.contains("2 KB 4-way"));
        assert!(s.contains("56 registers"));
        assert!(s.contains("2/4/4"));
    }

    #[test]
    fn table2_renders_patterns() {
        let s = tiny().table2();
        assert!(s.contains("1-bit fault examples"));
        assert!(s.contains("3-bit fault examples"));
        assert!(s.matches('X').count() >= 1 + 2 + 3);
    }

    #[test]
    fn table3_reports_cycles() {
        let t = tiny().table3();
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("stringsearch"));
    }

    #[test]
    fn measure_and_derive_small() {
        let e = tiny();
        let mut store = ResultStore::new();
        e.measure_component(HwComponent::RegFile, &mut store);
        assert_eq!(store.len(), 3);
        let fig = e.figure_table(HwComponent::RegFile, &store);
        assert_eq!(fig.len(), 3);
        // Derivations need all six components; fill the rest from the same
        // component's numbers to exercise the math paths.
        for c in HwComponent::ALL {
            for f in 1..=3 {
                if store.get(c, Workload::Stringsearch, f).is_none() {
                    let mut r = store
                        .get(HwComponent::RegFile, Workload::Stringsearch, f)
                        .unwrap()
                        .clone();
                    r.component = c;
                    store.insert(r);
                }
            }
        }
        let avfs = e.component_avfs(&store);
        assert_eq!(avfs.len(), 6);
        assert_eq!(e.fig7(&avfs).len(), 48);
        assert_eq!(e.fig8(&avfs).len(), 8);
        assert_eq!(e.table4(&store).len(), 6);
        assert_eq!(e.table5(&store).len(), 18);
        assert!(!e.class_character(&store).is_empty());
    }

    #[test]
    fn static_tables_have_expected_rows() {
        let e = tiny();
        assert_eq!(e.table6().len(), 8);
        assert_eq!(e.table7().len(), 8);
        assert_eq!(e.table8().len(), 6);
    }

    #[test]
    fn xval_cross_validates_and_resumes_from_checkpoints() {
        let e = tiny();
        let w = Workload::Stringsearch;
        let dir = std::env::temp_dir().join(format!("mbu-xval-test-{}", std::process::id()));
        let a_path = dir.join("analytical.csv");
        let i_path = dir.join("injected.csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut astore = AnalyticalStore::new();
        let mut rstore = ResultStore::new();
        let rows = e
            .xval_rows(&mut astore, &mut rstore, Some(&a_path), Some(&i_path))
            .unwrap();
        assert_eq!(
            rows.len(),
            6,
            "one row per component for the single workload"
        );
        for r in &rows {
            assert!(
                (0.0..=1.0).contains(&r.analytical),
                "{}: {}",
                r.component,
                r.analytical
            );
            assert!((0.0..=1.0).contains(&r.injected));
        }
        // Both estimates agree that the register file is far more
        // vulnerable than the (mostly idle) L2.
        let by = |slug: &str| rows.iter().find(|r| r.component == slug).unwrap();
        assert!(by("regfile").analytical > by("l2").analytical);
        // The table renders every pair plus the mean row.
        let t = cross_validation_table(&rows);
        assert_eq!(t.len(), 7);
        // Resuming from the on-disk checkpoints recomputes nothing and
        // reproduces the same rows.
        let mut astore2 = AnalyticalStore::load(&a_path).unwrap();
        let mut rstore2 = ResultStore::load(&i_path).unwrap();
        assert_eq!(astore2.len(), 6);
        let again = e
            .xval_rows(&mut astore2, &mut rstore2, Some(&a_path), Some(&i_path))
            .unwrap();
        assert_eq!(again.len(), rows.len());
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.component, b.component);
            assert!((a.analytical - b.analytical).abs() < 1e-12);
            assert_eq!(a.injected, b.injected);
        }
        assert_eq!(astore2.get(HwComponent::L2, w).unwrap().total_cycles, {
            astore.get(HwComponent::L2, w).unwrap().total_cycles
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn occupancy_tables_and_series_render() {
        let e = tiny();
        let map = e.observe(Workload::Stringsearch).unwrap();
        let t = e.occupancy_table(Workload::Stringsearch, &map);
        assert_eq!(t.len(), AceStructure::ALL.len());
        assert!(t.to_string().contains("l1d-tag"));
        let p = e.pipeline_occupancy_table(&map);
        assert_eq!(p.len(), 3);
        let csv = e.occupancy_series_csv(&map);
        assert!(csv.starts_with("cycle,rob,iq,store_buffer\n"));
        assert!(csv.lines().count() > 1, "series must not be empty");
    }

    #[test]
    fn sweep_resumes_skipping_completed_keys() {
        let e = tiny();
        let w = Workload::Stringsearch;
        let c = HwComponent::RegFile;
        let mut store = ResultStore::new();
        let first = e.run_sweep(&[c], &mut store, None).unwrap();
        assert_eq!(first.executed, 3, "fresh sweep runs every campaign");
        assert_eq!(first.skipped_existing, 0);
        assert!(first.is_clean());
        // Re-running against the same store executes nothing.
        let second = e.run_sweep(&[c], &mut store, None).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.skipped_existing, 3);
        // Resume from a partial store (as after a kill): only the missing
        // key runs, and deterministically reproduces the original result.
        let mut partial = ResultStore::new();
        partial.insert(store.get(c, w, 1).unwrap().clone());
        partial.insert(store.get(c, w, 3).unwrap().clone());
        let resumed = e.run_sweep(&[c], &mut partial, None).unwrap();
        assert_eq!(resumed.executed, 1, "only the missing campaign re-runs");
        assert_eq!(resumed.skipped_existing, 2);
        assert_eq!(partial.get(c, w, 2).unwrap(), store.get(c, w, 2).unwrap());
    }

    #[test]
    fn equiv_env_knobs_parse_and_reject_typed() {
        // Defaults: off, with the documented class cap.
        let e = Experiments::default();
        assert!(!e.equiv);
        assert_eq!(e.exhaustive_max_classes, DEFAULT_MAX_CLASSES);
        // Valid values round-trip.
        std::env::set_var("MBU_EQUIV", "on");
        std::env::set_var("MBU_EXHAUSTIVE_MAX_CLASSES", "1234");
        let e = Experiments::try_from_env().unwrap();
        assert!(e.equiv);
        assert_eq!(e.exhaustive_max_classes, 1234);
        // Invalid values are typed errors naming the variable — never a
        // silent fallback to the default.
        std::env::set_var("MBU_EQUIV", "maybe");
        assert_eq!(
            Experiments::try_from_env().unwrap_err(),
            ConfigError::Invalid {
                var: "MBU_EQUIV",
                value: "maybe".into(),
                expected: "must be on/off",
            }
        );
        std::env::set_var("MBU_EQUIV", "off");
        std::env::set_var("MBU_EXHAUSTIVE_MAX_CLASSES", "lots");
        assert_eq!(
            Experiments::try_from_env().unwrap_err(),
            ConfigError::Invalid {
                var: "MBU_EXHAUSTIVE_MAX_CLASSES",
                value: "lots".into(),
                expected: "must be a positive integer",
            }
        );
        // Zero would disable exhaustive mode entirely while looking set.
        std::env::set_var("MBU_EXHAUSTIVE_MAX_CLASSES", "0");
        assert_eq!(
            Experiments::try_from_env().unwrap_err(),
            ConfigError::Invalid {
                var: "MBU_EXHAUSTIVE_MAX_CLASSES",
                value: "0".into(),
                expected: "must be a positive integer",
            }
        );
        std::env::remove_var("MBU_EQUIV");
        std::env::remove_var("MBU_EXHAUSTIVE_MAX_CLASSES");
        let e = Experiments::try_from_env().unwrap();
        assert!(!e.equiv);
        assert_eq!(e.exhaustive_max_classes, DEFAULT_MAX_CLASSES);
    }

    #[test]
    fn equiv_driver_stratified_covers_l2_and_resumes() {
        let e = tiny();
        let w = Workload::Stringsearch;
        let c = HwComponent::L2;
        let dir = std::env::temp_dir().join(format!("mbu-equiv-test-{}", std::process::id()));
        let path = dir.join("equiv.csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::new();
        let report = e
            .run_equiv_with(&[], &[c], &mut store, Some(&path))
            .unwrap();
        assert_eq!(report.executed, 1);
        assert!(report.is_clean(), "{:?}", report.failed);
        assert!(report.stratified_draws >= 100, "paper spec draws ≥ min");
        assert!(report.simulated > 0);
        let meta = store.exhaustive_meta(c, w, 1).unwrap();
        let row = store.get(c, w, 1).unwrap();
        // Scaled counts cover the whole population, and that population
        // reconciles with the structure's actual bit × cycle fault space.
        assert_eq!(row.counts.total(), meta.weight);
        let bits = Simulator::new(e.core, &w.program())
            .component_geometry(c)
            .total_bits() as u64;
        assert_eq!(meta.weight, bits * row.fault_free_cycles);
        assert!(row.achieved_margin.unwrap() > 0.0, "stratified, not proved");
        // The flavored checkpoint row survives a reload with its metadata,
        // and the resumed driver re-runs nothing.
        let mut reloaded = ResultStore::load(&path).unwrap();
        assert_eq!(reloaded.exhaustive_meta(c, w, 1), Some(meta));
        let back = reloaded.get(c, w, 1).unwrap();
        // oracle_skips (like details) is not a persisted column; the
        // classification payload must round-trip bit-identically.
        assert_eq!(back.counts, row.counts);
        assert_eq!(back.achieved_margin, row.achieved_margin);
        assert_eq!(back.fault_free_cycles, row.fault_free_cycles);
        assert_eq!(back.fault_free_instructions, row.fault_free_instructions);
        let again = e
            .run_equiv_with(&[], &[c], &mut reloaded, Some(&path))
            .unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.skipped_existing, 1);
        // The audit reports the flavor and reconciles its weight.
        let audit = e.verify_store(&path).unwrap().to_string();
        assert!(audit.contains("exhaustive-flavor rows"));
        assert!(!audit.contains("WEIGHT MISMATCH"), "{audit}");
        // The coverage table renders the stratified row.
        let t = e.equiv_table(&reloaded).to_string();
        assert!(t.contains("stratified"), "{t}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_sweep_resumes_from_disk() {
        let e = tiny();
        let c = HwComponent::RegFile;
        let dir = std::env::temp_dir().join(format!("mbu-sweep-test-{}", std::process::id()));
        let path = dir.join("sweep.csv");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::new();
        e.run_sweep(&[c], &mut store, Some(&path)).unwrap();
        // Every finished campaign was flushed as it completed.
        let reloaded = ResultStore::load(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        // A restarted process loads the checkpoint and has nothing to do.
        let mut resumed_store = reloaded;
        let report = e.run_sweep(&[c], &mut resumed_store, Some(&path)).unwrap();
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped_existing, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
