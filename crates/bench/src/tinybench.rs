//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace must build fully offline, so Criterion is not available;
//! this module provides the small slice of its surface the benches need:
//! named groups, per-group sample counts, element throughput, and a
//! `Bencher::iter` that auto-calibrates the batch size so even
//! nanosecond-scale functions are measured over ≥ 1 ms batches.
//!
//! Run with `cargo bench -p mbu-bench --features bench-harness`; the
//! `TINYBENCH_SAMPLES` environment variable overrides every group's sample
//! count (handy for a quick smoke run in CI: `TINYBENCH_SAMPLES=2`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can guard values against constant folding.
pub use std::hint::black_box as bb;

/// Target wall-clock time of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(1);

/// Measures one benchmark body.
pub struct Bencher {
    /// Nanoseconds per iteration of each sample.
    samples_ns: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples_ns: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `f`, batching calls so each sample spans at least
    /// [`TARGET_BATCH`] of wall-clock.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up + batch calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// A named set of related benchmarks.
pub struct Group {
    name: String,
    sample_count: usize,
    throughput_elements: Option<u64>,
}

impl Group {
    /// Sets the number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Declares that one iteration processes `n` elements, enabling the
    /// elements-per-second column.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.throughput_elements = Some(n);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = env_samples().unwrap_or(self.sample_count);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&self.name, name, &b.samples_ns, self.throughput_elements);
        self
    }

    /// No-op, kept for call-site symmetry with Criterion.
    pub fn finish(&mut self) {}
}

/// Creates a benchmark group.
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        sample_count: 20,
        throughput_elements: None,
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("TINYBENCH_SAMPLES")
        .ok()?
        .parse()
        .ok()
        .map(|n: usize| n.max(2))
}

fn report(group: &str, name: &str, samples_ns: &[f64], throughput: Option<u64>) {
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let mut line = format!(
        "{group}/{name}: median {} (min {}, mean {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        sorted.len(),
    );
    if let Some(elements) = throughput {
        let per_sec = elements as f64 / (median * 1e-9);
        line.push_str(&format!(", {} elem/s", fmt_rate(per_sec)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 2u64 + 2);
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_rate(5e6).ends_with('M'));
    }
}
