//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--paper] [--csv] [--out <path>]
//!
//! experiments:
//!   table1..table8   the paper's tables
//!   fig1..fig6       per-component AVF breakdowns (runs injection campaigns)
//!   fig7 fig8        technology-node aggregates (derived)
//!   measure          run all fig1-fig6 campaigns and save results
//!   summary          per-component class character (Table IV commentary)
//!   xval             analytical (ACE liveness) vs injected AVF, all
//!                    components x workloads (checkpointed)
//!   occupancy        per-structure liveness + pipeline occupancy for one
//!                    workload (--workload), time series saved to results/
//!   verify-store <csv>  read-only integrity audit of a checkpoint file:
//!                    format version, per-row CRCs, golden-run fingerprints
//!                    vs the current binaries; with --shards <dir> audits a
//!                    worker shard directory instead (per-shard CRC and
//!                    fingerprint status plus class-range weight
//!                    reconciliation for exhaustive-flavor shards,
//!                    non-zero exit on defective rows or annotations)
//!   sweep            distributed measure: spawns MBU_WORKERS (or
//!                    --workers N) supervised worker processes, shards
//!                    every campaign into run-ranges, retries lost or
//!                    stalled workers, steals straggler tails, and merges
//!                    the per-worker shard stores into --out — the merged
//!                    CSV is byte-identical to a single-process measure
//!   worker           one sweep worker (supervisor-spawned over stdio, or
//!                    --connect <addr> for a remote supervisor); writes its
//!                    checksummed shard to --shard <path> before acking
//!   serve            like sweep, but adopts --workers N workers that
//!                    connect to --listen <addr> instead of spawning them
//!   daemon           long-running HTTP injection service: accepts sweep
//!                    submissions (POST /sweeps), runs them concurrently
//!                    over the fabric, streams live progress, and serves
//!                    merged results; restart-safe (--state dir)
//!   submit           client: POST a sweep to a daemon (--to <addr>),
//!                    prints the job id
//!   status           client: job status (--to <addr>, id positional);
//!                    --follow streams live events until the job finishes
//!   fetch            client: download a finished job's merged CSV
//!                    (--to <addr>, id positional, --out <path>)
//!   cancel           client: cancel a queued or running job
//!   chaos-http       client: fire the MBU_CHAOS_HTTP fault family
//!                    (slow-loris, torn bodies, mid-stream disconnects,
//!                    header floods) at a daemon (--to <addr>) and verify
//!                    every fault gets a typed response and the acceptor
//!                    stays healthy; non-zero exit otherwise
//!   snapbench        campaign wall-clock with the snapshot fast path off
//!                    vs on, per component (BENCH_snapshot.json), then a
//!                    3-component sweep with the golden-artifact cache off
//!                    vs on (BENCH_sweep.json)
//!   exhaustive       provable-coverage equivalence-class campaigns: one
//!                    run per live (bit, access-interval) class on the
//!                    small structures (ITLB/DTLB/PRF), weight-multiplied
//!                    into the same FIT pipeline with margin exactly 0;
//!                    checkpoints to results/exhaustive.csv next to --out
//!                    and resumes like measure; MBU_EQUIV=on extends to
//!                    the big arrays (L1D/L1I/L2) via class-weighted
//!                    stratified sampling; --components restricts the set;
//!                    --workers N (or --listen <addr>) shards each campaign
//!                    by live-class range over the distributed fabric —
//!                    class-range shards land in shards-equiv/ and the
//!                    flavor-aware merge is bit-identical to the
//!                    single-process sweep (MBU_UNIT_CLASSES sizes units)
//!   equivbench       run-count economics of the class-weighted stratified
//!                    campaigns vs the paper's uniform 2000-run protocol
//!                    at matched margin (BENCH_equiv.json); --workers N
//!                    appends a distributed class-range scaling section
//!                    (1 vs N single-threaded workers, bit-identity checked)
//!   all              everything in paper order
//!
//! flags:
//!   --paper          derive fig7/fig8 from the paper's published Table V
//!                    instead of measured data
//!   --csv            print CSV instead of ASCII tables
//!   --out <path>     results CSV path (default results/measured.csv)
//!   --workload <w>   workload for `occupancy`/`snapbench` (default
//!                    stringsearch)
//!   --snapshots      enable checkpoint/restore fast-forward injection for
//!                    every campaign (measure/fig1-6/xval/all);
//!                    classifications stay bit-identical
//!
//! Service knobs (daemon): MBU_HTTP_MAX_JOBS (concurrent sweeps, default
//! 2), MBU_HTTP_QUEUE (queued submissions before 429, default 8),
//! MBU_HTTP_CONN_MAX (connection cap before load-shedding 503s, default
//! 64), MBU_HTTP_TIMEOUT_SECS (per-connection read/write deadline,
//! default 30), MBU_DRAIN_TIMEOUT_SECS (graceful-drain budget on
//! SIGTERM, default 60), MBU_MEM_BUDGET_MB (shared snapshot-memory
//! budget split across running jobs), MBU_RETAIN_JOBS (terminal jobs
//! whose shard dirs survive retention GC).
//!
//! environment: MBU_RUNS, MBU_SEED, MBU_THREADS, MBU_WORKLOADS,
//! MBU_ADAPTIVE_MARGIN (adaptive early stopping), MBU_DEADLINE_SECS
//! (sweep wall-clock budget), MBU_SNAPSHOTS, MBU_SNAPSHOT_INTERVAL,
//! MBU_SNAPSHOT_MEM_MB (snapshot fast path and its memory cap),
//! MBU_GOLDEN_CACHE (sweep-wide golden-artifact cache, default on),
//! MBU_EQUIV (stratified big-array coverage for `exhaustive`),
//! MBU_EXHAUSTIVE_MAX_CLASSES (live-class cap per exhaustive campaign,
//! default 4 000 000; larger partitions are rejected, never subsampled).
//! Fabric knobs (sweep/serve/worker): MBU_WORKERS, MBU_UNIT_RUNS,
//! MBU_UNIT_CLASSES (classes per exhaustive unit, 0 = auto),
//! MBU_HEARTBEAT_MS, MBU_STALL_SECS, MBU_UNIT_DEADLINE_SECS,
//! MBU_UNIT_RETRIES, MBU_STEAL, MBU_DISK_WATERMARK_MB (pause assignment
//! under this much free disk), MBU_BREAKER_TRIP / MBU_BREAKER_COOLDOWN_MS
//! (worker-respawn circuit breaker), MBU_RETRY_BUDGET (per-sweep retry
//! ceiling, typed exhaustion). Invalid values are rejected with a typed
//! error, never silently defaulted.
//! ```

use mbu_bench::supervisor::{FabricConfig, FabricReport, Supervisor, SweepOptions, WorkerPool};
use mbu_bench::{
    AnalyticalStore, Experiments, Json, ResultStore, EXHAUSTIVE_COMPONENTS, STRATIFIED_COMPONENTS,
};
use mbu_cpu::HwComponent;
use mbu_gefin::paper;
use mbu_gefin::report::Table;
use mbu_workloads::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    experiment: String,
    /// Second positional argument (the file to audit for `verify-store`).
    target: Option<PathBuf>,
    use_paper: bool,
    csv: bool,
    chart: bool,
    out: PathBuf,
    workload: Workload,
    snapshots: bool,
    /// `--workers N` override for sweep/serve.
    workers: Option<usize>,
    /// `--shards <dir>`: shard directory for sweep/serve/verify-store.
    shards: Option<PathBuf>,
    /// `--shard <path>`: this worker's shard store.
    shard: Option<PathBuf>,
    /// `--listen <addr>` for serve/daemon.
    listen: Option<String>,
    /// `--connect <addr>` for worker.
    connect: Option<String>,
    /// `--id <name>`: stable worker id for TCP session resume.
    worker_id: Option<String>,
    /// `--state <dir>`: daemon job-state directory.
    state: PathBuf,
    /// `--to <addr>`: daemon address for the client verbs.
    to: Option<String>,
    /// `--follow`: stream live events until the job finishes.
    follow: bool,
    /// `--components <a,b,..>` for submit (default: all six).
    components: Option<String>,
    /// `--mode <measure|exhaustive>` for submit (default: measure).
    mode: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut target = None;
    let mut use_paper = false;
    let mut csv = false;
    let mut out = PathBuf::from("results/measured.csv");
    let mut chart = false;
    let mut workload = Workload::Stringsearch;
    let mut snapshots = false;
    let mut workers = None;
    let mut shards = None;
    let mut shard = None;
    let mut listen = None;
    let mut connect = None;
    let mut worker_id = None;
    let mut state = PathBuf::from("results/serve");
    let mut to = None;
    let mut follow = false;
    let mut components = None;
    let mut mode = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => {
                let v = args.next().ok_or("--workers needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--workers must be a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--workers must be a positive integer, got `0`".into());
                }
                workers = Some(n);
            }
            "--shards" => {
                shards = Some(PathBuf::from(
                    args.next().ok_or("--shards needs a directory")?,
                ));
            }
            "--shard" => {
                shard = Some(PathBuf::from(args.next().ok_or("--shard needs a path")?));
            }
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--connect" => {
                connect = Some(args.next().ok_or("--connect needs an address")?);
            }
            "--id" => {
                worker_id = Some(args.next().ok_or("--id needs a worker name")?);
            }
            "--state" => {
                state = PathBuf::from(args.next().ok_or("--state needs a directory")?);
            }
            "--to" => {
                to = Some(args.next().ok_or("--to needs an address")?);
            }
            "--follow" => follow = true,
            "--components" => {
                components = Some(args.next().ok_or("--components needs a list")?);
            }
            "--mode" => {
                mode = Some(args.next().ok_or("--mode needs measure|exhaustive")?);
            }
            "--paper" => use_paper = true,
            "--csv" => csv = true,
            "--chart" => chart = true,
            "--snapshots" => snapshots = true,
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--workload" => {
                let name = args.next().ok_or("--workload needs a name")?;
                workload = name
                    .parse()
                    .map_err(|_| format!("unknown workload `{name}`"))?;
            }
            "-h" | "--help" => return Err(String::new()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other if experiment.is_some() && target.is_none() && !other.starts_with('-') => {
                target = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        experiment: experiment.ok_or("missing experiment id")?,
        target,
        use_paper,
        csv,
        chart,
        out,
        workload,
        snapshots,
        workers,
        shards,
        shard,
        listen,
        connect,
        worker_id,
        state,
        to,
        follow,
        components,
        mode,
    })
}

fn usage() {
    eprintln!(
        "usage: repro <table1..table8|fig1..fig8|measure|summary|ablation|xval|occupancy|verify-store|snapbench|exhaustive|equivbench|sweep|worker|serve|all> [--paper] [--csv] [--chart] [--out path] [--workload w] [--snapshots]\n\
         \x20      repro verify-store <checkpoint.csv>   read-only integrity audit\n\
         \x20      repro verify-store --shards <dir>     audit worker shard stores (exit 1 on defects)\n\
         \x20      repro sweep [--workers N] [--shards dir]  distributed measure with supervised workers\n\
         \x20      repro serve --listen <addr> [--workers N] adopt TCP-connected workers instead\n\
         \x20      repro worker --shard <path> [--connect <addr>] [--id name]  one worker (normally supervisor-spawned)\n\
         \x20      repro daemon --listen <addr> [--state dir]  HTTP injection service (see README)\n\
         \x20      repro submit --to <addr> [--components a,b] [--mode measure|exhaustive]  POST a sweep, prints the job id\n\
         \x20      repro status --to <addr> <id> [--follow]    job status / live event stream\n\
         \x20      repro fetch --to <addr> <id> --out <path>   download the merged CSV\n\
         \x20      repro cancel --to <addr> <id>               cancel a queued/running job\n\
         \x20      repro chaos-http --to <addr>                fire HTTP faults at a daemon, verify typed replies\n\
         \x20      repro snapbench [--workload w]        snapshot off/on wall-clock -> BENCH_snapshot.json,\n\
         \x20                                            golden-cache off/on sweep -> BENCH_sweep.json\n\
         \x20      repro exhaustive [--components a,b]   one run per live equivalence class (ITLB/DTLB/PRF;\n\
         \x20                                            MBU_EQUIV=on adds stratified L1/L2) -> results/exhaustive.csv\n\
         \x20      repro exhaustive --workers N [--shards dir]  same sweep sharded by class range over the fabric\n\
         \x20                                            (bit-identical merge; --listen <addr> adopts TCP workers)\n\
         \x20      repro equivbench [--workload w]       stratified vs uniform-2000 run economics -> BENCH_equiv.json\n\
         \x20      repro equivbench --workers N          adds distributed class-range scaling (1 vs N workers)\n\
         env:   MBU_RUNS (default 150), MBU_SEED, MBU_THREADS, MBU_WORKLOADS,\n\
         \x20      MBU_ADAPTIVE_MARGIN, MBU_DEADLINE_SECS, MBU_SNAPSHOTS,\n\
         \x20      MBU_SNAPSHOT_INTERVAL, MBU_SNAPSHOT_MEM_MB, MBU_GOLDEN_CACHE,\n\
         \x20      MBU_EQUIV, MBU_EXHAUSTIVE_MAX_CLASSES (equivalence-class modes),\n\
         \x20      MBU_WORKERS, MBU_UNIT_RUNS, MBU_UNIT_CLASSES, MBU_HEARTBEAT_MS, MBU_STALL_SECS,\n\
         \x20      MBU_UNIT_DEADLINE_SECS, MBU_UNIT_RETRIES, MBU_STEAL,\n\
         \x20      MBU_DISK_WATERMARK_MB, MBU_BREAKER_TRIP, MBU_BREAKER_COOLDOWN_MS,\n\
         \x20      MBU_RETRY_BUDGET (fabric governor),\n\
         \x20      MBU_HTTP_MAX_JOBS, MBU_HTTP_QUEUE, MBU_HTTP_CONN_MAX,\n\
         \x20      MBU_HTTP_TIMEOUT_SECS, MBU_DRAIN_TIMEOUT_SECS,\n\
         \x20      MBU_MEM_BUDGET_MB, MBU_RETAIN_JOBS (daemon)"
    );
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

fn fig_component(id: &str) -> Option<HwComponent> {
    Some(match id {
        "fig1" => HwComponent::L1D,
        "fig2" => HwComponent::L1I,
        "fig3" => HwComponent::L2,
        "fig4" => HwComponent::RegFile,
        "fig5" => HwComponent::DTlb,
        "fig6" => HwComponent::ITlb,
        _ => return None,
    })
}

/// Loads the measured store crash-safely: defective rows are quarantined
/// (with a warning) rather than discarding the whole checkpoint, and
/// pre-integrity files are upgraded in place.
fn load_store(opts: &Options) -> ResultStore {
    match ResultStore::recover(&opts.out) {
        Ok((store, audit)) => {
            if !audit.quarantined.is_empty() {
                eprintln!(
                    "warning: {} defective row(s) in {} moved to {} ({} intact rows kept)",
                    audit.quarantined.len(),
                    opts.out.display(),
                    mbu_bench::store::quarantine_path(&opts.out).display(),
                    audit.rows_loaded,
                );
            }
            if audit.version == mbu_bench::StoreVersion::Legacy {
                eprintln!(
                    "warning: {} was a pre-integrity (v1) checkpoint without checksums or \
                     fingerprints; upgraded to v2 in place",
                    opts.out.display()
                );
            }
            store
        }
        Err(e) => {
            eprintln!("warning: could not load {}: {e}", opts.out.display());
            ResultStore::new()
        }
    }
}

fn derived_avfs(
    e: &Experiments,
    opts: &Options,
    store: &mut ResultStore,
) -> std::collections::BTreeMap<HwComponent, mbu_gefin::ComponentAvf> {
    if opts.use_paper {
        eprintln!("note: deriving from the paper's published Table V (--paper)");
        return paper::table5_avfs();
    }
    if !store.is_complete() {
        eprintln!(
            "note: measured results incomplete ({} of 270 campaigns at {}); measuring now",
            store.len(),
            opts.out.display()
        );
        measure_all(e, opts, store);
    }
    e.component_avfs(store)
}

/// Runs every missing campaign, flushing each one to the checkpoint CSV as
/// it finishes — a killed `measure` loses at most the campaign in flight,
/// and a restart re-runs only what is missing.
fn measure_all(e: &Experiments, opts: &Options, store: &mut ResultStore) {
    for c in HwComponent::ALL {
        eprintln!("measuring {}", e.describe(c));
        match e.run_sweep(&[c], store, Some(&opts.out)) {
            Ok(report) => {
                if report.skipped_existing > 0 {
                    eprintln!(
                        "  resumed: {} campaigns already in {}",
                        report.skipped_existing,
                        opts.out.display()
                    );
                }
                if report.stale_rerun > 0 {
                    eprintln!(
                        "  re-ran {} campaign(s) whose golden-run fingerprint was stale",
                        report.stale_rerun
                    );
                }
                if report.legacy_unverified > 0 {
                    eprintln!(
                        "  kept {} unverifiable pre-integrity campaign(s) (no fingerprint)",
                        report.legacy_unverified
                    );
                }
                if let Some(m) = report.worst_margin() {
                    eprintln!("  worst achieved margin: ±{:.2}%", m * 100.0);
                }
                for ((comp, w, faults), err) in &report.failed {
                    eprintln!("  warning: skipped {comp}/{w}/{faults}-bit: {err}");
                }
                if report.deadline_expired {
                    eprintln!("  deadline expired: partial results checkpointed; re-run to resume");
                    break;
                }
            }
            Err(err) => {
                eprintln!(
                    "warning: could not checkpoint to {}: {err}",
                    opts.out.display()
                );
            }
        }
    }
    // Compact the append-only checkpoint (drops re-measured duplicates).
    if let Err(err) = store.save(&opts.out) {
        eprintln!("warning: could not save {}: {err}", opts.out.display());
    }
}

/// Prints the fabric's post-sweep accounting and returns whether the sweep
/// completed clean (no quarantined units, full merge coverage).
fn report_fabric(report: &FabricReport, store: &ResultStore, out: &std::path::Path) -> bool {
    eprintln!(
        "fabric: {} unit(s) planned, {} completed, {} retried, {} stolen tail(s); \
         {} worker(s) spawned, {} lost",
        report.units_planned,
        report.units_completed,
        report.retries,
        report.steals,
        report.workers_spawned,
        report.workers_lost,
    );
    if report.skipped_existing > 0 {
        eprintln!(
            "fabric: resumed — {} campaign(s) already fresh in the final store",
            report.skipped_existing
        );
    }
    if report.stale_rerun > 0 {
        eprintln!(
            "fabric: re-ran {} campaign(s) whose golden-run fingerprint was stale",
            report.stale_rerun
        );
    }
    for (w, err) in &report.failed_workloads {
        eprintln!("warning: workload {w} skipped — golden run failed: {err}");
    }
    let m = &report.merge;
    eprintln!(
        "fabric: merged {} campaign(s) from {} shard row(s) \
         ({} duplicate(s), {} overlap(s), {} stale, {} conflicting dropped)",
        m.campaigns_merged,
        m.rows_merged,
        m.duplicates_dropped,
        m.overlaps_dropped,
        m.stale_dropped,
        m.conflicts_dropped,
    );
    for a in report.anomalies.entries() {
        eprintln!("anomaly: {a}");
    }
    for (unit, why) in &report.quarantined {
        eprintln!("warning: quarantined {unit}: {why}");
    }
    for gap in &m.gaps {
        eprintln!("warning: coverage gap {gap} — re-run `repro sweep` to fill it");
    }
    eprintln!("saved {} campaign(s) to {}", store.len(), out.display());
    report.is_clean()
}

/// The submission body for `repro submit`: explicit values for everything
/// the client's environment configures, so the sweep is self-contained
/// and reproduces identically regardless of the daemon's own environment.
fn submit_body(e: &Experiments, opts: &Options) -> Result<Json, String> {
    let exhaustive = opts.mode.as_deref() == Some("exhaustive");
    let mut fields = vec![
        (
            "workloads".into(),
            Json::Arr(e.workloads.iter().map(|w| Json::str(w.name())).collect()),
        ),
        ("runs".into(), Json::usize(e.runs)),
        ("seed".into(), Json::u64(e.seed)),
        ("snapshots".into(), Json::Bool(e.use_snapshots)),
    ];
    // Equivalence classes cover single-bit faults, so the daemon pins
    // cardinality to 1 in exhaustive mode; echoing the sampled-sweep
    // default (MBU_CARDINALITY, usually > 1) would be a typed 400.
    if !exhaustive {
        fields.push(("cardinality".into(), Json::usize(e.max_cardinality)));
    }
    if let Some(list) = &opts.components {
        let comps: Vec<Json> = list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<HwComponent>()
                    .map(|c| Json::str(mbu_bench::store::component_slug(c)))
                    .map_err(|err| err.to_string())
            })
            .collect::<Result<_, _>>()?;
        fields.insert(0, ("components".into(), Json::Arr(comps)));
    }
    if let Some(mode) = &opts.mode {
        fields.push(("mode".into(), Json::str(mode)));
    }
    Ok(Json::Obj(fields))
}

fn parse_reply(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "daemon reply was not UTF-8".to_string())?;
    Json::parse(text).map_err(|err| format!("daemon reply was not JSON: {err}"))
}

fn error_of(reply: &Json) -> String {
    reply
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("(no error message)")
        .to_string()
}

fn client_target(opts: &Options, verb: &str) -> Result<(String, String), String> {
    let addr = opts.to.clone().ok_or(format!("{verb} needs --to <addr>"))?;
    let id = opts
        .target
        .as_ref()
        .and_then(|p| p.to_str())
        .map(String::from)
        .ok_or(format!("{verb} needs a job id"))?;
    Ok((addr, id))
}

/// Streams the job's live events to stderr until it reaches a terminal
/// state. A dropped connection (daemon restarting, network blip) is not
/// fatal: the stream reconnects and resumes from the last event sequence
/// number actually received, so nothing is lost or replayed.
fn follow_events(addr: &str, id: &str) -> Result<(), String> {
    let mut from: u64 = 0;
    let mut failures: u64 = 0;
    loop {
        let before = from;
        let mut tail = String::new();
        let result = mbu_serve::http::request_stream(
            addr,
            "GET",
            &format!("/sweeps/{id}/events?from={from}"),
            |chunk| {
                eprint!("{}", String::from_utf8_lossy(chunk));
                // Track the last *complete* event line's seq so a
                // reconnect resumes exactly after it.
                tail.push_str(&String::from_utf8_lossy(chunk));
                while let Some(pos) = tail.find('\n') {
                    let line: String = tail.drain(..=pos).collect();
                    if let Ok(ev) = Json::parse(line.trim()) {
                        if let Some(seq) = ev.get("seq").and_then(Json::as_u64) {
                            from = from.max(seq);
                        }
                    }
                }
                true
            },
        );
        match result {
            // The daemon closes the stream once the job is terminal.
            Ok(200) => return Ok(()),
            Ok(status) => return Err(format!("event stream failed ({status})")),
            Err(err) => {
                if from > before {
                    // Progress was made before the drop; the outage streak
                    // starts over.
                    failures = 0;
                }
                failures += 1;
                if failures > 5 {
                    return Err(format!(
                        "event stream from {addr}: {err} (gave up after {failures} attempts)"
                    ));
                }
                eprintln!("repro: event stream dropped ({err}); resuming from seq {from}");
                std::thread::sleep(std::time::Duration::from_millis(200 * failures));
            }
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let mut e = Experiments::try_from_env().map_err(|err| err.to_string())?;
    e.verbose = true;
    if opts.snapshots {
        e.use_snapshots = true;
    }
    let id = opts.experiment.as_str();
    match id {
        "table1" => emit(&e.table1(), opts.csv),
        "table2" => println!("{}", e.table2()),
        "table3" => emit(&e.table3(), opts.csv),
        "table6" => emit(&e.table6(), opts.csv),
        "table7" => emit(&e.table7(), opts.csv),
        "table8" => emit(&e.table8(), opts.csv),
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" => {
            let component = fig_component(id).expect("matched above");
            let mut store = load_store(opts);
            eprintln!("measuring {}", e.describe(component));
            let report = e
                .run_sweep(&[component], &mut store, Some(&opts.out))
                .map_err(|err| err.to_string())?;
            for ((comp, w, faults), err) in &report.failed {
                eprintln!("warning: skipped {comp}/{w}/{faults}-bit: {err}");
            }
            store.save(&opts.out).map_err(|err| err.to_string())?;
            if opts.chart {
                println!("{}", e.figure_chart(component, &store));
            } else {
                emit(&e.figure_table(component, &store), opts.csv);
            }
        }
        "table4" | "table5" | "summary" => {
            if opts.use_paper {
                return Err(
                    "table4/table5/summary print measured data; run without --paper".into(),
                );
            }
            let mut store = load_store(opts);
            if !store.is_complete() {
                eprintln!(
                    "note: measured results incomplete ({} of 270); measuring now",
                    store.len()
                );
                measure_all(&e, opts, &mut store);
            }
            match id {
                "table4" => emit(&e.table4(&store), opts.csv),
                "table5" => emit(&e.table5(&store), opts.csv),
                _ => emit(&e.class_character(&store), opts.csv),
            }
        }
        "fig7" | "fig8" => {
            let mut store = load_store(opts);
            let avfs = derived_avfs(&e, opts, &mut store);
            if id == "fig7" {
                emit(&e.fig7(&avfs), opts.csv);
            } else {
                emit(&e.fig8(&avfs), opts.csv);
            }
        }
        "ablation" => {
            let mut store = load_store(opts);
            emit(&e.ablation_tag_vs_data(), opts.csv);
            emit(&e.ablation_in_order(), opts.csv);
            emit(&e.ablation_cluster_size(), opts.csv);
            let avfs = derived_avfs(&e, opts, &mut store);
            emit(&e.projected_14nm(&avfs), opts.csv);
            emit(&e.ablation_interleaving(), opts.csv);
            emit(&e.ablation_speculation(), opts.csv);
            emit(&e.beam_validation(&store), opts.csv);
        }
        "xval" => {
            // Checkpoints live next to the measured-results CSV.
            let dir = opts
                .out
                .parent()
                .unwrap_or_else(|| std::path::Path::new("results"));
            let a_path = dir.join("analytical.csv");
            let i_path = dir.join("xval_injected.csv");
            let mut astore = if a_path.exists() {
                AnalyticalStore::load(&a_path).map_err(|err| err.to_string())?
            } else {
                AnalyticalStore::new()
            };
            let mut rstore = if i_path.exists() {
                ResultStore::load(&i_path).map_err(|err| err.to_string())?
            } else {
                ResultStore::new()
            };
            eprintln!(
                "cross-validating analytical vs injected AVF: {} workloads x 6 components ({} runs each)",
                e.workloads.len(),
                e.runs
            );
            let table = e
                .xval_table(&mut astore, &mut rstore, Some(&a_path), Some(&i_path))
                .map_err(|err| err.to_string())?;
            emit(&table, opts.csv);
            eprintln!(
                "checkpoints: {} ({} captures), {} ({} campaigns)",
                a_path.display(),
                astore.len(),
                i_path.display(),
                rstore.len()
            );
        }
        "occupancy" => {
            let w = opts.workload;
            eprintln!("observing fault-free run of {w}");
            let map = e.observe(w).map_err(|err| err.to_string())?;
            emit(&e.occupancy_table(w, &map), opts.csv);
            emit(&e.pipeline_occupancy_table(&map), opts.csv);
            let dir = opts
                .out
                .parent()
                .unwrap_or_else(|| std::path::Path::new("results"));
            let series = dir.join(format!("occupancy_{}.csv", w.name()));
            std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
            std::fs::write(&series, e.occupancy_series_csv(&map)).map_err(|err| err.to_string())?;
            eprintln!("occupancy time series saved to {}", series.display());
        }
        "measure" => {
            let mut store = load_store(opts);
            measure_all(&e, opts, &mut store);
            eprintln!("saved {} campaigns to {}", store.len(), opts.out.display());
        }
        "snapbench" => {
            let w = opts.workload;
            eprintln!(
                "benchmarking snapshot fast path off/on: 6 components x {} runs on {w}",
                e.runs
            );
            let report = e.snapbench(w);
            emit(&report.table(), opts.csv);
            if !report.all_identical() {
                return Err("snapshot fast path changed a classification".into());
            }
            let path = std::path::Path::new("BENCH_snapshot.json");
            std::fs::write(path, report.to_json()).map_err(|err| err.to_string())?;
            eprintln!(
                "max speedup {:.2}x; wrote {}",
                report.max_speedup(),
                path.display()
            );
            // The sweep-level benchmark: the golden-artifact cache amortizes
            // golden + snapshot-recording runs across a components ×
            // cardinalities sweep. Basicmath has the costliest golden build
            // relative to its (mostly early-masked) injection runs, and the
            // mostly-masked components keep injection time small, so the
            // fixed cost the cache removes is clearly visible.
            let sweep_workload = Workload::Basicmath;
            let sweep_components = [HwComponent::L1I, HwComponent::L2, HwComponent::ITlb];
            eprintln!(
                "benchmarking golden-artifact cache off/on: {} components x 3 cardinalities on {sweep_workload}",
                sweep_components.len()
            );
            let sweep = e.sweepbench(sweep_workload, &sweep_components);
            emit(&sweep.table(), opts.csv);
            if !sweep.identical {
                return Err("golden-artifact cache changed a campaign result".into());
            }
            let sweep_path = std::path::Path::new("BENCH_sweep.json");
            std::fs::write(sweep_path, sweep.to_json()).map_err(|err| err.to_string())?;
            eprintln!(
                "sweep speedup {:.2}x; wrote {}",
                sweep.speedup(),
                sweep_path.display()
            );
        }
        "exhaustive" => {
            // Equivalence-class campaigns checkpoint next to the measured
            // CSV (like xval) so exhaustive rows never mix into the
            // uniform-sampling store.
            let dir = opts
                .out
                .parent()
                .unwrap_or_else(|| std::path::Path::new("results"));
            let path = dir.join("exhaustive.csv");
            let mut store = if path.exists() {
                ResultStore::load(&path).map_err(|err| err.to_string())?
            } else {
                ResultStore::new()
            };
            eprintln!(
                "exhaustive equivalence-class campaigns: {} workload(s), one run per live class",
                e.workloads.len()
            );
            if e.equiv {
                eprintln!(
                    "  MBU_EQUIV on: big arrays covered by class-weighted stratified sampling"
                );
            }
            // --components restricts the set; each name must land in a
            // mode that can actually cover it.
            let (ex, strat): (Vec<HwComponent>, Vec<HwComponent>) = match &opts.components {
                Some(list) => {
                    let mut ex = Vec::new();
                    let mut strat = Vec::new();
                    for s in list.split(',').filter(|s| !s.trim().is_empty()) {
                        let c: HwComponent = s.trim().parse().map_err(|err| format!("{err}"))?;
                        if EXHAUSTIVE_COMPONENTS.contains(&c) {
                            ex.push(c);
                        } else if e.equiv {
                            strat.push(c);
                        } else {
                            return Err(format!(
                                "{c} is a big array: exhaustive enumeration covers only \
                                 ITLB/DTLB/PRF; set MBU_EQUIV=on for stratified coverage"
                            ));
                        }
                    }
                    (ex, strat)
                }
                None => (
                    EXHAUSTIVE_COMPONENTS.to_vec(),
                    if e.equiv {
                        STRATIFIED_COMPONENTS.to_vec()
                    } else {
                        Vec::new()
                    },
                ),
            };
            if opts.workers.is_some() || opts.listen.is_some() {
                // Distributed: shard each exhaustive campaign by class
                // range over supervised workers; the merged store is
                // byte-identical to the single-process path below.
                let mut config = FabricConfig::from_env().map_err(|err| err.to_string())?;
                if let Some(w) = opts.workers {
                    config.workers = w;
                }
                config.verbose = true;
                // Class-range shards never share a directory with
                // run-range shards: same campaign key, different flavor.
                let shard_dir = opts
                    .shards
                    .clone()
                    .unwrap_or_else(|| dir.join("shards-equiv"));
                let pool = match &opts.listen {
                    Some(addr) => {
                        let listener = std::net::TcpListener::bind(addr)
                            .map_err(|err| format!("bind {addr}: {err}"))?;
                        WorkerPool::Tcp(listener)
                    }
                    None => WorkerPool::Spawn,
                };
                let (dist_store, fabric_report) = Supervisor::run_equiv(
                    &e,
                    &ex,
                    &strat,
                    &config,
                    &shard_dir,
                    &path,
                    pool,
                    SweepOptions::default(),
                )
                .map_err(|err| err.to_string())?;
                emit(&e.equiv_table(&dist_store), opts.csv);
                if !report_fabric(&fabric_report, &dist_store, &path) {
                    return Err(
                        "exhaustive sweep completed degraded (quarantined units or coverage gaps)"
                            .into(),
                    );
                }
                return Ok(());
            }
            let report = e
                .run_equiv_with(&ex, &strat, &mut store, Some(&path))
                .map_err(|err| err.to_string())?;
            for ((comp, w, faults), err) in &report.failed {
                eprintln!("warning: skipped {comp}/{w}/{faults}-bit: {err}");
            }
            // Compact the append-only checkpoint (drops resumed duplicates).
            store.save(&path).map_err(|err| err.to_string())?;
            emit(&e.equiv_table(&store), opts.csv);
            eprintln!(
                "{} campaign(s) executed ({} resumed), {} class sim(s) covering {} bit-cycles \
                 ({} proved dead without simulation); saved to {}",
                report.executed,
                report.skipped_existing,
                report.simulated,
                report.covered_weight,
                report.pruned_weight,
                path.display()
            );
            if !report.is_clean() {
                return Err(format!(
                    "{} equivalence-class campaign(s) failed",
                    report.failed.len()
                ));
            }
        }
        "equivbench" => {
            let w = opts.workload;
            eprintln!(
                "benchmarking class-weighted stratified campaigns vs {} uniform runs on {w}",
                mbu_bench::equivbench::BASELINE_RUNS
            );
            let mut report = e.equivbench(w, &STRATIFIED_COMPONENTS);
            if let Some(n) = opts.workers {
                eprintln!(
                    "benchmarking distributed class-range scaling: DTLB/{w}, \
                     1 vs {n} single-threaded worker(s)"
                );
                let fabric = e
                    .equivbench_fabric(w, HwComponent::DTlb, n)
                    .map_err(|err| format!("fabric scaling benchmark: {err}"))?;
                eprintln!(
                    "  {} live classes: 1 worker {:.1}s, {} workers {:.1}s -> {:.2}x \
                     on {} core(s); merged stores {}",
                    fabric.live_classes,
                    fabric.secs_one,
                    fabric.workers,
                    fabric.secs_many,
                    fabric.speedup(),
                    fabric.cores,
                    if fabric.bit_identical {
                        "bit-identical"
                    } else {
                        "DIVERGED"
                    }
                );
                report.fabric = Some(fabric);
            }
            emit(&report.table(), opts.csv);
            let path = std::path::Path::new("BENCH_equiv.json");
            std::fs::write(path, report.to_json()).map_err(|err| err.to_string())?;
            eprintln!(
                "headline run-count reduction {:.1}x at equal-or-better margin; wrote {}",
                report.headline_reduction(),
                path.display()
            );
            if !report.all_at_margin() {
                return Err("a stratified campaign missed the uniform-baseline margin".into());
            }
            if report.fabric.as_ref().is_some_and(|f| !f.bit_identical) {
                return Err("distributed and single-worker exhaustive stores diverged".into());
            }
        }
        "verify-store" => {
            // Read-only either way: audits without quarantining, rewriting
            // or re-running anything.
            if let Some(dir) = &opts.shards {
                eprintln!(
                    "auditing shard stores in {} (read-only; recomputing golden-run fingerprints)",
                    dir.display()
                );
                let audits =
                    mbu_bench::fabric::audit_shard_dir(&e, dir).map_err(|err| err.to_string())?;
                if audits.is_empty() {
                    eprintln!("no shard stores found in {}", dir.display());
                }
                let mut defective = 0;
                for a in &audits {
                    print!(
                        "{}: {} intact row(s) ({} fresh, {} stale), {} defective",
                        a.path.display(),
                        a.rows,
                        a.fresh,
                        a.stale,
                        a.quarantined,
                    );
                    if a.exhaustive > 0 || a.weight_defects > 0 {
                        print!(
                            ", {} class-range ({} weight defect(s))",
                            a.exhaustive, a.weight_defects
                        );
                    }
                    println!();
                    defective += a.quarantined + a.weight_defects;
                }
                if defective > 0 {
                    return Err(format!(
                        "{defective} defective shard row(s)/annotation(s) would be \
                         quarantined or rejected at merge"
                    ));
                }
            } else {
                let path = opts.target.clone().unwrap_or_else(|| opts.out.clone());
                eprintln!(
                    "auditing {} (read-only; recomputing golden-run fingerprints)",
                    path.display()
                );
                let table = e.verify_store(&path).map_err(|err| err.to_string())?;
                emit(&table, opts.csv);
            }
        }
        "sweep" | "serve" => {
            let mut config = FabricConfig::from_env().map_err(|err| err.to_string())?;
            if let Some(w) = opts.workers {
                config.workers = w;
            }
            config.verbose = true;
            let shard_dir = opts.shards.clone().unwrap_or_else(|| {
                opts.out
                    .parent()
                    .unwrap_or_else(|| std::path::Path::new("results"))
                    .join("shards")
            });
            let pool = if id == "serve" {
                let addr = opts.listen.clone().ok_or("serve needs --listen <addr>")?;
                let listener = std::net::TcpListener::bind(&addr)
                    .map_err(|err| format!("bind {addr}: {err}"))?;
                WorkerPool::Tcp(listener)
            } else {
                WorkerPool::Spawn
            };
            let (store, report) =
                Supervisor::run(&e, &HwComponent::ALL, &config, &shard_dir, &opts.out, pool)
                    .map_err(|err| err.to_string())?;
            if !report_fabric(&report, &store, &opts.out) {
                return Err("sweep completed degraded (quarantined units or coverage gaps)".into());
            }
        }
        "worker" => {
            let shard = opts.shard.clone().ok_or("worker needs --shard <path>")?;
            let heartbeat = FabricConfig::from_env()
                .map_err(|err| err.to_string())?
                .heartbeat;
            match &opts.connect {
                Some(addr) => {
                    let stream = std::net::TcpStream::connect(addr)
                        .map_err(|err| format!("connect {addr}: {err}"))?;
                    let reader = stream.try_clone().map_err(|err| err.to_string())?;
                    mbu_bench::fabric::run_worker(
                        std::io::BufReader::new(reader),
                        stream,
                        &shard,
                        heartbeat,
                        opts.worker_id.clone(),
                    )
                }
                None => mbu_bench::fabric::run_worker(
                    std::io::stdin().lock(),
                    std::io::stdout(),
                    &shard,
                    heartbeat,
                    opts.worker_id.clone(),
                ),
            }
            .map_err(|err| format!("worker: {err}"))?;
        }
        "daemon" => {
            let addr = opts.listen.clone().ok_or("daemon needs --listen <addr>")?;
            mbu_bench::run_daemon(&addr, &opts.state)?;
        }
        "submit" => {
            let addr = opts.to.clone().ok_or("submit needs --to <addr>")?;
            let body = submit_body(&e, opts)?;
            let (status, reply) =
                mbu_serve::http::request(&addr, "POST", "/sweeps", Some(body.encode().as_bytes()))
                    .map_err(|err| format!("submit to {addr}: {err}"))?;
            let reply = parse_reply(&reply)?;
            if status != 201 {
                return Err(format!("submit rejected ({status}): {}", error_of(&reply)));
            }
            let id = reply
                .get("id")
                .and_then(Json::as_str)
                .ok_or("daemon reply had no job id")?;
            eprintln!("submitted as {id}");
            // Bare id on stdout so scripts can capture it.
            println!("{id}");
        }
        "status" => {
            let (addr, id) = client_target(opts, "status")?;
            if opts.follow {
                follow_events(&addr, &id)?;
            }
            let (status, reply) =
                mbu_serve::http::request(&addr, "GET", &format!("/sweeps/{id}"), None)
                    .map_err(|err| format!("status from {addr}: {err}"))?;
            let reply = parse_reply(&reply)?;
            if status != 200 {
                return Err(format!("status failed ({status}): {}", error_of(&reply)));
            }
            println!("{}", reply.encode());
        }
        "fetch" => {
            let (addr, id) = client_target(opts, "fetch")?;
            let (status, body) =
                mbu_serve::http::request(&addr, "GET", &format!("/sweeps/{id}/store"), None)
                    .map_err(|err| format!("fetch from {addr}: {err}"))?;
            if status != 200 {
                let reply = parse_reply(&body)?;
                return Err(format!("fetch failed ({status}): {}", error_of(&reply)));
            }
            if let Some(dir) = opts.out.parent() {
                std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
            }
            std::fs::write(&opts.out, &body).map_err(|err| err.to_string())?;
            eprintln!("saved {} byte(s) to {}", body.len(), opts.out.display());
        }
        "chaos-http" => {
            use mbu_bench::chaos::{HttpFault, HttpFaultOutcome};
            let addr = opts.to.clone().ok_or("chaos-http needs --to <addr>")?;
            let faults = {
                let from_env = HttpFault::from_env();
                if from_env.is_empty() {
                    HttpFault::all().to_vec()
                } else {
                    from_env
                }
            };
            // The client must outwait the server's I/O budget to observe a
            // slow-loris 408; both sides read the same environment.
            let patience = mbu_bench::ServeConfig::from_env()
                .map_err(|err| err.to_string())?
                .io_budget
                + std::time::Duration::from_secs(5);
            let mut failed = 0usize;
            for fault in faults {
                let verdict = match fault.fire(&addr, patience) {
                    Ok(outcome) => {
                        let expected = matches!(
                            (fault, outcome),
                            (HttpFault::SlowLoris, HttpFaultOutcome::Status(408))
                                | (HttpFault::TornBody, HttpFaultOutcome::Status(400))
                                | (HttpFault::MidStreamDisconnect, HttpFaultOutcome::Closed)
                                | (HttpFault::HeaderFlood, HttpFaultOutcome::Status(431))
                        );
                        eprintln!(
                            "chaos-http: {} -> {outcome:?}{}",
                            fault.kind(),
                            if expected { "" } else { " (UNEXPECTED)" }
                        );
                        expected
                    }
                    Err(err) => {
                        eprintln!("chaos-http: {} -> error: {err}", fault.kind());
                        false
                    }
                };
                if !verdict {
                    failed += 1;
                }
                // Whatever the fault did, the acceptor must still answer.
                match mbu_serve::http::request(&addr, "GET", "/healthz", None) {
                    Ok((200, _)) => {}
                    Ok((status, _)) => {
                        eprintln!(
                            "chaos-http: healthz degraded after {} ({status})",
                            fault.kind()
                        );
                        failed += 1;
                    }
                    Err(err) => {
                        eprintln!("chaos-http: daemon wedged after {} ({err})", fault.kind());
                        failed += 1;
                    }
                }
            }
            if failed > 0 {
                return Err(format!("chaos-http: {failed} check(s) failed"));
            }
            eprintln!("chaos-http: every fault answered typed; acceptor healthy");
        }
        "cancel" => {
            let (addr, id) = client_target(opts, "cancel")?;
            let (status, reply) =
                mbu_serve::http::request(&addr, "POST", &format!("/sweeps/{id}/cancel"), None)
                    .map_err(|err| format!("cancel at {addr}: {err}"))?;
            let reply = parse_reply(&reply)?;
            if status != 202 {
                return Err(format!("cancel failed ({status}): {}", error_of(&reply)));
            }
            println!("{}", reply.encode());
        }
        "all" => {
            emit(&e.table1(), opts.csv);
            println!("{}", e.table2());
            emit(&e.table3(), opts.csv);
            let mut store = load_store(opts);
            if !store.is_complete() {
                measure_all(&e, opts, &mut store);
            }
            for fig in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"] {
                let c = fig_component(fig).expect("static list");
                emit(&e.figure_table(c, &store), opts.csv);
            }
            emit(&e.table4(&store), opts.csv);
            emit(&e.table5(&store), opts.csv);
            emit(&e.table6(), opts.csv);
            emit(&e.table7(), opts.csv);
            emit(&e.table8(), opts.csv);
            let avfs = e.component_avfs(&store);
            emit(&e.fig7(&avfs), opts.csv);
            emit(&e.fig8(&avfs), opts.csv);
            emit(&e.class_character(&store), opts.csv);
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            ExitCode::FAILURE
        }
    }
}
