//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--paper] [--csv] [--out <path>]
//!
//! experiments:
//!   table1..table8   the paper's tables
//!   fig1..fig6       per-component AVF breakdowns (runs injection campaigns)
//!   fig7 fig8        technology-node aggregates (derived)
//!   measure          run all fig1-fig6 campaigns and save results
//!   summary          per-component class character (Table IV commentary)
//!   xval             analytical (ACE liveness) vs injected AVF, all
//!                    components x workloads (checkpointed)
//!   occupancy        per-structure liveness + pipeline occupancy for one
//!                    workload (--workload), time series saved to results/
//!   verify-store <csv>  read-only integrity audit of a checkpoint file:
//!                    format version, per-row CRCs, golden-run fingerprints
//!                    vs the current binaries
//!   snapbench        campaign wall-clock with the snapshot fast path off
//!                    vs on, per component (BENCH_snapshot.json), then a
//!                    3-component sweep with the golden-artifact cache off
//!                    vs on (BENCH_sweep.json)
//!   all              everything in paper order
//!
//! flags:
//!   --paper          derive fig7/fig8 from the paper's published Table V
//!                    instead of measured data
//!   --csv            print CSV instead of ASCII tables
//!   --out <path>     results CSV path (default results/measured.csv)
//!   --workload <w>   workload for `occupancy`/`snapbench` (default
//!                    stringsearch)
//!   --snapshots      enable checkpoint/restore fast-forward injection for
//!                    every campaign (measure/fig1-6/xval/all);
//!                    classifications stay bit-identical
//!
//! environment: MBU_RUNS, MBU_SEED, MBU_THREADS, MBU_WORKLOADS,
//! MBU_ADAPTIVE_MARGIN (adaptive early stopping), MBU_DEADLINE_SECS
//! (sweep wall-clock budget), MBU_SNAPSHOTS, MBU_SNAPSHOT_INTERVAL,
//! MBU_SNAPSHOT_MEM_MB (snapshot fast path and its memory cap),
//! MBU_GOLDEN_CACHE (sweep-wide golden-artifact cache, default on).
//! ```

use mbu_bench::{AnalyticalStore, Experiments, ResultStore};
use mbu_cpu::HwComponent;
use mbu_gefin::paper;
use mbu_gefin::report::Table;
use mbu_workloads::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    experiment: String,
    /// Second positional argument (the file to audit for `verify-store`).
    target: Option<PathBuf>,
    use_paper: bool,
    csv: bool,
    chart: bool,
    out: PathBuf,
    workload: Workload,
    snapshots: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut target = None;
    let mut use_paper = false;
    let mut csv = false;
    let mut out = PathBuf::from("results/measured.csv");
    let mut chart = false;
    let mut workload = Workload::Stringsearch;
    let mut snapshots = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper" => use_paper = true,
            "--csv" => csv = true,
            "--chart" => chart = true,
            "--snapshots" => snapshots = true,
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--workload" => {
                let name = args.next().ok_or("--workload needs a name")?;
                workload = name
                    .parse()
                    .map_err(|_| format!("unknown workload `{name}`"))?;
            }
            "-h" | "--help" => return Err(String::new()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other if experiment.is_some() && target.is_none() && !other.starts_with('-') => {
                target = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        experiment: experiment.ok_or("missing experiment id")?,
        target,
        use_paper,
        csv,
        chart,
        out,
        workload,
        snapshots,
    })
}

fn usage() {
    eprintln!(
        "usage: repro <table1..table8|fig1..fig8|measure|summary|ablation|xval|occupancy|verify-store|snapbench|all> [--paper] [--csv] [--chart] [--out path] [--workload w] [--snapshots]\n\
         \x20      repro verify-store <checkpoint.csv>   read-only integrity audit\n\
         \x20      repro snapbench [--workload w]        snapshot off/on wall-clock -> BENCH_snapshot.json,\n\
         \x20                                            golden-cache off/on sweep -> BENCH_sweep.json\n\
         env:   MBU_RUNS (default 150), MBU_SEED, MBU_THREADS, MBU_WORKLOADS,\n\
         \x20      MBU_ADAPTIVE_MARGIN, MBU_DEADLINE_SECS, MBU_SNAPSHOTS,\n\
         \x20      MBU_SNAPSHOT_INTERVAL, MBU_SNAPSHOT_MEM_MB, MBU_GOLDEN_CACHE"
    );
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

fn fig_component(id: &str) -> Option<HwComponent> {
    Some(match id {
        "fig1" => HwComponent::L1D,
        "fig2" => HwComponent::L1I,
        "fig3" => HwComponent::L2,
        "fig4" => HwComponent::RegFile,
        "fig5" => HwComponent::DTlb,
        "fig6" => HwComponent::ITlb,
        _ => return None,
    })
}

/// Loads the measured store crash-safely: defective rows are quarantined
/// (with a warning) rather than discarding the whole checkpoint, and
/// pre-integrity files are upgraded in place.
fn load_store(opts: &Options) -> ResultStore {
    match ResultStore::recover(&opts.out) {
        Ok((store, audit)) => {
            if !audit.quarantined.is_empty() {
                eprintln!(
                    "warning: {} defective row(s) in {} moved to {} ({} intact rows kept)",
                    audit.quarantined.len(),
                    opts.out.display(),
                    mbu_bench::store::quarantine_path(&opts.out).display(),
                    audit.rows_loaded,
                );
            }
            if audit.version == mbu_bench::StoreVersion::Legacy {
                eprintln!(
                    "warning: {} was a pre-integrity (v1) checkpoint without checksums or \
                     fingerprints; upgraded to v2 in place",
                    opts.out.display()
                );
            }
            store
        }
        Err(e) => {
            eprintln!("warning: could not load {}: {e}", opts.out.display());
            ResultStore::new()
        }
    }
}

fn derived_avfs(
    e: &Experiments,
    opts: &Options,
    store: &mut ResultStore,
) -> std::collections::BTreeMap<HwComponent, mbu_gefin::ComponentAvf> {
    if opts.use_paper {
        eprintln!("note: deriving from the paper's published Table V (--paper)");
        return paper::table5_avfs();
    }
    if !store.is_complete() {
        eprintln!(
            "note: measured results incomplete ({} of 270 campaigns at {}); measuring now",
            store.len(),
            opts.out.display()
        );
        measure_all(e, opts, store);
    }
    e.component_avfs(store)
}

/// Runs every missing campaign, flushing each one to the checkpoint CSV as
/// it finishes — a killed `measure` loses at most the campaign in flight,
/// and a restart re-runs only what is missing.
fn measure_all(e: &Experiments, opts: &Options, store: &mut ResultStore) {
    for c in HwComponent::ALL {
        eprintln!("measuring {}", e.describe(c));
        match e.run_sweep(&[c], store, Some(&opts.out)) {
            Ok(report) => {
                if report.skipped_existing > 0 {
                    eprintln!(
                        "  resumed: {} campaigns already in {}",
                        report.skipped_existing,
                        opts.out.display()
                    );
                }
                if report.stale_rerun > 0 {
                    eprintln!(
                        "  re-ran {} campaign(s) whose golden-run fingerprint was stale",
                        report.stale_rerun
                    );
                }
                if report.legacy_unverified > 0 {
                    eprintln!(
                        "  kept {} unverifiable pre-integrity campaign(s) (no fingerprint)",
                        report.legacy_unverified
                    );
                }
                if let Some(m) = report.worst_margin() {
                    eprintln!("  worst achieved margin: ±{:.2}%", m * 100.0);
                }
                for ((comp, w, faults), err) in &report.failed {
                    eprintln!("  warning: skipped {comp}/{w}/{faults}-bit: {err}");
                }
                if report.deadline_expired {
                    eprintln!("  deadline expired: partial results checkpointed; re-run to resume");
                    break;
                }
            }
            Err(err) => {
                eprintln!(
                    "warning: could not checkpoint to {}: {err}",
                    opts.out.display()
                );
            }
        }
    }
    // Compact the append-only checkpoint (drops re-measured duplicates).
    if let Err(err) = store.save(&opts.out) {
        eprintln!("warning: could not save {}: {err}", opts.out.display());
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let mut e = Experiments::from_env();
    e.verbose = true;
    if opts.snapshots {
        e.use_snapshots = true;
    }
    let id = opts.experiment.as_str();
    match id {
        "table1" => emit(&e.table1(), opts.csv),
        "table2" => println!("{}", e.table2()),
        "table3" => emit(&e.table3(), opts.csv),
        "table6" => emit(&e.table6(), opts.csv),
        "table7" => emit(&e.table7(), opts.csv),
        "table8" => emit(&e.table8(), opts.csv),
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" => {
            let component = fig_component(id).expect("matched above");
            let mut store = load_store(opts);
            eprintln!("measuring {}", e.describe(component));
            let report = e
                .run_sweep(&[component], &mut store, Some(&opts.out))
                .map_err(|err| err.to_string())?;
            for ((comp, w, faults), err) in &report.failed {
                eprintln!("warning: skipped {comp}/{w}/{faults}-bit: {err}");
            }
            store.save(&opts.out).map_err(|err| err.to_string())?;
            if opts.chart {
                println!("{}", e.figure_chart(component, &store));
            } else {
                emit(&e.figure_table(component, &store), opts.csv);
            }
        }
        "table4" | "table5" | "summary" => {
            if opts.use_paper {
                return Err(
                    "table4/table5/summary print measured data; run without --paper".into(),
                );
            }
            let mut store = load_store(opts);
            if !store.is_complete() {
                eprintln!(
                    "note: measured results incomplete ({} of 270); measuring now",
                    store.len()
                );
                measure_all(&e, opts, &mut store);
            }
            match id {
                "table4" => emit(&e.table4(&store), opts.csv),
                "table5" => emit(&e.table5(&store), opts.csv),
                _ => emit(&e.class_character(&store), opts.csv),
            }
        }
        "fig7" | "fig8" => {
            let mut store = load_store(opts);
            let avfs = derived_avfs(&e, opts, &mut store);
            if id == "fig7" {
                emit(&e.fig7(&avfs), opts.csv);
            } else {
                emit(&e.fig8(&avfs), opts.csv);
            }
        }
        "ablation" => {
            let mut store = load_store(opts);
            emit(&e.ablation_tag_vs_data(), opts.csv);
            emit(&e.ablation_in_order(), opts.csv);
            emit(&e.ablation_cluster_size(), opts.csv);
            let avfs = derived_avfs(&e, opts, &mut store);
            emit(&e.projected_14nm(&avfs), opts.csv);
            emit(&e.ablation_interleaving(), opts.csv);
            emit(&e.ablation_speculation(), opts.csv);
            emit(&e.beam_validation(&store), opts.csv);
        }
        "xval" => {
            // Checkpoints live next to the measured-results CSV.
            let dir = opts
                .out
                .parent()
                .unwrap_or_else(|| std::path::Path::new("results"));
            let a_path = dir.join("analytical.csv");
            let i_path = dir.join("xval_injected.csv");
            let mut astore = if a_path.exists() {
                AnalyticalStore::load(&a_path).map_err(|err| err.to_string())?
            } else {
                AnalyticalStore::new()
            };
            let mut rstore = if i_path.exists() {
                ResultStore::load(&i_path).map_err(|err| err.to_string())?
            } else {
                ResultStore::new()
            };
            eprintln!(
                "cross-validating analytical vs injected AVF: {} workloads x 6 components ({} runs each)",
                e.workloads.len(),
                e.runs
            );
            let table = e
                .xval_table(&mut astore, &mut rstore, Some(&a_path), Some(&i_path))
                .map_err(|err| err.to_string())?;
            emit(&table, opts.csv);
            eprintln!(
                "checkpoints: {} ({} captures), {} ({} campaigns)",
                a_path.display(),
                astore.len(),
                i_path.display(),
                rstore.len()
            );
        }
        "occupancy" => {
            let w = opts.workload;
            eprintln!("observing fault-free run of {w}");
            let map = e.observe(w).map_err(|err| err.to_string())?;
            emit(&e.occupancy_table(w, &map), opts.csv);
            emit(&e.pipeline_occupancy_table(&map), opts.csv);
            let dir = opts
                .out
                .parent()
                .unwrap_or_else(|| std::path::Path::new("results"));
            let series = dir.join(format!("occupancy_{}.csv", w.name()));
            std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
            std::fs::write(&series, e.occupancy_series_csv(&map)).map_err(|err| err.to_string())?;
            eprintln!("occupancy time series saved to {}", series.display());
        }
        "measure" => {
            let mut store = load_store(opts);
            measure_all(&e, opts, &mut store);
            eprintln!("saved {} campaigns to {}", store.len(), opts.out.display());
        }
        "snapbench" => {
            let w = opts.workload;
            eprintln!(
                "benchmarking snapshot fast path off/on: 6 components x {} runs on {w}",
                e.runs
            );
            let report = e.snapbench(w);
            emit(&report.table(), opts.csv);
            if !report.all_identical() {
                return Err("snapshot fast path changed a classification".into());
            }
            let path = std::path::Path::new("BENCH_snapshot.json");
            std::fs::write(path, report.to_json()).map_err(|err| err.to_string())?;
            eprintln!(
                "max speedup {:.2}x; wrote {}",
                report.max_speedup(),
                path.display()
            );
            // The sweep-level benchmark: the golden-artifact cache amortizes
            // golden + snapshot-recording runs across a components ×
            // cardinalities sweep. Basicmath has the costliest golden build
            // relative to its (mostly early-masked) injection runs, and the
            // mostly-masked components keep injection time small, so the
            // fixed cost the cache removes is clearly visible.
            let sweep_workload = Workload::Basicmath;
            let sweep_components = [HwComponent::L1I, HwComponent::L2, HwComponent::ITlb];
            eprintln!(
                "benchmarking golden-artifact cache off/on: {} components x 3 cardinalities on {sweep_workload}",
                sweep_components.len()
            );
            let sweep = e.sweepbench(sweep_workload, &sweep_components);
            emit(&sweep.table(), opts.csv);
            if !sweep.identical {
                return Err("golden-artifact cache changed a campaign result".into());
            }
            let sweep_path = std::path::Path::new("BENCH_sweep.json");
            std::fs::write(sweep_path, sweep.to_json()).map_err(|err| err.to_string())?;
            eprintln!(
                "sweep speedup {:.2}x; wrote {}",
                sweep.speedup(),
                sweep_path.display()
            );
        }
        "verify-store" => {
            // Read-only: audits without quarantining, rewriting or
            // re-running anything.
            let path = opts.target.clone().unwrap_or_else(|| opts.out.clone());
            eprintln!(
                "auditing {} (read-only; recomputing golden-run fingerprints)",
                path.display()
            );
            let table = e.verify_store(&path).map_err(|err| err.to_string())?;
            emit(&table, opts.csv);
        }
        "all" => {
            emit(&e.table1(), opts.csv);
            println!("{}", e.table2());
            emit(&e.table3(), opts.csv);
            let mut store = load_store(opts);
            if !store.is_complete() {
                measure_all(&e, opts, &mut store);
            }
            for fig in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"] {
                let c = fig_component(fig).expect("static list");
                emit(&e.figure_table(c, &store), opts.csv);
            }
            emit(&e.table4(&store), opts.csv);
            emit(&e.table5(&store), opts.csv);
            emit(&e.table6(), opts.csv);
            emit(&e.table7(), opts.csv);
            emit(&e.table8(), opts.csv);
            let avfs = e.component_avfs(&store);
            emit(&e.fig7(&avfs), opts.csv);
            emit(&e.fig8(&avfs), opts.csv);
            emit(&e.class_character(&store), opts.csv);
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            ExitCode::FAILURE
        }
    }
}
