//! CSV persistence for measured campaign results, so expensive campaigns
//! (fig1–fig6) can be run once and the derived tables/figures (Tables IV–V,
//! Figures 7–8) recomputed instantly.

use mbu_cpu::HwComponent;
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::campaign::CampaignResult;
use mbu_workloads::Workload;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Key identifying one campaign.
pub type Key = (HwComponent, Workload, usize);

/// An in-memory, CSV-backed store of campaign results.
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    entries: BTreeMap<Key, CampaignResult>,
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a campaign result (replacing any previous entry for its key).
    pub fn insert(&mut self, r: CampaignResult) {
        self.entries.insert((r.component, r.workload, r.faults), r);
    }

    /// Looks up a campaign result.
    pub fn get(&self, component: HwComponent, workload: Workload, faults: usize) -> Option<&CampaignResult> {
        self.entries.get(&(component, workload, faults))
    }

    /// Number of stored campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all results.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignResult> {
        self.entries.values()
    }

    /// Whether all 6 × 15 × 3 campaigns are present.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == 6 * 15 * 3
    }

    /// Serializes to CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "component,workload,faults,masked,sdc,crash,timeout,assert,cycles,instructions\n",
        );
        for r in self.entries.values() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                component_slug(r.component),
                r.workload.name(),
                r.faults,
                r.counts.masked,
                r.counts.sdc,
                r.counts.crash,
                r.counts.timeout,
                r.counts.assert_,
                r.fault_free_cycles,
                r.fault_free_instructions,
            ));
        }
        out
    }

    /// Parses the CSV produced by [`ResultStore::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error on malformed rows.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut store = Self::new();
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 10 {
                return Err(format!("line {}: expected 10 fields, got {}", lineno + 1, f.len()));
            }
            let parse = |s: &str| -> Result<u64, String> {
                s.parse().map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            let result = CampaignResult {
                component: f[0]
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
                workload: f[1]
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
                faults: parse(f[2])? as usize,
                counts: ClassCounts {
                    masked: parse(f[3])?,
                    sdc: parse(f[4])?,
                    crash: parse(f[5])?,
                    timeout: parse(f[6])?,
                    assert_: parse(f[7])?,
                },
                fault_free_cycles: parse(f[8])?,
                fault_free_instructions: parse(f[9])?,
                details: None,
            };
            store.insert(result);
        }
        Ok(store)
    }

    /// Saves to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed-CSV errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Parseable slug for a component.
pub fn component_slug(c: HwComponent) -> &'static str {
    match c {
        HwComponent::L1D => "l1d",
        HwComponent::L1I => "l1i",
        HwComponent::L2 => "l2",
        HwComponent::RegFile => "regfile",
        HwComponent::DTlb => "dtlb",
        HwComponent::ITlb => "itlb",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(component: HwComponent, workload: Workload, faults: usize) -> CampaignResult {
        CampaignResult {
            component,
            workload,
            faults,
            counts: ClassCounts { masked: 90, sdc: 5, crash: 3, timeout: 1, assert_: 1 },
            fault_free_cycles: 12345,
            fault_free_instructions: 6789,
            details: None,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        s.insert(sample(HwComponent::ITlb, Workload::Crc32, 3));
        let csv = s.to_csv();
        let back = ResultStore::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha, 1).unwrap(),
            s.get(HwComponent::L1D, Workload::Sha, 1).unwrap()
        );
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(ResultStore::from_csv("header\nbad,row\n").is_err());
        assert!(ResultStore::from_csv("h\nl1d,sha,1,a,b,c,d,e,f,g\n").is_err());
        assert!(ResultStore::from_csv("h\nnope,sha,1,1,1,1,1,1,1,1\n").is_err());
    }

    #[test]
    fn completeness_check() {
        let mut s = ResultStore::new();
        for c in HwComponent::ALL {
            for w in Workload::ALL {
                for f in 1..=3 {
                    s.insert(sample(c, w, f));
                }
            }
        }
        assert!(s.is_complete());
        assert_eq!(s.len(), 270);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L2, Workload::Fft, 2));
        let mut newer = sample(HwComponent::L2, Workload::Fft, 2);
        newer.counts.masked = 1;
        s.insert(newer.clone());
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(HwComponent::L2, Workload::Fft, 2).unwrap().counts.masked, 1);
    }
}
