//! CSV persistence for measured campaign results, so expensive campaigns
//! (fig1–fig6) can be run once and the derived tables/figures (Tables IV–V,
//! Figures 7–8) recomputed instantly.
//!
//! # Checkpointing
//!
//! The store doubles as a sweep checkpoint: [`ResultStore::append_row`]
//! flushes one finished campaign to disk immediately, and
//! [`ResultStore::from_csv`] applies rows in order with last-row-wins
//! semantics, so a file produced by an interrupted sweep (possibly with a
//! torn final line) reloads cleanly up to the last complete row and the
//! sweep driver re-runs only the missing campaigns.

use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AnomalyLog, CampaignResult};
use mbu_gefin::classify::ClassCounts;
use mbu_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// Key identifying one campaign.
pub type Key = (HwComponent, Workload, usize);

/// Why a store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// The CSV text is malformed at a specific line.
    Syntax {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The fixed CSV header.
pub const CSV_HEADER: &str =
    "component,workload,faults,masked,sdc,crash,timeout,assert,cycles,instructions";

/// An in-memory, CSV-backed store of campaign results.
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    entries: BTreeMap<Key, CampaignResult>,
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a campaign result (replacing any previous entry for its key).
    pub fn insert(&mut self, r: CampaignResult) {
        self.entries.insert((r.component, r.workload, r.faults), r);
    }

    /// Looks up a campaign result.
    pub fn get(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> Option<&CampaignResult> {
        self.entries.get(&(component, workload, faults))
    }

    /// Whether a campaign for this key is already present.
    pub fn contains(&self, component: HwComponent, workload: Workload, faults: usize) -> bool {
        self.entries.contains_key(&(component, workload, faults))
    }

    /// Number of stored campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all results.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignResult> {
        self.entries.values()
    }

    /// Whether all 6 × 15 × 3 campaigns are present.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == 6 * 15 * 3
    }

    /// Renders one result as a CSV row (no trailing newline).
    fn csv_row(r: &CampaignResult) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            component_slug(r.component),
            r.workload.name(),
            r.faults,
            r.counts.masked,
            r.counts.sdc,
            r.counts.crash,
            r.counts.timeout,
            r.counts.assert_,
            r.fault_free_cycles,
            r.fault_free_instructions,
        )
    }

    /// Serializes to CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in self.entries.values() {
            out.push_str(&Self::csv_row(r));
            out.push('\n');
        }
        out
    }

    /// Parses the CSV produced by [`ResultStore::to_csv`] /
    /// [`ResultStore::append_row`]. Duplicate keys are legal (an appended
    /// checkpoint may re-measure a campaign); the last row wins.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Syntax`] with the line number on malformed
    /// rows; never panics, whatever the input.
    pub fn from_csv(csv: &str) -> Result<Self, StoreError> {
        let mut store = Self::new();
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let syntax = |message: String| StoreError::Syntax {
                line: lineno + 1,
                message,
            };
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 10 {
                return Err(syntax(format!("expected 10 fields, got {}", f.len())));
            }
            let parse = |s: &str| -> Result<u64, StoreError> {
                s.parse().map_err(|e| syntax(format!("{e} (field {s:?})")))
            };
            let result = CampaignResult {
                component: f[0].parse().map_err(|e| syntax(format!("{e}")))?,
                workload: f[1].parse().map_err(|e| syntax(format!("{e}")))?,
                faults: parse(f[2])? as usize,
                counts: ClassCounts {
                    masked: parse(f[3])?,
                    sdc: parse(f[4])?,
                    crash: parse(f[5])?,
                    timeout: parse(f[6])?,
                    assert_: parse(f[7])?,
                },
                fault_free_cycles: parse(f[8])?,
                fault_free_instructions: parse(f[9])?,
                details: None,
                anomalies: AnomalyLog::new(),
                oracle_skips: 0,
            };
            store.insert(result);
        }
        Ok(store)
    }

    /// Saves the whole store to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())?;
        Ok(())
    }

    /// Appends one finished campaign to the checkpoint file (creating it,
    /// with header, if absent). This is the incremental-flush primitive the
    /// sweep driver calls after *every* campaign, so a killed sweep loses at
    /// most the campaign in flight.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_row(path: &Path, r: &CampaignResult) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{CSV_HEADER}")?;
        }
        writeln!(file, "{}", Self::csv_row(r))?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed-CSV errors.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text)
    }
}

/// One analytically-derived AVF measurement (ACE-style fault-free capture).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalRow {
    /// Component whose data array was observed.
    pub component: HwComponent,
    /// Workload driving the observation run.
    pub workload: Workload,
    /// `live-bit-cycles / (bits × cycles)` of the fault-free run.
    pub analytical_avf: f64,
    /// Cycles of the observation run.
    pub total_cycles: u64,
}

/// The fixed CSV header of the analytical-AVF checkpoint.
pub const ANALYTICAL_CSV_HEADER: &str = "component,workload,analytical_avf,total_cycles";

/// CSV-backed store of analytical AVF captures, with the same
/// incremental-checkpoint semantics as [`ResultStore`]: one row per
/// finished (component, workload) capture, last row wins on reload.
#[derive(Debug, Clone, Default)]
pub struct AnalyticalStore {
    entries: BTreeMap<(HwComponent, Workload), AnalyticalRow>,
}

impl AnalyticalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a row (replacing any previous entry for its key).
    pub fn insert(&mut self, row: AnalyticalRow) {
        self.entries.insert((row.component, row.workload), row);
    }

    /// Looks up a capture.
    pub fn get(&self, component: HwComponent, workload: Workload) -> Option<&AnalyticalRow> {
        self.entries.get(&(component, workload))
    }

    /// Whether a capture for this key is already present.
    pub fn contains(&self, component: HwComponent, workload: Workload) -> bool {
        self.entries.contains_key(&(component, workload))
    }

    /// Number of stored captures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &AnalyticalRow> {
        self.entries.values()
    }

    fn csv_row(r: &AnalyticalRow) -> String {
        format!(
            "{},{},{},{}",
            component_slug(r.component),
            r.workload.name(),
            r.analytical_avf,
            r.total_cycles,
        )
    }

    /// Serializes to CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(ANALYTICAL_CSV_HEADER);
        out.push('\n');
        for r in self.entries.values() {
            out.push_str(&Self::csv_row(r));
            out.push('\n');
        }
        out
    }

    /// Parses the CSV produced by [`AnalyticalStore::to_csv`] /
    /// [`AnalyticalStore::append_row`] (duplicates legal, last row wins).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Syntax`] with the line number on malformed rows.
    pub fn from_csv(csv: &str) -> Result<Self, StoreError> {
        let mut store = Self::new();
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let syntax = |message: String| StoreError::Syntax {
                line: lineno + 1,
                message,
            };
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 4 {
                return Err(syntax(format!("expected 4 fields, got {}", f.len())));
            }
            let avf: f64 = f[2]
                .parse()
                .map_err(|e| syntax(format!("{e} (field {:?})", f[2])))?;
            if !(0.0..=1.0).contains(&avf) {
                return Err(syntax(format!("AVF {avf} outside [0, 1]")));
            }
            store.insert(AnalyticalRow {
                component: f[0].parse().map_err(|e| syntax(format!("{e}")))?,
                workload: f[1].parse().map_err(|e| syntax(format!("{e}")))?,
                analytical_avf: avf,
                total_cycles: f[3]
                    .parse()
                    .map_err(|e| syntax(format!("{e} (field {:?})", f[3])))?,
            });
        }
        Ok(store)
    }

    /// Appends one finished capture to the checkpoint file (creating it,
    /// with header, if absent).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_row(path: &Path, r: &AnalyticalRow) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{ANALYTICAL_CSV_HEADER}")?;
        }
        writeln!(file, "{}", Self::csv_row(r))?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed-CSV errors.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text)
    }
}

/// Parseable slug for a component.
pub fn component_slug(c: HwComponent) -> &'static str {
    match c {
        HwComponent::L1D => "l1d",
        HwComponent::L1I => "l1i",
        HwComponent::L2 => "l2",
        HwComponent::RegFile => "regfile",
        HwComponent::DTlb => "dtlb",
        HwComponent::ITlb => "itlb",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(component: HwComponent, workload: Workload, faults: usize) -> CampaignResult {
        CampaignResult {
            component,
            workload,
            faults,
            counts: ClassCounts {
                masked: 90,
                sdc: 5,
                crash: 3,
                timeout: 1,
                assert_: 1,
            },
            fault_free_cycles: 12345,
            fault_free_instructions: 6789,
            details: None,
            anomalies: AnomalyLog::new(),
            oracle_skips: 0,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        s.insert(sample(HwComponent::ITlb, Workload::Crc32, 3));
        let csv = s.to_csv();
        let back = ResultStore::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha, 1).unwrap(),
            s.get(HwComponent::L1D, Workload::Sha, 1).unwrap()
        );
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(ResultStore::from_csv("header\nbad,row\n").is_err());
        assert!(ResultStore::from_csv("h\nl1d,sha,1,a,b,c,d,e,f,g\n").is_err());
        assert!(ResultStore::from_csv("h\nnope,sha,1,1,1,1,1,1,1,1\n").is_err());
    }

    #[test]
    fn garbage_and_truncation_return_typed_errors_not_panics() {
        // Binary garbage.
        let garbage = "\u{0}\u{1}\u{2}\nl1d,\u{fffd},x,y\n";
        match ResultStore::from_csv(garbage) {
            Err(StoreError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        // A checkpoint whose last row was torn mid-write.
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        let full = s.to_csv();
        // Tear the row inside its final field, comma included, so the line
        // is left with too few fields.
        let torn = &full[..full.rfind(',').unwrap()];
        let err = ResultStore::from_csv(torn).unwrap_err();
        assert!(
            matches!(err, StoreError::Syntax { .. }),
            "torn row is a syntax error: {err}"
        );
        // Negative and overflowing numeric fields.
        assert!(ResultStore::from_csv("h\nl1d,sha,1,-5,1,1,1,1,1,1\n").is_err());
        assert!(
            ResultStore::from_csv("h\nl1d,sha,1,999999999999999999999999,1,1,1,1,1,1\n").is_err()
        );
    }

    #[test]
    fn completeness_check() {
        let mut s = ResultStore::new();
        for c in HwComponent::ALL {
            for w in Workload::ALL {
                for f in 1..=3 {
                    s.insert(sample(c, w, f));
                }
            }
        }
        assert!(s.is_complete());
        assert_eq!(s.len(), 270);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L2, Workload::Fft, 2));
        let mut newer = sample(HwComponent::L2, Workload::Fft, 2);
        newer.counts.masked = 1;
        s.insert(newer.clone());
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(HwComponent::L2, Workload::Fft, 2)
                .unwrap()
                .counts
                .masked,
            1
        );
    }

    #[test]
    fn append_row_checkpoints_incrementally() {
        let dir = std::env::temp_dir().join(format!("mbu-store-test-{}", std::process::id()));
        let path = dir.join("checkpoint.csv");
        let _ = std::fs::remove_file(&path);
        let a = sample(HwComponent::L1D, Workload::Sha, 1);
        let b = sample(HwComponent::RegFile, Workload::Fft, 2);
        ResultStore::append_row(&path, &a).unwrap();
        ResultStore::append_row(&path, &b).unwrap();
        // Re-measurement of the same key appends; last row wins on load.
        let mut newer = a.clone();
        newer.counts.masked = 42;
        ResultStore::append_row(&path, &newer).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded
                .get(HwComponent::L1D, Workload::Sha, 1)
                .unwrap()
                .counts
                .masked,
            42
        );
        assert!(loaded.contains(HwComponent::RegFile, Workload::Fft, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analytical_store_roundtrips_and_checkpoints() {
        let mut s = AnalyticalStore::new();
        s.insert(AnalyticalRow {
            component: HwComponent::L1D,
            workload: Workload::Sha,
            analytical_avf: 0.03125,
            total_cycles: 54321,
        });
        s.insert(AnalyticalRow {
            component: HwComponent::RegFile,
            workload: Workload::Qsort,
            analytical_avf: 0.25,
            total_cycles: 999,
        });
        let back = AnalyticalStore::from_csv(&s.to_csv()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha),
            s.get(HwComponent::L1D, Workload::Sha)
        );
        // Malformed rows are typed errors.
        assert!(AnalyticalStore::from_csv("h\nl1d,sha,notafloat,1\n").is_err());
        assert!(
            AnalyticalStore::from_csv("h\nl1d,sha,1.5,1\n").is_err(),
            "AVF > 1 rejected"
        );
        assert!(
            AnalyticalStore::from_csv("h\nl1d,sha,0.5\n").is_err(),
            "missing field"
        );
        // Incremental checkpoint with last-row-wins reload.
        let dir = std::env::temp_dir().join(format!("mbu-astore-test-{}", std::process::id()));
        let path = dir.join("analytical.csv");
        let _ = std::fs::remove_file(&path);
        let row = AnalyticalRow {
            component: HwComponent::L2,
            workload: Workload::Fft,
            analytical_avf: 0.001,
            total_cycles: 10,
        };
        AnalyticalStore::append_row(&path, &row).unwrap();
        let mut newer = row.clone();
        newer.analytical_avf = 0.002;
        AnalyticalStore::append_row(&path, &newer).unwrap();
        let loaded = AnalyticalStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded
                .get(HwComponent::L2, Workload::Fft)
                .unwrap()
                .analytical_avf,
            0.002
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ResultStore::load(Path::new("/nonexistent/dir/store.csv")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
