//! CSV persistence for measured campaign results, so expensive campaigns
//! (fig1–fig6) can be run once and the derived tables/figures (Tables IV–V,
//! Figures 7–8) recomputed instantly.
//!
//! # Checkpointing
//!
//! The store doubles as a sweep checkpoint: [`ResultStore::append_row`]
//! flushes one finished campaign to disk immediately, and
//! [`ResultStore::from_csv`] applies rows in order with last-row-wins
//! semantics, so a file produced by an interrupted sweep (possibly with a
//! torn final line) reloads cleanly up to the last complete row and the
//! sweep driver re-runs only the missing campaigns.
//!
//! # Integrity (v2 format)
//!
//! A fault injector that studies silent data corruption must not itself
//! corrupt data silently. Version-2 checkpoint files carry:
//!
//! * a version line (`#mbu-results v2`) so future format changes are
//!   detected instead of misparsed;
//! * a per-row IEEE CRC-32 over the row body, so torn writes and flipped
//!   bits are caught on load;
//! * the golden-run fingerprint of each row's campaign
//!   ([`mbu_gefin::GoldenFingerprint`]), so results persisted by an older
//!   simulator build or different core configuration are detected as stale
//!   on resume and re-run instead of merged;
//! * the achieved error margin of each campaign, so derived tables can
//!   report statistical confidence per cell.
//!
//! [`ResultStore::recover`] is the crash-safe loading path: defective rows
//! are moved to a `<file>.quarantine` sidecar with a typed reason and the
//! survivors win; [`ResultStore::load`] is the strict path that refuses any
//! defect. Files written before the integrity layer (no version line, 10
//! fields, no CRC) still load through both paths via a migration shim —
//! their rows simply carry no fingerprint or margin.

use crate::io::{RealIo, StoreIo};
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AnomalyLog, CampaignResult, UnitSpec};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::integrity::{crc32, GoldenFingerprint};
use mbu_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Key identifying one campaign.
pub type Key = (HwComponent, Workload, usize);

/// Why a store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// The CSV text is malformed at a specific line.
    Syntax {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A row's stored CRC-32 does not match its contents: the row was torn
    /// mid-write or corrupted at rest.
    CrcMismatch {
        /// 1-based line number of the corrupt row.
        line: usize,
        /// The checksum the row claims.
        stored: u32,
        /// The checksum its body actually has.
        computed: u32,
    },
    /// The file declares a format version this build does not understand.
    UnsupportedVersion {
        /// The version line as found.
        found: String,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            StoreError::CrcMismatch {
                line,
                stored,
                computed,
            } => write!(
                f,
                "line {line}: CRC mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported store version {found:?} (this build reads v2)"
                )
            }
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The version line leading every v2 store file.
pub const STORE_VERSION_LINE: &str = "#mbu-results v2";

/// The fixed CSV header (v2: margin, fingerprint and CRC columns).
pub const CSV_HEADER: &str =
    "component,workload,faults,masked,sdc,crash,timeout,assert,cycles,instructions,margin,fingerprint,crc32";

/// The pre-integrity (v1) header, recognised by the migration shim.
pub const LEGACY_CSV_HEADER: &str =
    "component,workload,faults,masked,sdc,crash,timeout,assert,cycles,instructions";

/// Which on-disk format a file was parsed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVersion {
    /// Current: version line, CRC-checksummed rows, fingerprint + margin.
    V2,
    /// Pre-integrity files: bare 10-field rows, no checksums.
    Legacy,
}

/// Why a row was quarantined instead of loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowDefect {
    /// The row does not parse as a result row.
    Syntax {
        /// What was wrong with it.
        message: String,
    },
    /// The row parses but its checksum disagrees with its contents.
    CrcMismatch {
        /// The checksum the row claims.
        stored: u32,
        /// The checksum its body actually has.
        computed: u32,
    },
}

impl fmt::Display for RowDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowDefect::Syntax { message } => write!(f, "syntax: {message}"),
            RowDefect::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch (stored {stored:08x}, computed {computed:08x})"
                )
            }
        }
    }
}

/// One row set aside by lossy loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number in the source file.
    pub line: usize,
    /// The raw line text, verbatim.
    pub raw: String,
    /// Why it was rejected.
    pub defect: RowDefect,
}

/// What lossy loading found in a file.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAudit {
    /// The format the file was parsed as.
    pub version: StoreVersion,
    /// Rows that loaded cleanly (before last-row-wins dedup).
    pub rows_loaded: usize,
    /// Rows set aside as defective.
    pub quarantined: Vec<QuarantinedRow>,
}

impl LoadAudit {
    fn empty() -> Self {
        Self {
            version: StoreVersion::V2,
            rows_loaded: 0,
            quarantined: Vec::new(),
        }
    }
}

/// The `.quarantine` sidecar for a checkpoint file.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".quarantine");
    PathBuf::from(s)
}

/// The exhaustive-campaign annotation of a result row: how the row's
/// counts were produced from the fault-equivalence partition. Rows
/// carrying one have counts summing to the *whole* `bits × cycles`
/// population (weighted per class, or population-scaled for stratified
/// sampling — the two are told apart by the row's margin: exactly 0 means
/// provable full coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveMeta {
    /// Distinct live classes actually simulated.
    pub classes: u64,
    /// The fault-space population the counts cover (`bits × cycles`).
    pub weight: u64,
}

/// An in-memory, CSV-backed store of campaign results.
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    entries: BTreeMap<Key, CampaignResult>,
    fingerprints: BTreeMap<Key, GoldenFingerprint>,
    exhaustive_meta: BTreeMap<Key, ExhaustiveMeta>,
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a campaign result (replacing any previous entry for its
    /// key). Any stored fingerprint for the key is dropped — pair fresh
    /// results with their fingerprint via
    /// [`ResultStore::insert_with_fingerprint`].
    pub fn insert(&mut self, r: CampaignResult) {
        let key = (r.component, r.workload, r.faults);
        self.fingerprints.remove(&key);
        self.exhaustive_meta.remove(&key);
        self.entries.insert(key, r);
    }

    /// Inserts a campaign result stamped with the golden-run fingerprint it
    /// was measured under (`None` keeps the row unstamped, e.g. for legacy
    /// data).
    pub fn insert_with_fingerprint(
        &mut self,
        r: CampaignResult,
        fingerprint: Option<GoldenFingerprint>,
    ) {
        let key = (r.component, r.workload, r.faults);
        match fingerprint {
            Some(fp) => {
                self.fingerprints.insert(key, fp);
            }
            None => {
                self.fingerprints.remove(&key);
            }
        }
        self.exhaustive_meta.remove(&key);
        self.entries.insert(key, r);
    }

    /// Inserts an equivalence-class campaign result with its
    /// [`ExhaustiveMeta`] annotation and fingerprint.
    pub fn insert_exhaustive(
        &mut self,
        r: CampaignResult,
        meta: ExhaustiveMeta,
        fingerprint: Option<GoldenFingerprint>,
    ) {
        let key = (r.component, r.workload, r.faults);
        self.insert_with_fingerprint(r, fingerprint);
        self.exhaustive_meta.insert(key, meta);
    }

    /// The exhaustive annotation of a stored result, if it carries one.
    pub fn exhaustive_meta(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> Option<ExhaustiveMeta> {
        self.exhaustive_meta
            .get(&(component, workload, faults))
            .copied()
    }

    /// Looks up a campaign result.
    pub fn get(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> Option<&CampaignResult> {
        self.entries.get(&(component, workload, faults))
    }

    /// The golden-run fingerprint a stored result was measured under, if it
    /// carries one (legacy rows do not).
    pub fn fingerprint(
        &self,
        component: HwComponent,
        workload: Workload,
        faults: usize,
    ) -> Option<GoldenFingerprint> {
        self.fingerprints
            .get(&(component, workload, faults))
            .copied()
    }

    /// Whether a campaign for this key is already present.
    pub fn contains(&self, component: HwComponent, workload: Workload, faults: usize) -> bool {
        self.entries.contains_key(&(component, workload, faults))
    }

    /// Number of stored campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all results.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignResult> {
        self.entries.values()
    }

    /// Whether all 6 × 15 × 3 campaigns are present.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == 6 * 15 * 3
    }

    /// Renders one result as a v2 CSV row (no trailing newline): 12 body
    /// fields (14 with an exhaustive annotation) plus the CRC-32 of the
    /// body text.
    ///
    /// The margin is serialized with Rust's shortest-roundtrip float
    /// formatting, so a saved and reloaded store is *bit-identical* — the
    /// chaos harness depends on this.
    fn csv_row(
        r: &CampaignResult,
        fingerprint: Option<GoldenFingerprint>,
        meta: Option<ExhaustiveMeta>,
    ) -> String {
        let margin = match r.achieved_margin {
            Some(m) => m.to_string(),
            None => "-".to_string(),
        };
        let fp = match fingerprint {
            Some(fp) => fp.to_string(),
            None => "-".to_string(),
        };
        let mut body = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            component_slug(r.component),
            r.workload.name(),
            r.faults,
            r.counts.masked,
            r.counts.sdc,
            r.counts.crash,
            r.counts.timeout,
            r.counts.assert_,
            r.fault_free_cycles,
            r.fault_free_instructions,
            margin,
            fp,
        );
        if let Some(meta) = meta {
            body.push_str(&format!(",{},{}", meta.classes, meta.weight));
        }
        let crc = crc32(body.as_bytes());
        format!("{body},{crc:08x}")
    }

    /// Serializes to v2 CSV (version line, header, checksummed rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(STORE_VERSION_LINE);
        out.push('\n');
        out.push_str(CSV_HEADER);
        out.push('\n');
        for (key, r) in &self.entries {
            out.push_str(&Self::csv_row(
                r,
                self.fingerprints.get(key).copied(),
                self.exhaustive_meta.get(key).copied(),
            ));
            out.push('\n');
        }
        out
    }

    /// Parses one row body (v2: 12 fields, 14 with the exhaustive
    /// annotation; legacy: 10 fields) into a result, optional fingerprint
    /// and optional exhaustive meta. `Err` is a human-readable defect
    /// message.
    fn parse_body(
        fields: &[&str],
        legacy: bool,
    ) -> Result<
        (
            CampaignResult,
            Option<GoldenFingerprint>,
            Option<ExhaustiveMeta>,
        ),
        String,
    > {
        if legacy && fields.len() != 10 {
            return Err(format!("expected 10 fields, got {}", fields.len()));
        }
        if !legacy && fields.len() != 12 && fields.len() != 14 {
            return Err(format!(
                "expected 12 (sampled) or 14 (exhaustive) fields, got {}",
                fields.len()
            ));
        }
        let parse = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|e| format!("{e} (field {s:?})"))
        };
        let (achieved_margin, fingerprint) = if legacy {
            (None, None)
        } else {
            let margin = match fields[10] {
                "-" => None,
                s => {
                    let m: f64 = s.parse().map_err(|e| format!("{e} (margin {s:?})"))?;
                    if !(m.is_finite() && (0.0..=1.0).contains(&m)) {
                        return Err(format!("margin {m} outside [0, 1]"));
                    }
                    Some(m)
                }
            };
            let fp = match fields[11] {
                "-" => None,
                s => {
                    if s.len() != 16 {
                        return Err(format!("fingerprint {s:?} is not 16 hex digits"));
                    }
                    Some(
                        s.parse::<GoldenFingerprint>()
                            .map_err(|e| format!("{e} (fingerprint {s:?})"))?,
                    )
                }
            };
            (margin, fp)
        };
        let result = CampaignResult {
            component: fields[0].parse().map_err(|e| format!("{e}"))?,
            workload: fields[1].parse().map_err(|e| format!("{e}"))?,
            faults: parse(fields[2])? as usize,
            counts: ClassCounts {
                masked: parse(fields[3])?,
                sdc: parse(fields[4])?,
                crash: parse(fields[5])?,
                timeout: parse(fields[6])?,
                assert_: parse(fields[7])?,
            },
            fault_free_cycles: parse(fields[8])?,
            fault_free_instructions: parse(fields[9])?,
            details: None,
            anomalies: AnomalyLog::new(),
            oracle_skips: 0,
            achieved_margin,
            snapshot_stats: None,
        };
        let meta = if fields.len() == 14 {
            let meta = ExhaustiveMeta {
                classes: parse(fields[12])?,
                weight: parse(fields[13])?,
            };
            // The defining invariant of the flavor: the counts cover the
            // whole fault-space population (weighted or population-scaled),
            // from no more simulations than the population holds.
            if result.counts.total() != meta.weight {
                return Err(format!(
                    "exhaustive counts sum to {} but claim a population of {}",
                    result.counts.total(),
                    meta.weight
                ));
            }
            if meta.classes > meta.weight {
                return Err(format!(
                    "{} simulated classes exceed the population {}",
                    meta.classes, meta.weight
                ));
            }
            Some(meta)
        } else {
            None
        };
        Ok((result, fingerprint, meta))
    }

    /// Checks a v2 row's CRC and parses it.
    #[allow(clippy::type_complexity)]
    fn parse_v2_row(
        line: &str,
    ) -> Result<
        (
            CampaignResult,
            Option<GoldenFingerprint>,
            Option<ExhaustiveMeta>,
        ),
        RowDefect,
    > {
        let syntax = |message: String| RowDefect::Syntax { message };
        let (body, crc_hex) = line
            .rsplit_once(',')
            .ok_or_else(|| syntax("row has no CRC field".into()))?;
        if crc_hex.len() != 8 {
            return Err(syntax(format!("CRC {crc_hex:?} is not 8 hex digits")));
        }
        let stored = u32::from_str_radix(crc_hex, 16)
            .map_err(|e| syntax(format!("{e} (CRC {crc_hex:?})")))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(RowDefect::CrcMismatch { stored, computed });
        }
        let fields: Vec<&str> = body.split(',').collect();
        Self::parse_body(&fields, false).map_err(syntax)
    }

    /// Detects the file's format version. `Err` carries the offending
    /// version line.
    fn detect_version(csv: &str) -> Result<StoreVersion, String> {
        match csv.lines().next() {
            None => Ok(StoreVersion::V2),
            Some(first) if first.trim_start().starts_with('#') => {
                if first.trim() == STORE_VERSION_LINE {
                    Ok(StoreVersion::V2)
                } else {
                    Err(first.to_string())
                }
            }
            Some(_) => Ok(StoreVersion::Legacy),
        }
    }

    /// Parses store CSV, collecting defective rows instead of failing: each
    /// bad row becomes a [`QuarantinedRow`] and the survivors load with
    /// last-row-wins semantics. This is the resume path — a checkpoint with
    /// a torn final line or a flipped bit yields every intact campaign.
    ///
    /// # Errors
    ///
    /// Only [`StoreError::UnsupportedVersion`] — an unknown format version
    /// means *no* line can be trusted, so nothing is guessed.
    pub fn from_csv_lossy(csv: &str) -> Result<(Self, LoadAudit), StoreError> {
        let version =
            Self::detect_version(csv).map_err(|found| StoreError::UnsupportedVersion { found })?;
        let mut store = Self::new();
        let mut audit = LoadAudit {
            version,
            rows_loaded: 0,
            quarantined: Vec::new(),
        };
        // Line 1 is the version line (v2) or the header (legacy); line 2 of
        // a v2 file is the header. Both are skipped, not parsed as rows.
        let skip = match version {
            StoreVersion::V2 => 2,
            StoreVersion::Legacy => 1,
        };
        for (lineno, line) in csv.lines().enumerate().skip(skip) {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = match version {
                StoreVersion::V2 => Self::parse_v2_row(line),
                StoreVersion::Legacy => {
                    let fields: Vec<&str> = line.split(',').collect();
                    Self::parse_body(&fields, true).map_err(|message| RowDefect::Syntax { message })
                }
            };
            match parsed {
                Ok((result, fingerprint, meta)) => {
                    match meta {
                        Some(meta) => store.insert_exhaustive(result, meta, fingerprint),
                        None => store.insert_with_fingerprint(result, fingerprint),
                    }
                    audit.rows_loaded += 1;
                }
                Err(defect) => audit.quarantined.push(QuarantinedRow {
                    line: lineno + 1,
                    raw: line.to_string(),
                    defect,
                }),
            }
        }
        Ok((store, audit))
    }

    /// Parses the CSV produced by [`ResultStore::to_csv`] /
    /// [`ResultStore::append_row`], strictly: any defective row is an
    /// error. Duplicate keys are legal (an appended checkpoint may
    /// re-measure a campaign); the last row wins. Pre-integrity (v1) files
    /// are accepted via the migration shim.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Syntax`] / [`StoreError::CrcMismatch`] with
    /// the line number on malformed rows and
    /// [`StoreError::UnsupportedVersion`] on unknown formats; never panics,
    /// whatever the input.
    pub fn from_csv(csv: &str) -> Result<Self, StoreError> {
        let (store, audit) = Self::from_csv_lossy(csv)?;
        if let Some(q) = audit.quarantined.first() {
            return Err(match &q.defect {
                RowDefect::Syntax { message } => StoreError::Syntax {
                    line: q.line,
                    message: message.clone(),
                },
                RowDefect::CrcMismatch { stored, computed } => StoreError::CrcMismatch {
                    line: q.line,
                    stored: *stored,
                    computed: *computed,
                },
            });
        }
        Ok(store)
    }

    /// Saves the whole store to a file atomically (temp file + rename),
    /// creating parent directories: a crash mid-save leaves the previous
    /// file intact, never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        self.save_with(&RealIo, path)
    }

    /// [`ResultStore::save`] through an injectable I/O layer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_with(&self, io: &dyn StoreIo, path: &Path) -> Result<(), StoreError> {
        io.write_atomic(path, &self.to_csv())?;
        Ok(())
    }

    /// Appends one finished campaign to the checkpoint file (creating it,
    /// with version line and header, if absent). This is the
    /// incremental-flush primitive the sweep driver calls after *every*
    /// campaign, so a killed sweep loses at most the campaign in flight.
    /// The data is synced to stable storage before returning.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_row(path: &Path, r: &CampaignResult) -> Result<(), StoreError> {
        Self::append_row_with(&RealIo, path, r, None)
    }

    /// [`ResultStore::append_row`] through an injectable I/O layer, with
    /// the golden-run fingerprint the campaign was measured under. A
    /// pre-integrity (v1) checkpoint is upgraded to v2 in place (atomic
    /// rewrite) before the row is appended, so a file never mixes formats.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt legacy file surfaces its parse
    /// error rather than being silently rewritten.
    pub fn append_row_with(
        io: &dyn StoreIo,
        path: &Path,
        r: &CampaignResult,
        fingerprint: Option<GoldenFingerprint>,
    ) -> Result<(), StoreError> {
        Self::append_flavored_row_with(io, path, r, fingerprint, None)
    }

    /// [`ResultStore::append_row_with`] for either flavor: with
    /// `Some(meta)` the row is written with the two exhaustive columns.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt legacy file surfaces its parse
    /// error rather than being silently rewritten.
    pub fn append_flavored_row_with(
        io: &dyn StoreIo,
        path: &Path,
        r: &CampaignResult,
        fingerprint: Option<GoldenFingerprint>,
        meta: Option<ExhaustiveMeta>,
    ) -> Result<(), StoreError> {
        let row = Self::csv_row(r, fingerprint, meta);
        if io.len(path)? == 0 {
            // One append call for version + header + row: a single
            // crash-consistency unit, so no observable state has the header
            // without being a valid (empty-row-set) v2 file.
            io.append(
                path,
                &format!("{STORE_VERSION_LINE}\n{CSV_HEADER}\n{row}\n"),
            )?;
            return Ok(());
        }
        let text = io.read_to_string(path)?;
        if Self::detect_version(&text).map_err(|found| StoreError::UnsupportedVersion { found })?
            == StoreVersion::Legacy
        {
            let store = Self::from_csv(&text)?;
            io.write_atomic(path, &store.to_csv())?;
        }
        io.append(path, &format!("{row}\n"))?;
        Ok(())
    }

    /// Loads from a file, strictly: any defective row is an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed-CSV errors.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text)
    }

    /// Crash-safe load: defective rows are moved to a `<file>.quarantine`
    /// sidecar (one line each: line number, typed reason, raw text) and the
    /// survivors returned. When anything was quarantined — or the file was
    /// in the legacy format — the main file is atomically rewritten as
    /// clean v2, so the defect is dealt with exactly once. A missing file
    /// yields an empty store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`StoreError::UnsupportedVersion`].
    pub fn recover(path: &Path) -> Result<(Self, LoadAudit), StoreError> {
        Self::recover_with(&RealIo, path)
    }

    /// [`ResultStore::recover`] through an injectable I/O layer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`StoreError::UnsupportedVersion`].
    pub fn recover_with(io: &dyn StoreIo, path: &Path) -> Result<(Self, LoadAudit), StoreError> {
        let text = match io.read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Self::new(), LoadAudit::empty()))
            }
            Err(e) => return Err(e.into()),
        };
        let (store, audit) = Self::from_csv_lossy(&text)?;
        if !audit.quarantined.is_empty() {
            let mut sidecar = String::new();
            for q in &audit.quarantined {
                sidecar.push_str(&format!("line {}: {}: {}\n", q.line, q.defect, q.raw));
            }
            io.append(&quarantine_path(path), &sidecar)?;
        }
        if !audit.quarantined.is_empty() || audit.version == StoreVersion::Legacy {
            store.save_with(io, path)?;
        }
        Ok((store, audit))
    }
}

/// The version line of a worker shard store.
pub const SHARD_VERSION_LINE: &str = "#mbu-shard v1";

/// The fixed CSV header of a worker shard store. Exhaustive-flavor rows
/// append seven more columns (`w_masked..w_assert,weight,pruned`) between
/// `fingerprint` and `crc`, and whole-campaign stratified rows two more
/// (`margin_bits,simulated`); the parser dispatches on field count.
pub const SHARD_CSV_HEADER: &str = "component,workload,faults,start,end,seed,masked,sdc,crash,\
                                    timeout,assert,cycles,instructions,fingerprint,crc";

/// The stratified-sampler annotation of an exhaustive-flavor [`ShardRow`]:
/// present only on whole-campaign rows produced by the class-weighted
/// stratified sampler (L1/L2 scale), whose result carries a nonzero
/// achieved margin and a memoized distinct-class count that cannot be
/// recomputed from the weighted columns alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStratified {
    /// The achieved whole-population margin as IEEE-754 bits — transported
    /// exactly so the merged store is byte-identical to the single-process
    /// result's shortest-roundtrip rendering.
    pub margin_bits: u64,
    /// Distinct live classes simulated (the memo size).
    pub simulated: u64,
}

impl ShardStratified {
    /// The margin as a float.
    pub fn margin(self) -> f64 {
        f64::from_bits(self.margin_bits)
    }
}

/// The exhaustive-campaign annotation of a [`ShardRow`]: the row's
/// `[start, end)` range indexes *live equivalence classes* (not runs), its
/// standard counts are the unweighted per-class outcomes (so the
/// `total == len` invariant and the splice merge hold unchanged), and
/// these columns carry the population-weighted view the final result is
/// assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardExhaustive {
    /// Class outcomes multiplied by their class weights: the population
    /// mass this unit's classes account for, per effect.
    pub weighted: ClassCounts,
    /// The structure's whole fault-space population (`bits × cycles` of
    /// the fault-free run). Every row of a campaign must agree.
    pub weight_total: u64,
    /// Population mass of the provably-dead classes, credited `Masked`
    /// once at merge (never per row). Every row of a campaign must agree.
    pub pruned: u64,
    /// Stratified-sampler annotation; `None` on exhaustive class ranges.
    pub stratified: Option<ShardStratified>,
}

/// One completed work unit in a worker's shard store: the class counts of
/// a contiguous run-range `[start, end)` of one campaign, stamped with the
/// campaign seed it ran under and the golden-run fingerprint it was
/// classified against. Fingerprints are mandatory — shards are born
/// post-integrity, there is no legacy format to tolerate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// The unit (campaign key + run-range) this row covers.
    pub unit: UnitSpec,
    /// The campaign seed runs were derived from.
    pub seed: u64,
    /// Classifications of the range's runs.
    pub counts: ClassCounts,
    /// Fault-free reference cycles (range-independent).
    pub fault_free_cycles: u64,
    /// Fault-free committed instructions (range-independent).
    pub fault_free_instructions: u64,
    /// Fingerprint of the golden run the range was classified against.
    pub fingerprint: GoldenFingerprint,
    /// Exhaustive-campaign weight columns; `None` on sampled-sweep rows.
    pub exhaustive: Option<ShardExhaustive>,
}

impl ShardRow {
    /// The dedup key the merge uses: identical (unit, range, seed) rows
    /// are the same work executed more than once.
    pub fn dedup_key(&self) -> (Key, usize, usize, u64) {
        (
            (self.unit.component, self.unit.workload, self.unit.faults),
            self.unit.start,
            self.unit.end,
            self.seed,
        )
    }
}

/// What a lossy shard-store load found.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLoadAudit {
    /// Intact rows loaded.
    pub rows_loaded: usize,
    /// Defective rows, in file order.
    pub quarantined: Vec<QuarantinedRow>,
}

impl ShardLoadAudit {
    /// The audit of an empty / missing file.
    pub fn empty() -> Self {
        Self {
            rows_loaded: 0,
            quarantined: Vec::new(),
        }
    }
}

/// Append-ordered store of [`ShardRow`]s — one worker's durable record of
/// every unit it completed. Unlike [`ResultStore`] it is *not* keyed:
/// duplicate and overlapping ranges are legal on disk (retry and
/// work-stealing produce them) and are resolved by the supervisor's merge,
/// not the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStore {
    rows: Vec<ShardRow>,
}

impl ShardStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row in memory.
    pub fn push(&mut self, row: ShardRow) {
        self.rows.push(row);
    }

    /// The rows, in append order.
    pub fn rows(&self) -> &[ShardRow] {
        &self.rows
    }

    /// Renders one row as CSV (no trailing newline): 14 body fields (21
    /// for exhaustive-flavor rows, 23 for stratified ones) plus the CRC-32
    /// of the body text.
    fn csv_row(r: &ShardRow) -> String {
        let mut body = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            component_slug(r.unit.component),
            r.unit.workload.name(),
            r.unit.faults,
            r.unit.start,
            r.unit.end,
            r.seed,
            r.counts.masked,
            r.counts.sdc,
            r.counts.crash,
            r.counts.timeout,
            r.counts.assert_,
            r.fault_free_cycles,
            r.fault_free_instructions,
            r.fingerprint,
        );
        if let Some(ex) = &r.exhaustive {
            body.push_str(&format!(
                ",{},{},{},{},{},{},{}",
                ex.weighted.masked,
                ex.weighted.sdc,
                ex.weighted.crash,
                ex.weighted.timeout,
                ex.weighted.assert_,
                ex.weight_total,
                ex.pruned,
            ));
            if let Some(s) = &ex.stratified {
                body.push_str(&format!(",{},{}", s.margin_bits, s.simulated));
            }
        }
        let crc = crc32(body.as_bytes());
        format!("{body},{crc:08x}")
    }

    /// Serializes to shard CSV (version line, header, checksummed rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(SHARD_VERSION_LINE);
        out.push('\n');
        out.push_str(SHARD_CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&Self::csv_row(r));
            out.push('\n');
        }
        out
    }

    /// Checks a row's CRC and parses it.
    fn parse_row(line: &str) -> Result<ShardRow, RowDefect> {
        let syntax = |message: String| RowDefect::Syntax { message };
        let (body, crc_hex) = line
            .rsplit_once(',')
            .ok_or_else(|| syntax("row has no CRC field".into()))?;
        if crc_hex.len() != 8 {
            return Err(syntax(format!("CRC {crc_hex:?} is not 8 hex digits")));
        }
        let stored = u32::from_str_radix(crc_hex, 16)
            .map_err(|e| syntax(format!("{e} (CRC {crc_hex:?})")))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(RowDefect::CrcMismatch { stored, computed });
        }
        let fields: Vec<&str> = body.split(',').collect();
        if fields.len() != 14 && fields.len() != 21 && fields.len() != 23 {
            return Err(syntax(format!(
                "expected 14 (sampled), 21 (exhaustive) or 23 (stratified) fields, got {}",
                fields.len()
            )));
        }
        let parse = |s: &str| -> Result<u64, RowDefect> {
            s.parse().map_err(|e| syntax(format!("{e} (field {s:?})")))
        };
        let fp = fields[13];
        if fp.len() != 16 {
            return Err(syntax(format!("fingerprint {fp:?} is not 16 hex digits")));
        }
        let unit = UnitSpec {
            component: fields[0].parse().map_err(|e| syntax(format!("{e}")))?,
            workload: fields[1].parse().map_err(|e| syntax(format!("{e}")))?,
            faults: parse(fields[2])? as usize,
            start: parse(fields[3])? as usize,
            end: parse(fields[4])? as usize,
        };
        if unit.is_empty() {
            return Err(syntax(format!(
                "empty run-range [{}..{})",
                unit.start, unit.end
            )));
        }
        let counts = ClassCounts {
            masked: parse(fields[6])?,
            sdc: parse(fields[7])?,
            crash: parse(fields[8])?,
            timeout: parse(fields[9])?,
            assert_: parse(fields[10])?,
        };
        if counts.total() != unit.len() as u64 {
            return Err(syntax(format!(
                "counts sum to {} but the range holds {} runs",
                counts.total(),
                unit.len()
            )));
        }
        let exhaustive = if fields.len() >= 21 {
            let stratified = if fields.len() == 23 {
                let s = ShardStratified {
                    margin_bits: parse(fields[21])?,
                    simulated: parse(fields[22])?,
                };
                let margin = s.margin();
                if !margin.is_finite() || !(0.0..=1.0).contains(&margin) {
                    return Err(syntax(format!(
                        "stratified margin bits {:#x} decode to {margin}, not a fraction",
                        s.margin_bits
                    )));
                }
                // A stratified row is whole-campaign by construction.
                if (unit.start, unit.end) != (0, 1) {
                    return Err(syntax(format!(
                        "stratified rows cover the whole campaign, not [{}..{})",
                        unit.start, unit.end
                    )));
                }
                Some(s)
            } else {
                None
            };
            let ex = ShardExhaustive {
                weighted: ClassCounts {
                    masked: parse(fields[14])?,
                    sdc: parse(fields[15])?,
                    crash: parse(fields[16])?,
                    timeout: parse(fields[17])?,
                    assert_: parse(fields[18])?,
                },
                weight_total: parse(fields[19])?,
                pruned: parse(fields[20])?,
                stratified,
            };
            // Each class carries weight ≥ 1, and this unit's live mass plus
            // the dead mass can never exceed the whole population. A
            // stratified row covers the live stratum as one synthetic unit,
            // so only the population bound applies (its live mass may even
            // be zero when every class is provably dead).
            if stratified.is_none() && ex.weighted.total() < unit.len() as u64 {
                return Err(syntax(format!(
                    "weighted counts sum to {} but the range holds {} classes",
                    ex.weighted.total(),
                    unit.len()
                )));
            }
            if ex.weighted.total().saturating_add(ex.pruned) > ex.weight_total {
                return Err(syntax(format!(
                    "weighted mass {} + pruned {} exceeds the population {}",
                    ex.weighted.total(),
                    ex.pruned,
                    ex.weight_total
                )));
            }
            Some(ex)
        } else {
            None
        };
        Ok(ShardRow {
            unit,
            seed: parse(fields[5])?,
            counts,
            fault_free_cycles: parse(fields[11])?,
            fault_free_instructions: parse(fields[12])?,
            fingerprint: fp
                .parse()
                .map_err(|e| syntax(format!("{e} (fingerprint {fp:?})")))?,
            exhaustive,
        })
    }

    /// Parses shard CSV, quarantining defective rows instead of failing —
    /// the merge path: a shard with a torn final line (its worker was
    /// killed mid-append) yields every intact unit.
    ///
    /// # Errors
    ///
    /// Only [`StoreError::UnsupportedVersion`]: a file that does not open
    /// with the shard version line is not a shard store, and none of its
    /// lines can be trusted as rows.
    pub fn from_csv_lossy(csv: &str) -> Result<(Self, ShardLoadAudit), StoreError> {
        match csv.lines().next() {
            None => return Ok((Self::new(), ShardLoadAudit::empty())),
            Some(first) if first.trim() == SHARD_VERSION_LINE => {}
            Some(first) => {
                return Err(StoreError::UnsupportedVersion {
                    found: first.to_string(),
                })
            }
        }
        let mut store = Self::new();
        let mut audit = ShardLoadAudit::empty();
        // Line 1 is the version line, line 2 the header.
        for (lineno, line) in csv.lines().enumerate().skip(2) {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_row(line) {
                Ok(row) => {
                    store.push(row);
                    audit.rows_loaded += 1;
                }
                Err(defect) => audit.quarantined.push(QuarantinedRow {
                    line: lineno + 1,
                    raw: line.to_string(),
                    defect,
                }),
            }
        }
        Ok((store, audit))
    }

    /// Appends one completed unit to the shard file (creating it, with
    /// version line and header, if absent), synced to stable storage
    /// before returning — the worker's durability point: a unit is only
    /// reported `done` after this call succeeds.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_row_with(
        io: &dyn StoreIo,
        path: &Path,
        row: &ShardRow,
    ) -> Result<(), StoreError> {
        let line = Self::csv_row(row);
        if io.len(path)? == 0 {
            io.append(
                path,
                &format!("{SHARD_VERSION_LINE}\n{SHARD_CSV_HEADER}\n{line}\n"),
            )?;
            return Ok(());
        }
        io.append(path, &format!("{line}\n"))?;
        Ok(())
    }

    /// Crash-safe load: defective rows are moved to a `<file>.quarantine`
    /// sidecar and the survivors returned; when anything was quarantined
    /// the file is atomically rewritten clean. A missing file yields an
    /// empty store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`StoreError::UnsupportedVersion`].
    pub fn recover_with(
        io: &dyn StoreIo,
        path: &Path,
    ) -> Result<(Self, ShardLoadAudit), StoreError> {
        let text = match io.read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Self::new(), ShardLoadAudit::empty()))
            }
            Err(e) => return Err(e.into()),
        };
        let (store, audit) = Self::from_csv_lossy(&text)?;
        if !audit.quarantined.is_empty() {
            let mut sidecar = String::new();
            for q in &audit.quarantined {
                sidecar.push_str(&format!("line {}: {}: {}\n", q.line, q.defect, q.raw));
            }
            io.append(&quarantine_path(path), &sidecar)?;
            io.write_atomic(path, &store.to_csv())?;
        }
        Ok((store, audit))
    }
}

/// One analytically-derived AVF measurement (ACE-style fault-free capture).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalRow {
    /// Component whose data array was observed.
    pub component: HwComponent,
    /// Workload driving the observation run.
    pub workload: Workload,
    /// `live-bit-cycles / (bits × cycles)` of the fault-free run.
    pub analytical_avf: f64,
    /// Cycles of the observation run.
    pub total_cycles: u64,
}

/// The fixed CSV header of the analytical-AVF checkpoint.
pub const ANALYTICAL_CSV_HEADER: &str = "component,workload,analytical_avf,total_cycles";

/// CSV-backed store of analytical AVF captures, with the same
/// incremental-checkpoint semantics as [`ResultStore`]: one row per
/// finished (component, workload) capture, last row wins on reload.
#[derive(Debug, Clone, Default)]
pub struct AnalyticalStore {
    entries: BTreeMap<(HwComponent, Workload), AnalyticalRow>,
}

impl AnalyticalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a row (replacing any previous entry for its key).
    pub fn insert(&mut self, row: AnalyticalRow) {
        self.entries.insert((row.component, row.workload), row);
    }

    /// Looks up a capture.
    pub fn get(&self, component: HwComponent, workload: Workload) -> Option<&AnalyticalRow> {
        self.entries.get(&(component, workload))
    }

    /// Whether a capture for this key is already present.
    pub fn contains(&self, component: HwComponent, workload: Workload) -> bool {
        self.entries.contains_key(&(component, workload))
    }

    /// Number of stored captures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &AnalyticalRow> {
        self.entries.values()
    }

    fn csv_row(r: &AnalyticalRow) -> String {
        format!(
            "{},{},{},{}",
            component_slug(r.component),
            r.workload.name(),
            r.analytical_avf,
            r.total_cycles,
        )
    }

    /// Serializes to CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(ANALYTICAL_CSV_HEADER);
        out.push('\n');
        for r in self.entries.values() {
            out.push_str(&Self::csv_row(r));
            out.push('\n');
        }
        out
    }

    /// Parses the CSV produced by [`AnalyticalStore::to_csv`] /
    /// [`AnalyticalStore::append_row`] (duplicates legal, last row wins).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Syntax`] with the line number on malformed rows.
    pub fn from_csv(csv: &str) -> Result<Self, StoreError> {
        let mut store = Self::new();
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let syntax = |message: String| StoreError::Syntax {
                line: lineno + 1,
                message,
            };
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 4 {
                return Err(syntax(format!("expected 4 fields, got {}", f.len())));
            }
            let avf: f64 = f[2]
                .parse()
                .map_err(|e| syntax(format!("{e} (field {:?})", f[2])))?;
            if !(0.0..=1.0).contains(&avf) {
                return Err(syntax(format!("AVF {avf} outside [0, 1]")));
            }
            store.insert(AnalyticalRow {
                component: f[0].parse().map_err(|e| syntax(format!("{e}")))?,
                workload: f[1].parse().map_err(|e| syntax(format!("{e}")))?,
                analytical_avf: avf,
                total_cycles: f[3]
                    .parse()
                    .map_err(|e| syntax(format!("{e} (field {:?})", f[3])))?,
            });
        }
        Ok(store)
    }

    /// Appends one finished capture to the checkpoint file (creating it,
    /// with header, if absent).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_row(path: &Path, r: &AnalyticalRow) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{ANALYTICAL_CSV_HEADER}")?;
        }
        writeln!(file, "{}", Self::csv_row(r))?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed-CSV errors.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text)
    }
}

/// Parseable slug for a component.
pub fn component_slug(c: HwComponent) -> &'static str {
    match c {
        HwComponent::L1D => "l1d",
        HwComponent::L1I => "l1i",
        HwComponent::L2 => "l2",
        HwComponent::RegFile => "regfile",
        HwComponent::DTlb => "dtlb",
        HwComponent::ITlb => "itlb",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(component: HwComponent, workload: Workload, faults: usize) -> CampaignResult {
        CampaignResult {
            component,
            workload,
            faults,
            counts: ClassCounts {
                masked: 90,
                sdc: 5,
                crash: 3,
                timeout: 1,
                assert_: 1,
            },
            fault_free_cycles: 12345,
            fault_free_instructions: 6789,
            details: None,
            anomalies: AnomalyLog::new(),
            oracle_skips: 0,
            achieved_margin: Some(0.0275),
            snapshot_stats: None,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        s.insert_with_fingerprint(
            sample(HwComponent::ITlb, Workload::Crc32, 3),
            Some(GoldenFingerprint(0xDEAD_BEEF_0123_4567)),
        );
        let csv = s.to_csv();
        assert!(csv.starts_with(STORE_VERSION_LINE));
        let back = ResultStore::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha, 1).unwrap(),
            s.get(HwComponent::L1D, Workload::Sha, 1).unwrap()
        );
        assert_eq!(
            back.fingerprint(HwComponent::ITlb, Workload::Crc32, 3),
            Some(GoldenFingerprint(0xDEAD_BEEF_0123_4567))
        );
        assert_eq!(back.fingerprint(HwComponent::L1D, Workload::Sha, 1), None);
        // Margin roundtrips exactly (shortest-roundtrip float formatting).
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha, 1)
                .unwrap()
                .achieved_margin,
            Some(0.0275)
        );
        // Serialize-again is bit-identical.
        assert_eq!(back.to_csv(), csv);
    }

    /// An exhaustive sample: weighted counts covering the whole population
    /// (the flavor's defining invariant), margin exactly 0.
    fn exhaustive_sample(component: HwComponent, workload: Workload) -> CampaignResult {
        let mut r = sample(component, workload, 1);
        r.achieved_margin = Some(0.0);
        r
    }

    #[test]
    fn exhaustive_flavor_roundtrips_meta_and_checkpoints() {
        let meta = ExhaustiveMeta {
            classes: 7,
            weight: 100, // == sample counts.total()
        };
        let mut s = ResultStore::new();
        s.insert_exhaustive(
            exhaustive_sample(HwComponent::DTlb, Workload::Sha),
            meta,
            Some(GoldenFingerprint(0x0123_4567_89AB_CDEF)),
        );
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        let csv = s.to_csv();
        let back = ResultStore::from_csv(&csv).unwrap();
        assert_eq!(
            back.exhaustive_meta(HwComponent::DTlb, Workload::Sha, 1),
            Some(meta)
        );
        assert_eq!(
            back.exhaustive_meta(HwComponent::L1D, Workload::Sha, 1),
            None,
            "sampled rows carry no annotation"
        );
        assert_eq!(back.to_csv(), csv, "serialize-again is bit-identical");
        // A plain re-measurement of the key drops the stale annotation.
        let mut s = back;
        s.insert(sample(HwComponent::DTlb, Workload::Sha, 1));
        assert_eq!(s.exhaustive_meta(HwComponent::DTlb, Workload::Sha, 1), None);

        // The incremental checkpoint path writes and reloads the flavor.
        let dir = std::env::temp_dir().join(format!("mbu-store-flavor-{}", std::process::id()));
        let path = dir.join("exhaustive.csv");
        let _ = std::fs::remove_file(&path);
        ResultStore::append_flavored_row_with(
            &RealIo,
            &path,
            &exhaustive_sample(HwComponent::ITlb, Workload::Qsort),
            None,
            Some(meta),
        )
        .unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(
            loaded.exhaustive_meta(HwComponent::ITlb, Workload::Qsort, 1),
            Some(meta)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rows whose class/weight columns don't reconcile with the counts are
    /// typed syntax defects even with a valid CRC — the weight-multiply
    /// must never load a row that claims more (or less) than it covers.
    #[test]
    fn exhaustive_flavor_validation_rejects_unreconciled_rows() {
        let tampered_csv = |classes: u64, weight: u64| {
            let r = exhaustive_sample(HwComponent::DTlb, Workload::Sha);
            let mut s = ResultStore::new();
            s.insert_exhaustive(r, ExhaustiveMeta { classes, weight }, None);
            s.to_csv()
        };
        // Re-checksum a body so only the semantic validation can object.
        let reseal = |csv: &str, from: &str, to: &str| {
            let row = csv.lines().nth(2).expect("one data row");
            let (body, _) = row.rsplit_once(',').expect("crc field");
            let body = body.replacen(from, to, 1);
            assert_ne!(body, row, "tamper must apply");
            let crc = crc32(body.as_bytes());
            format!("{}\n{}\n{body},{crc:08x}\n", STORE_VERSION_LINE, CSV_HEADER)
        };
        let good = tampered_csv(7, 100);
        assert!(ResultStore::from_csv(&good).is_ok());
        // Weight disagreeing with the counts sum.
        let bad_weight = reseal(&good, ",7,100", ",7,101");
        match ResultStore::from_csv(&bad_weight) {
            Err(StoreError::Syntax { message, .. }) => {
                assert!(message.contains("claim a population"), "{message}")
            }
            other => panic!("expected syntax defect, got {other:?}"),
        }
        // More simulated classes than the population holds. (The counts
        // must still sum to the claimed weight to reach the class check.)
        let bad_classes = reseal(&tampered_csv(7, 100), ",7,100", ",101,100");
        match ResultStore::from_csv(&bad_classes) {
            Err(StoreError::Syntax { message, .. }) => {
                assert!(message.contains("exceed the population"), "{message}")
            }
            other => panic!("expected syntax defect, got {other:?}"),
        }
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(ResultStore::from_csv("header\nbad,row\n").is_err());
        assert!(ResultStore::from_csv("h\nl1d,sha,1,a,b,c,d,e,f,g\n").is_err());
        assert!(ResultStore::from_csv("h\nnope,sha,1,1,1,1,1,1,1,1\n").is_err());
    }

    #[test]
    fn garbage_and_truncation_return_typed_errors_not_panics() {
        // Binary garbage.
        let garbage = "\u{0}\u{1}\u{2}\nl1d,\u{fffd},x,y\n";
        match ResultStore::from_csv(garbage) {
            Err(StoreError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        // A checkpoint whose last row was torn mid-write.
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        let full = s.to_csv();
        // Tear the row inside its final field, comma included, so the line
        // is left without its CRC.
        let torn = &full[..full.rfind(',').unwrap()];
        let err = ResultStore::from_csv(torn).unwrap_err();
        assert!(
            matches!(err, StoreError::Syntax { .. }),
            "torn row is a syntax error: {err}"
        );
        // Negative and overflowing numeric fields (legacy format).
        assert!(ResultStore::from_csv("h\nl1d,sha,1,-5,1,1,1,1,1,1\n").is_err());
        assert!(
            ResultStore::from_csv("h\nl1d,sha,1,999999999999999999999999,1,1,1,1,1,1\n").is_err()
        );
    }

    #[test]
    fn flipped_bit_is_a_crc_mismatch() {
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        let csv = s.to_csv();
        // Flip a digit inside the masked count (body, not CRC field).
        let corrupted = csv.replacen(",90,", ",91,", 1);
        assert_ne!(corrupted, csv, "corruption must have been applied");
        match ResultStore::from_csv(&corrupted) {
            Err(StoreError::CrcMismatch { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        // Lossy loading quarantines it instead.
        let (store, audit) = ResultStore::from_csv_lossy(&corrupted).unwrap();
        assert!(store.is_empty());
        assert_eq!(audit.quarantined.len(), 1);
        assert!(matches!(
            audit.quarantined[0].defect,
            RowDefect::CrcMismatch { .. }
        ));
    }

    #[test]
    fn legacy_v1_files_load_without_integrity_columns() {
        let legacy = format!("{LEGACY_CSV_HEADER}\nl1d,sha,1,90,5,3,1,1,12345,6789\n");
        let (store, audit) = ResultStore::from_csv_lossy(&legacy).unwrap();
        assert_eq!(audit.version, StoreVersion::Legacy);
        assert_eq!(store.len(), 1);
        let r = store.get(HwComponent::L1D, Workload::Sha, 1).unwrap();
        assert_eq!(r.achieved_margin, None, "legacy rows carry no margin");
        assert_eq!(
            store.fingerprint(HwComponent::L1D, Workload::Sha, 1),
            None,
            "legacy rows carry no fingerprint"
        );
        // The strict path accepts them too.
        assert_eq!(ResultStore::from_csv(&legacy).unwrap().len(), 1);
    }

    #[test]
    fn unknown_version_is_refused_not_guessed() {
        let future = "#mbu-results v99\nanything\n";
        assert!(matches!(
            ResultStore::from_csv(future),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            ResultStore::from_csv_lossy(future),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn completeness_check() {
        let mut s = ResultStore::new();
        for c in HwComponent::ALL {
            for w in Workload::ALL {
                for f in 1..=3 {
                    s.insert(sample(c, w, f));
                }
            }
        }
        assert!(s.is_complete());
        assert_eq!(s.len(), 270);
    }

    #[test]
    fn insert_replaces_same_key_and_drops_stale_fingerprint() {
        let mut s = ResultStore::new();
        s.insert_with_fingerprint(
            sample(HwComponent::L2, Workload::Fft, 2),
            Some(GoldenFingerprint(42)),
        );
        let mut newer = sample(HwComponent::L2, Workload::Fft, 2);
        newer.counts.masked = 1;
        s.insert(newer.clone());
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(HwComponent::L2, Workload::Fft, 2)
                .unwrap()
                .counts
                .masked,
            1
        );
        assert_eq!(
            s.fingerprint(HwComponent::L2, Workload::Fft, 2),
            None,
            "plain insert must not keep a fingerprint it was not measured under"
        );
    }

    #[test]
    fn append_row_checkpoints_incrementally() {
        let dir = std::env::temp_dir().join(format!("mbu-store-test-{}", std::process::id()));
        let path = dir.join("checkpoint.csv");
        let _ = std::fs::remove_file(&path);
        let a = sample(HwComponent::L1D, Workload::Sha, 1);
        let b = sample(HwComponent::RegFile, Workload::Fft, 2);
        ResultStore::append_row(&path, &a).unwrap();
        ResultStore::append_row(&path, &b).unwrap();
        // Re-measurement of the same key appends; last row wins on load.
        let mut newer = a.clone();
        newer.counts.masked = 42;
        ResultStore::append_row(&path, &newer).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded
                .get(HwComponent::L1D, Workload::Sha, 1)
                .unwrap()
                .counts
                .masked,
            42
        );
        assert!(loaded.contains(HwComponent::RegFile, Workload::Fft, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_upgrades_legacy_checkpoint_in_place() {
        let dir = std::env::temp_dir().join(format!("mbu-store-upgrade-{}", std::process::id()));
        let path = dir.join("checkpoint.csv");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            &path,
            format!("{LEGACY_CSV_HEADER}\nl1d,sha,1,90,5,3,1,1,12345,6789\n"),
        )
        .unwrap();
        let b = sample(HwComponent::RegFile, Workload::Fft, 2);
        ResultStore::append_row_with(&RealIo, &path, &b, Some(GoldenFingerprint(7))).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with(STORE_VERSION_LINE),
            "upgraded to v2: {text}"
        );
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(HwComponent::L1D, Workload::Sha, 1));
        assert_eq!(
            loaded.fingerprint(HwComponent::RegFile, Workload::Fft, 2),
            Some(GoldenFingerprint(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_quarantines_bad_rows_and_rewrites_clean_file() {
        let dir = std::env::temp_dir().join(format!("mbu-store-recover-{}", std::process::id()));
        let path = dir.join("checkpoint.csv");
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        s.insert(sample(HwComponent::L2, Workload::Fft, 2));
        let mut text = s.to_csv();
        text.push_str("complete,garbage,row\n");
        std::fs::write(&path, &text).unwrap();
        let (recovered, audit) = ResultStore::recover(&path).unwrap();
        assert_eq!(recovered.len(), 2, "survivors load");
        assert_eq!(audit.quarantined.len(), 1);
        // The sidecar holds the quarantined row with its reason.
        let sidecar = std::fs::read_to_string(quarantine_path(&path)).unwrap();
        assert!(sidecar.contains("complete,garbage,row"), "{sidecar}");
        assert!(sidecar.contains("syntax"), "{sidecar}");
        // The main file was rewritten clean: strict load now succeeds and a
        // second recover quarantines nothing.
        assert_eq!(ResultStore::load(&path).unwrap().len(), 2);
        let (_, audit2) = ResultStore::recover(&path).unwrap();
        assert!(audit2.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_missing_file_is_empty_store() {
        let path = std::env::temp_dir().join(format!(
            "mbu-store-missing-{}/never-written.csv",
            std::process::id()
        ));
        let (store, audit) = ResultStore::recover(&path).unwrap();
        assert!(store.is_empty());
        assert!(audit.quarantined.is_empty());
    }

    #[test]
    fn save_is_atomic_leaving_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("mbu-store-atomic-{}", std::process::id()));
        let path = dir.join("out.csv");
        let mut s = ResultStore::new();
        s.insert(sample(HwComponent::L1D, Workload::Sha, 1));
        s.save(&path).unwrap();
        assert_eq!(ResultStore::load(&path).unwrap().len(), 1);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analytical_store_roundtrips_and_checkpoints() {
        let mut s = AnalyticalStore::new();
        s.insert(AnalyticalRow {
            component: HwComponent::L1D,
            workload: Workload::Sha,
            analytical_avf: 0.03125,
            total_cycles: 54321,
        });
        s.insert(AnalyticalRow {
            component: HwComponent::RegFile,
            workload: Workload::Qsort,
            analytical_avf: 0.25,
            total_cycles: 999,
        });
        let back = AnalyticalStore::from_csv(&s.to_csv()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get(HwComponent::L1D, Workload::Sha),
            s.get(HwComponent::L1D, Workload::Sha)
        );
        // Malformed rows are typed errors.
        assert!(AnalyticalStore::from_csv("h\nl1d,sha,notafloat,1\n").is_err());
        assert!(
            AnalyticalStore::from_csv("h\nl1d,sha,1.5,1\n").is_err(),
            "AVF > 1 rejected"
        );
        assert!(
            AnalyticalStore::from_csv("h\nl1d,sha,0.5\n").is_err(),
            "missing field"
        );
        // Incremental checkpoint with last-row-wins reload.
        let dir = std::env::temp_dir().join(format!("mbu-astore-test-{}", std::process::id()));
        let path = dir.join("analytical.csv");
        let _ = std::fs::remove_file(&path);
        let row = AnalyticalRow {
            component: HwComponent::L2,
            workload: Workload::Fft,
            analytical_avf: 0.001,
            total_cycles: 10,
        };
        AnalyticalStore::append_row(&path, &row).unwrap();
        let mut newer = row.clone();
        newer.analytical_avf = 0.002;
        AnalyticalStore::append_row(&path, &newer).unwrap();
        let loaded = AnalyticalStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded
                .get(HwComponent::L2, Workload::Fft)
                .unwrap()
                .analytical_avf,
            0.002
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ResultStore::load(Path::new("/nonexistent/dir/store.csv")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
