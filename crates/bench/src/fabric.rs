//! Distributed-sweep fabric: the shard planner, the worker execution loop,
//! and the crash-consistent shard merge.
//!
//! A sweep decomposes into [`UnitSpec`] work units — contiguous run-ranges
//! of (component × workload × cardinality) campaigns. Per-run seeds derive
//! from the campaign seed and the absolute run index alone
//! ([`mbu_gefin::campaign::derive_run_seed`]), so the class counts of any
//! disjoint cover of `0..runs` sum to exactly the full campaign's counts,
//! and the campaign's error margin is a pure function of the summed counts
//! ([`campaign_margin`]). That is the whole trick: workers execute ranges
//! independently and persist [`ShardRow`]s; [`merge_rows`] splices ranges
//! back into campaigns and lands on a [`ResultStore`] *byte-identical* to a
//! single-process sweep.
//!
//! Equivalence-class campaigns shard the same way, but a unit's range
//! indexes *live classes* of the deterministic [`ExhaustivePlan`] instead
//! of runs: each class is simulated once regardless of which worker owns
//! it, so any disjoint cover of `0..live_classes` reproduces the
//! single-process exhaustive sweep exactly, outcome for outcome. Such
//! rows carry a [`ShardExhaustive`] annotation (class-weighted counts,
//! campaign-wide population and pruned mass); stratified big-array
//! campaigns ride as one whole-campaign unit annotated with
//! [`ShardStratified`]. The flavor-aware merge reconciles annotations
//! across rows — disagreeing totals or mixed flavors are conflicts — and
//! re-derives the exhaustive store entry (weighted counts, margin,
//! metadata) bit-identically to `repro exhaustive` in one process.
//!
//! The merge trusts nothing:
//!
//! * rows ride in checksummed shard CSVs; torn/corrupt rows were already
//!   quarantined by [`ShardStore::recover_with`];
//! * a row whose seed or golden-run fingerprint does not match the current
//!   sweep is *stale* — dropped and re-run, never merged;
//! * duplicated work (retry after a lost worker, work-stealing overlap) is
//!   deduplicated by greedy exact-adjacency splicing: at each point only a
//!   row starting exactly at the covered frontier extends the cover;
//!   fully-covered duplicates and misaligned overlaps are dropped and
//!   counted;
//! * rows that should be identical but disagree (same range, different
//!   counts — engine nondeterminism or undetected corruption) are dropped
//!   as *conflicts*, leaving a gap that forces a re-run;
//! * whatever remains uncovered is reported as precise gap units, so a
//!   resumed sweep re-runs exactly the missing runs and nothing else.

use crate::chaos::WorkerChaos;
use crate::io::{RealIo, StoreIo};
use crate::protocol::{read_frame, write_frame, EquivSpec, ProtocolError, ToSupervisor, ToWorker};
use crate::store::{
    Key, ResultStore, ShardExhaustive, ShardLoadAudit, ShardRow, ShardStore, ShardStratified,
    StoreError,
};
use crate::Experiments;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{campaign_margin, Campaign, UnitSpec};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::error::CampaignError;
use mbu_gefin::exhaustive::{ExhaustivePlan, ExhaustiveSpec};
use mbu_gefin::integrity::{golden_fingerprint, GoldenFingerprint};
use mbu_gefin::stats::Z_99;
use mbu_gefin::GoldenArtifacts;
use mbu_workloads::Workload;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every campaign key of a sweep over `components`, in the same order the
/// single-process driver visits them (cardinalities `1..=max_cardinality`,
/// mirrored from [`Experiments::run_sweep`]).
pub fn campaign_keys(exp: &Experiments, components: &[HwComponent]) -> Vec<Key> {
    let mut keys = Vec::new();
    for &component in components {
        for &workload in &exp.workloads {
            for faults in exp.cardinalities() {
                keys.push((component, workload, faults));
            }
        }
    }
    keys
}

/// Splits the run-range `[start, end)` of one campaign into units of at
/// most `unit_runs` runs (`0` = no splitting). Adaptive campaigns are
/// never split — early stopping depends on the global run order — so
/// callers pass `unit_runs = 0` for them.
pub fn split_range(key: Key, start: usize, end: usize, unit_runs: usize) -> Vec<UnitSpec> {
    let (component, workload, faults) = key;
    let step = if unit_runs == 0 {
        end.saturating_sub(start).max(1)
    } else {
        unit_runs
    };
    let mut units = Vec::new();
    let mut at = start;
    while at < end {
        let stop = (at + step).min(end);
        units.push(UnitSpec {
            component,
            workload,
            faults,
            start: at,
            end: stop,
        });
        at = stop;
    }
    units
}

/// Plans a full sweep as work units: every campaign of
/// [`campaign_keys`], each split into run-ranges of at most `unit_runs`
/// runs (`0`, or an adaptive sweep, = one whole-campaign unit each).
pub fn plan_units(
    exp: &Experiments,
    components: &[HwComponent],
    unit_runs: usize,
) -> Vec<UnitSpec> {
    let split = if exp.adaptive.is_some() { 0 } else { unit_runs };
    campaign_keys(exp, components)
        .into_iter()
        .flat_map(|key| split_range(key, 0, exp.runs, split))
        .collect()
}

/// What [`merge_rows`] did, campaign by campaign and row by row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeReport {
    /// Campaigns fully covered and merged into the result store.
    pub campaigns_merged: usize,
    /// Rows whose counts entered a merged campaign.
    pub rows_merged: usize,
    /// Exact re-executions of already-covered ranges (retry or steal
    /// overlap), dropped.
    pub duplicates_dropped: usize,
    /// Rows overlapping the covered frontier without aligning to it;
    /// counts cannot be spliced mid-range, so they are dropped.
    pub overlaps_dropped: usize,
    /// Rows from a different seed or a stale golden-run fingerprint —
    /// their runs are re-run, never merged.
    pub stale_dropped: usize,
    /// Rows that contradict an equally-valid sibling (same range,
    /// different counts or golden counters): engine nondeterminism or
    /// undetected corruption. Dropped; their range re-runs.
    pub conflicts_dropped: usize,
    /// Precisely the uncovered run-ranges — the resume plan. Empty iff
    /// every plannable campaign merged.
    pub gaps: Vec<UnitSpec>,
}

impl MergeReport {
    /// Whether every campaign merged with nothing left to re-run.
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty()
    }
}

fn add_counts(into: &mut ClassCounts, from: &ClassCounts) {
    into.masked += from.masked;
    into.sdc += from.sdc;
    into.crash += from.crash;
    into.timeout += from.timeout;
    into.assert_ += from.assert_;
}

/// A deterministic total order on rows of one campaign: by range start,
/// then *longer ranges first* (a straggler's full-range row beats the
/// stolen tail's sub-ranges), then by payload so ties never depend on
/// input order.
fn row_order(a: &ShardRow, b: &ShardRow) -> std::cmp::Ordering {
    (a.unit.start, std::cmp::Reverse(a.unit.end))
        .cmp(&(b.unit.start, std::cmp::Reverse(b.unit.end)))
        .then_with(|| {
            let payload = |r: &ShardRow| {
                (
                    r.counts.masked,
                    r.counts.sdc,
                    r.counts.crash,
                    r.counts.timeout,
                    r.counts.assert_,
                    r.fault_free_cycles,
                    r.fault_free_instructions,
                    r.exhaustive.map(|ex| {
                        (
                            ex.weighted.masked,
                            ex.weighted.sdc,
                            ex.weighted.crash,
                            ex.weighted.timeout,
                            ex.weighted.assert_,
                            ex.weight_total,
                            ex.pruned,
                            ex.stratified.map(|s| (s.margin_bits, s.simulated)),
                        )
                    }),
                )
            };
            payload(a).cmp(&payload(b))
        })
}

/// Merges shard rows into a [`ResultStore`], campaign by campaign over
/// `campaigns`. Input row order never matters: rows are canonically
/// sorted per campaign before splicing, so the merge is idempotent and
/// order-independent (the property tests hold it to that).
///
/// `expected` maps each workload to the golden-run fingerprint of the
/// *current* build/configuration; rows stamped differently are stale.
/// Campaigns whose workload has no entry (their golden run failed) are
/// skipped entirely — they cannot be run, so they are not gaps either.
pub fn merge_rows(
    exp: &Experiments,
    campaigns: &[Key],
    rows: &[ShardRow],
    expected: &BTreeMap<Workload, GoldenFingerprint>,
) -> (ResultStore, MergeReport) {
    let with_totals: Vec<(Key, usize)> = campaigns.iter().map(|&k| (k, exp.runs)).collect();
    merge_rows_with_totals(exp, &with_totals, rows, expected)
}

/// [`merge_rows`] with an explicit per-campaign unit total — the shape
/// exhaustive sweeps need, where each campaign's unit space is its own
/// live-class count rather than the sweep-wide `runs`. The merge is
/// flavor-aware: a campaign whose rows carry [`ShardExhaustive`] columns
/// finalizes by summing the *weighted* counts, crediting the pruned dead
/// mass as `Masked` once, and stamping the result with margin 0 and an
/// [`crate::store::ExhaustiveMeta`] annotation; rows that disagree on the
/// population or mix flavors are conflicts, never merged.
pub fn merge_rows_with_totals(
    exp: &Experiments,
    campaigns: &[(Key, usize)],
    rows: &[ShardRow],
    expected: &BTreeMap<Workload, GoldenFingerprint>,
) -> (ResultStore, MergeReport) {
    let mut report = MergeReport::default();
    let mut by_campaign: BTreeMap<Key, Vec<ShardRow>> = BTreeMap::new();
    let totals: BTreeMap<Key, usize> = campaigns.iter().copied().collect();
    for row in rows {
        let key = row.unit.campaign_key();
        let Some(&total) = totals.get(&key) else {
            // A row for a campaign outside this sweep (e.g. a narrower
            // resume) is simply not merged — not an error, not a gap.
            continue;
        };
        let fresh = row.seed == exp.seed
            && expected.get(&row.unit.workload) == Some(&row.fingerprint)
            && row.unit.end <= total;
        if !fresh {
            report.stale_dropped += 1;
            continue;
        }
        by_campaign.entry(key).or_default().push(row.clone());
    }
    let mut store = ResultStore::new();
    for &(key, total) in campaigns {
        let (component, workload, faults) = key;
        let Some(&fingerprint) = expected.get(&workload) else {
            continue;
        };
        let mut rows = by_campaign.remove(&key).unwrap_or_default();
        rows.sort_by(row_order);
        let before = rows.len();
        rows.dedup();
        report.duplicates_dropped += before - rows.len();
        // One flavor per campaign: exhaustive iff every row agrees on the
        // annotation's campaign-wide constants. A mixed set cannot be
        // spliced into either kind of result.
        let exhaustive = rows.first().and_then(|r| r.exhaustive).and_then(|first| {
            rows.iter()
                .all(|r| {
                    r.exhaustive.is_some_and(|ex| {
                        (ex.weight_total, ex.pruned, ex.stratified)
                            == (first.weight_total, first.pruned, first.stratified)
                    })
                })
                .then_some(first)
        });
        let mixed = rows.iter().any(|r| r.exhaustive.is_some()) && exhaustive.is_none();
        if mixed {
            report.conflicts_dropped += rows.len();
            report.gaps.push(UnitSpec {
                component,
                workload,
                faults,
                start: 0,
                end: total,
            });
            continue;
        }
        // Greedy exact-adjacency splice: only a row starting exactly at
        // the covered frontier extends the cover.
        let mut covered = 0usize;
        let mut counts = ClassCounts::new();
        let mut weighted = ClassCounts::new();
        let mut golden: Option<(u64, u64)> = None;
        let mut merged_rows = 0usize;
        let mut gaps: Vec<(usize, usize)> = Vec::new();
        let adaptive = exp.adaptive.is_some() && exhaustive.is_none();
        for row in &rows {
            if adaptive && covered > 0 {
                // Adaptive campaigns are one row; a deterministic engine
                // re-runs them to the identical stopping point, so a
                // differing second row is a conflict, an identical one a
                // duplicate (caught by dedup above).
                report.conflicts_dropped += 1;
                continue;
            }
            if row.unit.end <= covered {
                report.duplicates_dropped += 1;
                continue;
            }
            if row.unit.start < covered {
                report.overlaps_dropped += 1;
                continue;
            }
            if row.unit.start > covered {
                if adaptive {
                    // Split adaptive rows cannot exist legitimately.
                    report.overlaps_dropped += 1;
                    continue;
                }
                gaps.push((covered, row.unit.start));
            }
            if let Some(g) = golden {
                if g != (row.fault_free_cycles, row.fault_free_instructions) {
                    report.conflicts_dropped += 1;
                    continue;
                }
            }
            if rows.iter().any(|other| {
                other.unit == row.unit
                    && (other.counts != row.counts || other.exhaustive != row.exhaustive)
            }) {
                // Same range, different classifications: neither copy can
                // be trusted. Leave the range uncovered so it re-runs.
                report.conflicts_dropped += 1;
                continue;
            }
            golden = Some((row.fault_free_cycles, row.fault_free_instructions));
            add_counts(&mut counts, &row.counts);
            if let Some(ex) = &row.exhaustive {
                add_counts(&mut weighted, &ex.weighted);
            }
            covered = row.unit.end;
            merged_rows += 1;
        }
        // An adaptive campaign is complete at its own stopping point; a
        // fixed or exhaustive campaign only at its full unit count.
        let complete = if adaptive {
            merged_rows == 1
        } else {
            covered == total && gaps.is_empty()
        };
        // An exhaustive cover must also reconcile exactly with the
        // population: live mass + dead mass == bits × cycles.
        let reconciled = exhaustive
            .is_none_or(|ex| weighted.total().checked_add(ex.pruned) == Some(ex.weight_total));
        if !complete || !reconciled {
            if !reconciled {
                report.conflicts_dropped += merged_rows;
                gaps = vec![(0, total)];
            } else {
                if covered < total && !adaptive {
                    gaps.push((covered, total));
                }
                if adaptive || gaps.is_empty() {
                    gaps = vec![(0, total)];
                }
            }
            for (start, end) in gaps {
                report.gaps.push(UnitSpec {
                    component,
                    workload,
                    faults,
                    start,
                    end,
                });
            }
            continue;
        }
        let (cycles, instructions) = golden.expect("complete cover has at least one row");
        let result = match exhaustive {
            Some(ex) => {
                // Full class cover: weighted outcomes plus the pruned dead
                // mass, credited Masked once. Margin is exactly 0 — every
                // fault site of the population is classified — except for
                // whole-campaign stratified rows, which carry the sampler's
                // achieved margin through bit-exactly.
                let mut final_counts = weighted;
                final_counts.record_weighted(mbu_gefin::FaultEffect::Masked, ex.pruned);
                mbu_gefin::campaign::CampaignResult {
                    workload,
                    component,
                    faults,
                    counts: final_counts,
                    fault_free_cycles: cycles,
                    fault_free_instructions: instructions,
                    details: None,
                    anomalies: mbu_gefin::campaign::AnomalyLog::new(),
                    oracle_skips: 0,
                    achieved_margin: Some(ex.stratified.map_or(0.0, |s| s.margin())),
                    snapshot_stats: None,
                }
            }
            None => {
                let z = exp.adaptive.as_ref().map(|a| a.z).unwrap_or(Z_99);
                mbu_gefin::campaign::CampaignResult {
                    workload,
                    component,
                    faults,
                    counts,
                    fault_free_cycles: cycles,
                    fault_free_instructions: instructions,
                    details: None,
                    anomalies: mbu_gefin::campaign::AnomalyLog::new(),
                    oracle_skips: 0,
                    achieved_margin: campaign_margin(component, &counts, cycles, z).ok(),
                    snapshot_stats: None,
                }
            }
        };
        match exhaustive {
            Some(ex) => store.insert_exhaustive(
                result,
                crate::store::ExhaustiveMeta {
                    // Exhaustive campaigns shard over live classes, so the
                    // unit total *is* the simulated-class census; stratified
                    // rows are one synthetic unit and carry theirs along.
                    classes: ex.stratified.map_or(total as u64, |s| s.simulated),
                    weight: ex.weight_total,
                },
                Some(fingerprint),
            ),
            None => store.insert_with_fingerprint(result, Some(fingerprint)),
        }
        report.campaigns_merged += 1;
        report.rows_merged += merged_rows;
    }
    (store, report)
}

/// The shard files of `dir`, sorted by name for determinism: every
/// regular `*.csv` file (quarantine sidecars and other extensions are
/// skipped).
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory yields an empty
/// list (a fresh sweep has no shards yet).
pub fn shard_files(dir: &Path) -> Result<Vec<PathBuf>, std::io::Error> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "csv"))
        .collect();
    files.sort();
    Ok(files)
}

/// What [`load_shard_dir`] found: every intact row across the directory,
/// plus the per-file recovery audit.
pub type ShardDirLoad = (Vec<ShardRow>, Vec<(PathBuf, ShardLoadAudit)>);

/// Loads every shard store of `dir` crash-safely (defective rows
/// quarantined to sidecars, files rewritten clean) and concatenates their
/// rows. A shard file that is not a shard store at all (wrong version
/// line) is skipped with its audit reporting zero rows — its worker wrote
/// garbage, and the merge's gap detection re-runs whatever it covered.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn load_shard_dir(io: &dyn StoreIo, dir: &Path) -> Result<ShardDirLoad, StoreError> {
    let mut rows = Vec::new();
    let mut audits = Vec::new();
    for path in shard_files(dir)? {
        match ShardStore::recover_with(io, &path) {
            Ok((store, audit)) => {
                rows.extend(store.rows().iter().cloned());
                audits.push((path, audit));
            }
            Err(StoreError::UnsupportedVersion { found }) => {
                audits.push((
                    path,
                    ShardLoadAudit {
                        rows_loaded: 0,
                        quarantined: vec![crate::store::QuarantinedRow {
                            line: 1,
                            raw: found,
                            defect: crate::store::RowDefect::Syntax {
                                message: "not a shard store (bad version line)".into(),
                            },
                        }],
                    },
                ));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((rows, audits))
}

/// One shard file's pre-merge audit (the `repro verify-store --shards`
/// view): CRC results from loading plus per-row fingerprint freshness
/// against the current build.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAudit {
    /// The shard file.
    pub path: PathBuf,
    /// Intact rows.
    pub rows: usize,
    /// Rows failing CRC or syntax checks.
    pub quarantined: usize,
    /// Intact rows whose seed and golden-run fingerprint match the
    /// current configuration.
    pub fresh: usize,
    /// Intact rows that would be dropped as stale at merge.
    pub stale: usize,
    /// Intact rows carrying class-range (exhaustive or stratified)
    /// annotations.
    pub exhaustive: usize,
    /// Campaigns inside this shard whose class-range annotations fail
    /// reconciliation: rows mixing run-range and class-range flavors,
    /// disagreeing on the campaign-wide population or pruned mass, class
    /// weights exceeding the campaign's live mass, or stratified rows not
    /// covering it exactly. The merge would reject these, so they count
    /// as defects.
    pub weight_defects: usize,
}

/// Audits every shard store of `dir` *read-only* (no sidecars written, no
/// rewrites): per-file CRC and fingerprint status against the current
/// build's golden runs.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn audit_shard_dir(exp: &Experiments, dir: &Path) -> Result<Vec<ShardAudit>, StoreError> {
    let mut expected: BTreeMap<Workload, Option<GoldenFingerprint>> = BTreeMap::new();
    let mut audits = Vec::new();
    for path in shard_files(dir)? {
        let text = RealIo.read_to_string(&path)?;
        let (store, load) = match ShardStore::from_csv_lossy(&text) {
            Ok(pair) => pair,
            Err(StoreError::UnsupportedVersion { .. }) => {
                audits.push(ShardAudit {
                    path,
                    rows: 0,
                    quarantined: 1,
                    fresh: 0,
                    stale: 0,
                    exhaustive: 0,
                    weight_defects: 0,
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        let mut audit = ShardAudit {
            path,
            rows: load.rows_loaded,
            quarantined: load.quarantined.len(),
            fresh: 0,
            stale: 0,
            exhaustive: 0,
            weight_defects: 0,
        };
        for row in store.rows() {
            let current = expected
                .entry(row.unit.workload)
                .or_insert_with(|| golden_fingerprint(exp.core, row.unit.workload).ok());
            let fresh = row.seed == exp.seed && current.as_ref() == Some(&row.fingerprint);
            if fresh {
                audit.fresh += 1;
            } else {
                audit.stale += 1;
            }
        }
        reconcile_exhaustive(store.rows(), &mut audit);
        audits.push(audit);
    }
    Ok(audits)
}

/// Class-range reconciliation for one shard store: within every campaign,
/// annotated rows must agree on the campaign-wide population and pruned
/// mass, never mix with run-range rows, and their per-class weights must
/// fit inside the campaign's live mass (a stratified annotation covers it
/// exactly; exhaustive ranges, possibly partial in this shard, at most).
fn reconcile_exhaustive(rows: &[ShardRow], audit: &mut ShardAudit) {
    let mut groups: BTreeMap<(HwComponent, Workload), Vec<&ShardRow>> = BTreeMap::new();
    for row in rows {
        groups
            .entry((row.unit.component, row.unit.workload))
            .or_default()
            .push(row);
    }
    for campaign in groups.values() {
        let annotated: Vec<_> = campaign
            .iter()
            .filter_map(|r| r.exhaustive.as_ref())
            .collect();
        if annotated.is_empty() {
            continue;
        }
        audit.exhaustive += annotated.len();
        let first = annotated[0];
        let agree = annotated.len() == campaign.len()
            && annotated.iter().all(|ex| {
                ex.weight_total == first.weight_total
                    && ex.pruned == first.pruned
                    && ex.stratified.is_some() == first.stratified.is_some()
            });
        let live = first.weight_total.saturating_sub(first.pruned);
        let covered = if first.stratified.is_some() {
            annotated.iter().all(|ex| ex.weighted.total() == live)
        } else {
            annotated.iter().map(|ex| ex.weighted.total()).sum::<u64>() <= live
        };
        if !agree || !covered {
            audit.weight_defects += 1;
        }
    }
}

/// Rebuilds an [`Experiments`] from the wire [`crate::protocol::ExpSpec`]
/// for one workload — the worker-side mirror of the supervisor's
/// configuration. The core configuration is the shared default; drift is
/// caught by fingerprint verification at merge.
pub fn spec_experiments(spec: &crate::protocol::ExpSpec, workload: Workload) -> Experiments {
    Experiments {
        runs: spec.runs,
        seed: spec.seed,
        threads: spec.threads,
        workloads: vec![workload],
        adaptive: spec.adaptive,
        use_snapshots: spec.use_snapshots,
        snapshot_interval: spec.snapshot_interval,
        snapshot_mem_mb: spec.snapshot_mem_mb,
        use_golden_cache: spec.use_golden_cache,
        ..Experiments::default()
    }
}

/// Shared state between a worker's control loop and its heartbeat thread.
struct Pulse {
    /// The in-flight unit: (unit id, runs-started counter).
    current: Mutex<Option<(u64, Arc<AtomicUsize>)>>,
    /// Set when the control loop exits.
    stop: AtomicBool,
}

type ArtifactKey = (Workload, bool, Option<u64>, Option<u64>);
type ArtifactCache = BTreeMap<ArtifactKey, Result<Arc<GoldenArtifacts>, CampaignError>>;

/// One compiled [`ExhaustivePlan`] per (campaign, snapshot knobs, equiv
/// spec) per worker process: the golden + liveness capture and the
/// partition are paid once, then every class-range unit of the campaign
/// reuses them.
type PlanKey = (
    HwComponent,
    Workload,
    ExhaustiveSpec,
    bool,
    Option<u64>,
    Option<u64>,
);
type PlanCache = BTreeMap<PlanKey, Result<Arc<ExhaustivePlan>, CampaignError>>;

/// Executes one assigned unit and returns the shard row to persist plus
/// the campaign's anomaly count.
fn run_unit(
    exp: &Experiments,
    unit: &UnitSpec,
    equiv: Option<&EquivSpec>,
    artifacts: &mut ArtifactCache,
    plans: &mut PlanCache,
    chaos: &Arc<WorkerChaos>,
    progress: &Arc<AtomicUsize>,
) -> Result<(ShardRow, usize), CampaignError> {
    if let Some(eq) = equiv {
        return run_equiv_unit(exp, unit, eq, artifacts, plans, chaos, progress);
    }
    let chaos = Arc::clone(chaos);
    let started = Arc::clone(progress);
    let cfg = exp
        .campaign_config(unit.component, unit.workload, unit.faults)
        .with_run_hook(move |_| {
            chaos.on_run();
            started.fetch_add(1, Ordering::Relaxed);
        });
    let campaign = Campaign::try_new(cfg)?;
    let shared = if exp.use_golden_cache {
        let key = (
            unit.workload,
            exp.use_snapshots,
            exp.snapshot_interval,
            exp.snapshot_mem_mb,
        );
        Some(
            artifacts
                .entry(key)
                .or_insert_with(|| campaign.build_artifacts().map(Arc::new))
                .clone()?,
        )
    } else {
        None
    };
    let result = campaign.try_run_range_with_artifacts(unit.range(), shared.as_deref())?;
    let fingerprint = match &shared {
        Some(a) => exp.artifact_fingerprint(a),
        None => golden_fingerprint(exp.core, unit.workload)?,
    };
    // An adaptive campaign may stop early; the row covers exactly the
    // runs that were classified.
    let executed = result.counts.total() as usize;
    let row = ShardRow {
        unit: UnitSpec {
            end: unit.start + executed,
            ..*unit
        },
        seed: exp.seed,
        counts: result.counts,
        fault_free_cycles: result.fault_free_cycles,
        fault_free_instructions: result.fault_free_instructions,
        fingerprint,
        exhaustive: None,
    };
    Ok((row, result.anomalies.len()))
}

/// Executes one equivalence-class unit: a class-index range of an
/// exhaustive campaign, or (when the spec carries a stratified sampler)
/// the whole campaign as one `[0, 1)` unit.
///
/// The compiled [`ExhaustivePlan`] — golden run, liveness capture,
/// partition — is cached per worker process, so every unit of a campaign
/// after the first pays only its own class simulations. Golden artifacts
/// are cached unconditionally (the row needs `instructions()` and the
/// snapshot store drives locality scheduling).
fn run_equiv_unit(
    exp: &Experiments,
    unit: &UnitSpec,
    eq: &EquivSpec,
    artifacts: &mut ArtifactCache,
    plans: &mut PlanCache,
    chaos: &Arc<WorkerChaos>,
    progress: &Arc<AtomicUsize>,
) -> Result<(ShardRow, usize), CampaignError> {
    let plan_key = (
        unit.component,
        unit.workload,
        eq.exhaustive,
        exp.use_snapshots,
        exp.snapshot_interval,
        exp.snapshot_mem_mb,
    );
    let plan = plans
        .entry(plan_key)
        .or_insert_with(|| {
            let chaos = Arc::clone(chaos);
            let started = Arc::clone(progress);
            let cfg = exp
                .equiv_config(unit.component, unit.workload)
                .with_run_hook(move |_| {
                    chaos.on_run();
                    started.fetch_add(1, Ordering::Relaxed);
                });
            ExhaustivePlan::try_new(cfg, eq.exhaustive).map(Arc::new)
        })
        .clone()?;
    let artifact_key = (
        unit.workload,
        exp.use_snapshots,
        exp.snapshot_interval,
        exp.snapshot_mem_mb,
    );
    let shared = artifacts
        .entry(artifact_key)
        .or_insert_with(|| {
            Campaign::try_new(exp.equiv_config(unit.component, unit.workload))
                .and_then(|c| c.build_artifacts())
                .map(Arc::new)
        })
        .clone()?;
    let cov = plan.coverage();
    let fingerprint = exp.artifact_fingerprint(&shared);
    let row = match eq.stratified {
        None => {
            let outcomes = plan.run_class_range(unit.range(), Some(&shared))?;
            let mut counts = ClassCounts::new();
            let mut weighted = ClassCounts::new();
            for o in &outcomes {
                counts.record(o.effect);
                weighted.record_weighted(o.effect, o.weight);
            }
            ShardRow {
                unit: *unit,
                seed: exp.seed,
                counts,
                fault_free_cycles: plan.partition().total_cycles(),
                fault_free_instructions: shared.instructions(),
                fingerprint,
                exhaustive: Some(ShardExhaustive {
                    weighted,
                    weight_total: cov.population,
                    pruned: cov.dead_weight,
                    stratified: None,
                }),
            }
        }
        Some(spec) => {
            let r = plan.run_stratified(spec, Some(&shared))?;
            // The dead stratum is re-credited at merge from `pruned`;
            // the row's weighted counts carry only the scaled live mass.
            let mut weighted = r.campaign.counts;
            weighted.masked -= cov.dead_weight;
            let mut counts = ClassCounts::new();
            counts.record_weighted(mbu_gefin::classify::FaultEffect::Masked, 1);
            ShardRow {
                unit: UnitSpec {
                    start: 0,
                    end: 1,
                    ..*unit
                },
                seed: exp.seed,
                counts,
                fault_free_cycles: r.campaign.fault_free_cycles,
                fault_free_instructions: r.campaign.fault_free_instructions,
                fingerprint,
                exhaustive: Some(ShardExhaustive {
                    weighted,
                    weight_total: cov.population,
                    pruned: cov.dead_weight,
                    stratified: Some(ShardStratified {
                        margin_bits: r.campaign.achieved_margin.unwrap_or(0.0).to_bits(),
                        simulated: r.simulated,
                    }),
                }),
            }
        }
    };
    Ok((row, 0))
}

/// The worker process's control loop: announce, then execute assignments
/// until shutdown (or the supervisor disappears), persisting every
/// completed unit to `shard_path` *before* reporting it done — the
/// durability point the crash-consistent merge relies on.
///
/// `heartbeat` is the liveness-report interval. Chaos faults
/// ([`WorkerChaos::from_env`]) fire inside this loop when armed.
///
/// `worker_id` is the stable session-resume identity: when set, it rides
/// in the `Hello`, and any rows already in `shard_path` are replayed as
/// `Recovered` right after — work that was persisted durably but possibly
/// never acknowledged before a crash or dropped connection. A supervisor
/// that requeued those units retires them instead of re-running; anything
/// stale is dropped at merge, so the replay is always safe.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on a malformed instruction stream or a
/// failed shard write ([`ProtocolError::Io`]). A cleanly closed control
/// stream is a normal exit, not an error — an orphaned worker dies
/// quietly.
pub fn run_worker<R, W>(
    mut input: R,
    output: W,
    shard_path: &Path,
    heartbeat: Duration,
    worker_id: Option<String>,
) -> Result<(), ProtocolError>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let chaos = Arc::new(WorkerChaos::from_env());
    let out = Arc::new(Mutex::new(output));
    let send = |msg: &ToSupervisor| -> std::io::Result<()> {
        let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *w, &msg.to_json())
    };
    send(&ToSupervisor::Hello {
        pid: std::process::id(),
        worker_id: worker_id.clone(),
    })?;
    if worker_id.is_some() && shard_path.exists() {
        if let Ok((store, _)) = ShardStore::recover_with(&RealIo, shard_path) {
            for row in store.rows() {
                send(&ToSupervisor::Recovered { row: row.clone() })?;
            }
        }
    }
    let pulse = Arc::new(Pulse {
        current: Mutex::new(None),
        stop: AtomicBool::new(false),
    });
    let hb_handle = {
        let pulse = Arc::clone(&pulse);
        let out = Arc::clone(&out);
        let chaos = Arc::clone(&chaos);
        std::thread::spawn(move || {
            while !pulse.stop.load(Ordering::SeqCst) {
                std::thread::sleep(heartbeat);
                if chaos.heartbeat_muted() {
                    continue;
                }
                let snapshot = pulse
                    .current
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone();
                if let Some((unit_id, progress)) = snapshot {
                    let msg = ToSupervisor::Heartbeat {
                        unit_id,
                        done: progress.load(Ordering::Relaxed),
                    };
                    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
                    // A send failure means the supervisor is gone; the
                    // control loop will notice on its next read.
                    let _ = write_frame(&mut *w, &msg.to_json());
                }
            }
        })
    };
    let mut artifacts: ArtifactCache = BTreeMap::new();
    let mut plans: PlanCache = BTreeMap::new();
    // One worker-lifetime progress counter, reset per assignment: cached
    // exhaustive plans bake the counter into their run hook, so it must
    // outlive any single unit.
    let progress = Arc::new(AtomicUsize::new(0));
    let mut garbage_sent = false;
    let outcome = loop {
        let msg = match read_frame(&mut input) {
            Ok(v) => match ToWorker::from_json(&v) {
                Ok(msg) => msg,
                Err(e) => break Err(e),
            },
            Err(ProtocolError::Eof) => break Ok(()),
            Err(e) => break Err(e),
        };
        match msg {
            ToWorker::Shutdown => break Ok(()),
            ToWorker::Assign { unit_id, unit, exp } => {
                if chaos.garbage_frames() && !garbage_sent {
                    garbage_sent = true;
                    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
                    let _ = w.write_all(b"\x00!! chaos: garbage frame, not a length line !!\n");
                    let _ = w.flush();
                }
                let e = spec_experiments(&exp, unit.workload);
                progress.store(0, Ordering::Relaxed);
                *pulse.current.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some((unit_id, Arc::clone(&progress)));
                let outcome = run_unit(
                    &e,
                    &unit,
                    exp.equiv.as_ref(),
                    &mut artifacts,
                    &mut plans,
                    &chaos,
                    &progress,
                );
                *pulse.current.lock().unwrap_or_else(|e| e.into_inner()) = None;
                match outcome {
                    Ok((row, anomalies)) => {
                        // Durability before acknowledgement: the row is in
                        // the shard file (synced) before `done` is sent.
                        if let Err(e) = ShardStore::append_row_with(&RealIo, shard_path, &row) {
                            break Err(match e {
                                StoreError::Io(io) => ProtocolError::Io(io),
                                other => {
                                    ProtocolError::Frame(format!("shard append failed: {other}"))
                                }
                            });
                        }
                        // The durable-but-unacknowledged window: the row is
                        // on disk, the supervisor has not heard about it.
                        chaos.on_unit_persisted();
                        if send(&ToSupervisor::Done {
                            unit_id,
                            row,
                            anomalies,
                        })
                        .is_err()
                        {
                            break Ok(());
                        }
                    }
                    Err(err) => {
                        if send(&ToSupervisor::Fail {
                            unit_id,
                            error: err.to_string(),
                        })
                        .is_err()
                        {
                            break Ok(());
                        }
                    }
                }
            }
        }
    };
    pulse.stop.store(true, Ordering::SeqCst);
    let _ = hb_handle.join();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(runs: usize) -> Experiments {
        Experiments {
            runs,
            workloads: vec![Workload::Sha, Workload::Crc32],
            ..Experiments::default()
        }
    }

    #[test]
    fn planner_covers_every_campaign_exactly() {
        let e = exp(100);
        let components = [HwComponent::L1D, HwComponent::RegFile];
        let units = plan_units(&e, &components, 30);
        // 2 components × 2 workloads × 3 cardinalities × ceil(100/30) units.
        assert_eq!(units.len(), 2 * 2 * 3 * 4);
        let mut by_key: BTreeMap<Key, Vec<&UnitSpec>> = BTreeMap::new();
        for u in &units {
            by_key.entry(u.campaign_key()).or_default().push(u);
        }
        assert_eq!(by_key.len(), 12);
        for units in by_key.values() {
            let mut covered = 0;
            for u in units {
                assert_eq!(u.start, covered, "exact adjacency, no gaps");
                covered = u.end;
            }
            assert_eq!(covered, 100, "full coverage");
        }
    }

    #[test]
    fn planner_never_splits_adaptive_campaigns() {
        let mut e = exp(100);
        e.adaptive = Some(mbu_gefin::campaign::AdaptiveSpec::paper());
        let units = plan_units(&e, &[HwComponent::L1D], 10);
        assert_eq!(units.len(), 2 * 3, "one whole unit per campaign");
        assert!(units.iter().all(|u| u.start == 0 && u.end == 100));
    }

    #[test]
    fn split_range_handles_edges() {
        let key = (HwComponent::L2, Workload::Sha, 2);
        assert_eq!(split_range(key, 5, 5, 10), vec![]);
        let whole = split_range(key, 0, 7, 0);
        assert_eq!(whole.len(), 1);
        assert_eq!((whole[0].start, whole[0].end), (0, 7));
        let tail = split_range(key, 95, 100, 30);
        assert_eq!(tail.len(), 1);
        assert_eq!((tail[0].start, tail[0].end), (95, 100));
    }

    fn row(key: Key, start: usize, end: usize, fp: u64) -> ShardRow {
        ShardRow {
            unit: UnitSpec {
                component: key.0,
                workload: key.1,
                faults: key.2,
                start,
                end,
            },
            seed: Experiments::default().seed,
            counts: ClassCounts {
                masked: (end - start) as u64,
                ..ClassCounts::new()
            },
            fault_free_cycles: 5000,
            fault_free_instructions: 2500,
            fingerprint: GoldenFingerprint(fp),
            exhaustive: None,
        }
    }

    fn expected_for(e: &Experiments, fp: u64) -> BTreeMap<Workload, GoldenFingerprint> {
        e.workloads
            .iter()
            .map(|&w| (w, GoldenFingerprint(fp)))
            .collect()
    }

    #[test]
    fn shard_audit_reconciles_class_range_annotations() {
        fn ex_row(
            key: Key,
            start: usize,
            end: usize,
            weighted: u64,
            total: u64,
            pruned: u64,
            stratified: Option<ShardStratified>,
        ) -> ShardRow {
            let mut r = row(key, start, end, 7);
            r.exhaustive = Some(ShardExhaustive {
                weighted: ClassCounts {
                    masked: weighted,
                    ..ClassCounts::new()
                },
                weight_total: total,
                pruned,
                stratified,
            });
            r
        }
        fn defects(rows: &[ShardRow]) -> (usize, usize) {
            let mut audit = ShardAudit {
                path: PathBuf::new(),
                rows: rows.len(),
                quarantined: 0,
                fresh: 0,
                stale: 0,
                exhaustive: 0,
                weight_defects: 0,
            };
            reconcile_exhaustive(rows, &mut audit);
            (audit.exhaustive, audit.weight_defects)
        }
        let key = (HwComponent::ITlb, Workload::Sha, 1);
        // Two class ranges inside the live mass (150 total, 30 pruned).
        let clean = [
            ex_row(key, 0, 5, 60, 150, 30, None),
            ex_row(key, 5, 9, 40, 150, 30, None),
        ];
        assert_eq!(defects(&clean), (2, 0));
        // Run-range rows alone are not the audit's business.
        assert_eq!(defects(&[row(key, 0, 10, 7)]), (0, 0));
        // Rows of one campaign disagreeing on the pruned mass.
        let disagree = [
            ex_row(key, 0, 5, 60, 150, 30, None),
            ex_row(key, 5, 9, 40, 150, 31, None),
        ];
        assert_eq!(defects(&disagree), (2, 1));
        // Class weights exceeding the campaign's live mass.
        let over = [
            ex_row(key, 0, 5, 100, 150, 30, None),
            ex_row(key, 5, 9, 100, 150, 30, None),
        ];
        assert_eq!(defects(&over), (2, 1));
        // Run-range and class-range flavors mixed in one campaign.
        let mixed = [row(key, 0, 5, 7), ex_row(key, 5, 9, 40, 150, 30, None)];
        assert_eq!(defects(&mixed), (1, 1));
        // A stratified annotation covers the live mass exactly — or not.
        let strat = Some(ShardStratified {
            margin_bits: 0.05_f64.to_bits(),
            simulated: 200,
        });
        assert_eq!(defects(&[ex_row(key, 0, 1, 120, 150, 30, strat)]), (1, 0));
        assert_eq!(defects(&[ex_row(key, 0, 1, 90, 150, 30, strat)]), (1, 1));
        // Independent campaigns reconcile independently.
        let other = (HwComponent::DTlb, Workload::Crc32, 1);
        let two = [
            ex_row(key, 0, 9, 120, 150, 30, None),
            ex_row(other, 0, 4, 999, 150, 30, None),
        ];
        assert_eq!(defects(&two), (2, 1));
    }

    #[test]
    fn merge_splices_exact_cover_and_reports_gaps() {
        let e = exp(100);
        let key = (HwComponent::L1D, Workload::Sha, 1);
        let expected = expected_for(&e, 7);
        // Complete cover out of order, with a duplicate and an overlap.
        let rows = vec![
            row(key, 50, 100, 7),
            row(key, 0, 50, 7),
            row(key, 0, 50, 7),  // duplicate (dedup'd structurally)
            row(key, 25, 75, 7), // misaligned overlap
            row(key, 10, 20, 7), // fully covered later
        ];
        let (store, report) = merge_rows(&e, &[key], &rows, &expected);
        assert_eq!(report.campaigns_merged, 1);
        assert!(report.gaps.is_empty());
        let r = store.get(key.0, key.1, key.2).expect("merged");
        assert_eq!(r.counts.total(), 100);
        assert!(r.achieved_margin.is_some());
        // Now a gap: only the tail is present.
        let (store2, report2) = merge_rows(&e, &[key], &[row(key, 60, 100, 7)], &expected);
        assert_eq!(store2.len(), 0);
        assert_eq!(report2.gaps.len(), 1);
        assert_eq!((report2.gaps[0].start, report2.gaps[0].end), (0, 60));
    }

    #[test]
    fn merge_drops_stale_rows_as_rerun_not_merged() {
        let e = exp(100);
        let key = (HwComponent::L1D, Workload::Sha, 1);
        let expected = expected_for(&e, 7);
        // Stale fingerprint on the head; fresh tail.
        let rows = vec![row(key, 0, 50, 999), row(key, 50, 100, 7)];
        let (store, report) = merge_rows(&e, &[key], &rows, &expected);
        assert_eq!(store.len(), 0, "stale row must not merge");
        assert_eq!(report.stale_dropped, 1);
        assert_eq!(report.gaps.len(), 1);
        assert_eq!(
            (report.gaps[0].start, report.gaps[0].end),
            (0, 50),
            "exactly the stale range re-runs"
        );
        // A wrong-seed row is equally stale.
        let mut alien = row(key, 0, 100, 7);
        alien.seed ^= 1;
        let (store, report) = merge_rows(&e, &[key], &[alien], &expected);
        assert_eq!(store.len(), 0);
        assert_eq!(report.stale_dropped, 1);
    }

    #[test]
    fn merge_conflicting_rows_leave_a_gap() {
        let e = exp(100);
        let key = (HwComponent::L1D, Workload::Sha, 1);
        let expected = expected_for(&e, 7);
        let mut twisted = row(key, 0, 50, 7);
        twisted.counts.masked -= 1;
        twisted.counts.sdc += 1;
        let rows = vec![row(key, 0, 50, 7), twisted, row(key, 50, 100, 7)];
        let (store, report) = merge_rows(&e, &[key], &rows, &expected);
        assert_eq!(store.len(), 0, "conflicting evidence must not merge");
        assert!(report.conflicts_dropped >= 1);
        assert_eq!(report.gaps.len(), 1);
        assert_eq!((report.gaps[0].start, report.gaps[0].end), (0, 50));
    }

    #[test]
    fn merge_skips_unplannable_workloads() {
        let e = exp(100);
        let key = (HwComponent::L1D, Workload::Sha, 1);
        // No expected fingerprint for Sha at all.
        let expected = BTreeMap::new();
        let (store, report) = merge_rows(&e, &[key], &[row(key, 0, 100, 7)], &expected);
        assert_eq!(store.len(), 0);
        assert!(report.gaps.is_empty(), "unplannable is not a gap");
        assert_eq!(report.stale_dropped, 1);
    }
}
