//! The HTTP service adapter: plugs the distributed sweep fabric into the
//! generic `mbu-serve` job manager.
//!
//! [`SweepBackend`] validates sweep submissions against the same typed
//! [`ConfigError`] vocabulary as the `MBU_*` environment knobs, executes
//! each job as a supervised fabric sweep in its own shard directory (so
//! concurrent jobs never share state and a daemon restart resumes each
//! job from its shards), streams [`FabricEvent`]s into the job's live
//! event log, and serves merged results — including the raw checkpoint
//! CSV, which is byte-identical to a single-process `repro sweep`.
//!
//! Submissions carry an optional `mode` field: `"measure"` (default)
//! runs the paper's statistical campaigns sharded by run range;
//! `"exhaustive"` runs the provable-coverage equivalence-class sweep
//! sharded by live-class range (small structures exhaustively, the big
//! arrays stratified), merged bit-identically to a single-process
//! `repro exhaustive`. Exhaustive submissions are single-bit by
//! construction, so a `cardinality` above 1 is a typed 400.

use crate::experiments::{env_value, parse_env, ConfigError, Experiments};
use crate::store::component_slug;
use crate::supervisor::{FabricConfig, FabricEvent, Supervisor, SweepOptions, WorkerPool};
use crate::{ResultStore, EXHAUSTIVE_COMPONENTS, STRATIFIED_COMPONENTS};
use mbu_cpu::HwComponent;
use mbu_gefin::json::Json;
use mbu_serve::{
    ApiError, Artifact, JobBackend, JobContext, JobManager, JobOutcome, ServeOptions, Submission,
};
use mbu_workloads::Workload;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service-level knobs, environment-driven like every other `MBU_*`
/// setting and rejected through the same typed [`ConfigError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Sweeps running concurrently (`MBU_HTTP_MAX_JOBS`, default 2).
    pub max_jobs: usize,
    /// Accepted-but-waiting submissions before `429` (`MBU_HTTP_QUEUE`,
    /// default 8).
    pub queue: usize,
    /// Simultaneous HTTP connections before load-shedding 503s
    /// (`MBU_HTTP_CONN_MAX`, default 64, must be ≥ 1).
    pub conn_max: usize,
    /// Per-connection read/write deadline (`MBU_HTTP_TIMEOUT_SECS`,
    /// default 30 s) — the slow-loris budget.
    pub io_budget: Duration,
    /// How long a SIGTERM'd daemon waits for in-flight sweeps to park as
    /// drained before giving up (`MBU_DRAIN_TIMEOUT_SECS`, default 60 s).
    pub drain_timeout: Duration,
    /// Shared snapshot-memory budget in MiB, divided across concurrently
    /// running jobs (`MBU_MEM_BUDGET_MB`, default none = each job keeps
    /// its own `MBU_SNAPSHOT_MEM_MB`).
    pub mem_budget_mb: Option<u64>,
    /// Terminal jobs whose `shards/` directories are retained; older ones
    /// are garbage-collected (`MBU_RETAIN_JOBS`, default none = keep all).
    /// Merged results and job records are never GC'd — only the shard
    /// files already folded into `measured.csv`.
    pub retain_jobs: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_jobs: 2,
            queue: 8,
            conn_max: 64,
            io_budget: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(60),
            mem_budget_mb: None,
            retain_jobs: None,
        }
    }
}

impl ServeConfig {
    /// Reads `MBU_HTTP_MAX_JOBS`, `MBU_HTTP_QUEUE`, `MBU_HTTP_CONN_MAX`,
    /// `MBU_HTTP_TIMEOUT_SECS`, `MBU_DRAIN_TIMEOUT_SECS`,
    /// `MBU_MEM_BUDGET_MB` and `MBU_RETAIN_JOBS`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the defective variable.
    pub fn from_env() -> Result<Self, ConfigError> {
        let mut cfg = ServeConfig::default();
        if let Some(v) = env_value("MBU_HTTP_MAX_JOBS")? {
            cfg.max_jobs = parse_env("MBU_HTTP_MAX_JOBS", &v, "must be a positive integer")?;
            if cfg.max_jobs == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_HTTP_MAX_JOBS",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_HTTP_QUEUE")? {
            cfg.queue = parse_env("MBU_HTTP_QUEUE", &v, "must be an integer")?;
        }
        if let Some(v) = env_value("MBU_HTTP_CONN_MAX")? {
            cfg.conn_max = parse_env("MBU_HTTP_CONN_MAX", &v, "must be a positive integer")?;
            if cfg.conn_max == 0 {
                return Err(ConfigError::Invalid {
                    var: "MBU_HTTP_CONN_MAX",
                    value: v,
                    expected: "must be a positive integer",
                });
            }
        }
        if let Some(v) = env_value("MBU_HTTP_TIMEOUT_SECS")? {
            cfg.io_budget = Duration::from_secs(parse_env(
                "MBU_HTTP_TIMEOUT_SECS",
                &v,
                "must be an integer",
            )?);
        }
        if let Some(v) = env_value("MBU_DRAIN_TIMEOUT_SECS")? {
            cfg.drain_timeout = Duration::from_secs(parse_env(
                "MBU_DRAIN_TIMEOUT_SECS",
                &v,
                "must be an integer",
            )?);
        }
        if let Some(v) = env_value("MBU_MEM_BUDGET_MB")? {
            cfg.mem_budget_mb = Some(parse_env(
                "MBU_MEM_BUDGET_MB",
                &v,
                "must be an integer (MiB)",
            )?);
        }
        if let Some(v) = env_value("MBU_RETAIN_JOBS")? {
            cfg.retain_jobs = Some(parse_env("MBU_RETAIN_JOBS", &v, "must be an integer")?);
        }
        Ok(cfg)
    }
}

/// The figure-number ↔ component mapping of the paper (Fig. 1–6).
fn figure_component(n: usize) -> Option<HwComponent> {
    HwComponent::ALL.get(n.checked_sub(1)?).copied()
}

/// Decrements the active-job counter even when `execute` panics.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The fabric-backed [`JobBackend`]: each job is one supervised sweep.
pub struct SweepBackend {
    /// Environment-derived defaults a submission overrides field by field.
    pub base: Experiments,
    /// Fabric knobs; `workers` is the *total* pool, divided fairly across
    /// concurrently running jobs.
    pub fabric: FabricConfig,
    /// Shared snapshot-memory budget in MiB; divided across running jobs,
    /// never raising a job's own tighter `MBU_SNAPSHOT_MEM_MB`.
    pub mem_budget_mb: Option<u64>,
    active: AtomicUsize,
}

impl SweepBackend {
    /// A backend over the given defaults.
    pub fn new(base: Experiments, fabric: FabricConfig) -> SweepBackend {
        SweepBackend {
            base,
            fabric,
            mem_budget_mb: None,
            active: AtomicUsize::new(0),
        }
    }

    /// Sets the shared snapshot-memory budget (see [`ServeConfig`]).
    #[must_use]
    pub fn with_mem_budget(mut self, budget: Option<u64>) -> SweepBackend {
        self.mem_budget_mb = budget;
        self
    }

    /// Rebuilds the experiment configuration from a canonical spec. The
    /// final `bool` is true for exhaustive-mode jobs; specs persisted by
    /// daemons that predate the `mode` field parse as measure.
    fn exp_from_spec(
        &self,
        spec: &Json,
    ) -> Result<(Experiments, Vec<HwComponent>, bool), ApiError> {
        let mut exp = self.base.clone();
        let bad = |what: &str| ApiError::internal(format!("corrupt stored spec: {what}"));
        exp.runs = spec
            .get("runs")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("runs"))?;
        exp.seed = spec
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("seed"))?;
        exp.max_cardinality = spec
            .get("cardinality")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("cardinality"))?;
        exp.use_snapshots = spec
            .get("snapshots")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("snapshots"))?;
        exp.workloads = spec
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("workloads"))?
            .iter()
            .map(|w| {
                w.as_str()
                    .and_then(|s| s.parse::<Workload>().ok())
                    .ok_or_else(|| bad("workloads"))
            })
            .collect::<Result<_, _>>()?;
        let components = spec
            .get("components")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("components"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .and_then(|s| s.parse::<HwComponent>().ok())
                    .ok_or_else(|| bad("components"))
            })
            .collect::<Result<_, _>>()?;
        let exhaustive = match spec.get("mode") {
            None => false,
            Some(v) => match v.as_str() {
                Some("measure") => false,
                Some("exhaustive") => true,
                _ => return Err(bad("mode")),
            },
        };
        Ok((exp, components, exhaustive))
    }
}

fn summary_json(store_len: usize, report: &crate::supervisor::FabricReport) -> Json {
    Json::Obj(vec![
        ("campaigns".into(), Json::usize(store_len)),
        ("units_planned".into(), Json::usize(report.units_planned)),
        (
            "units_completed".into(),
            Json::usize(report.units_completed),
        ),
        (
            "units_recovered".into(),
            Json::usize(report.units_recovered),
        ),
        ("retries".into(), Json::usize(report.retries)),
        ("steals".into(), Json::usize(report.steals)),
        (
            "workers_spawned".into(),
            Json::usize(report.workers_spawned),
        ),
        ("workers_lost".into(), Json::usize(report.workers_lost)),
        (
            "workers_rejoined".into(),
            Json::usize(report.workers_rejoined),
        ),
        ("quarantined".into(), Json::usize(report.quarantined.len())),
        ("gaps".into(), Json::usize(report.merge.gaps.len())),
        ("clean".into(), Json::Bool(report.is_clean())),
    ])
}

impl JobBackend for SweepBackend {
    fn validate(&self, body: &Json) -> Result<Submission, ApiError> {
        let Json::Obj(fields) = body else {
            return Err(ApiError::bad_request("submission must be a JSON object"));
        };
        const KNOWN: [&str; 8] = [
            "title",
            "components",
            "workloads",
            "runs",
            "seed",
            "cardinality",
            "snapshots",
            "mode",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(ApiError::bad_request(format!(
                    "unknown field `{key}` (expected one of: {})",
                    KNOWN.join(", ")
                )));
            }
        }
        let mode = match body.get("mode") {
            None => "measure",
            Some(v) => match v.as_str() {
                Some(m @ ("measure" | "exhaustive")) => m,
                _ => {
                    return Err(ApiError::bad_request(
                        "mode must be \"measure\" or \"exhaustive\"",
                    ))
                }
            },
        };
        let components: Vec<HwComponent> = match body.get("components") {
            // Exhaustive mode defaults to the provably-coverable small
            // structures; "all" or an explicit list can add the stratified
            // big arrays.
            None if mode == "exhaustive" => EXHAUSTIVE_COMPONENTS.to_vec(),
            None => HwComponent::ALL.to_vec(),
            Some(Json::Str(s)) if s == "all" => HwComponent::ALL.to_vec(),
            Some(Json::Arr(items)) if !items.is_empty() => items
                .iter()
                .map(|c| {
                    c.as_str()
                        .ok_or_else(|| ApiError::bad_request("components must be strings"))
                        .and_then(|s| {
                            s.parse::<HwComponent>()
                                .map_err(|e| ApiError::bad_request(e.to_string()))
                        })
                })
                .collect::<Result<_, _>>()?,
            Some(_) => {
                return Err(ApiError::bad_request(
                    "components must be \"all\" or a non-empty array of component slugs",
                ))
            }
        };
        let workloads: Vec<Workload> = match body.get("workloads") {
            None => self.base.workloads.clone(),
            Some(Json::Arr(items)) if !items.is_empty() => items
                .iter()
                .map(|w| {
                    w.as_str()
                        .ok_or_else(|| ApiError::bad_request("workloads must be strings"))
                        .and_then(|s| {
                            s.parse::<Workload>().map_err(|_| {
                                ApiError::bad_request(format!("unknown workload `{s}`"))
                            })
                        })
                })
                .collect::<Result<_, _>>()?,
            Some(_) => {
                return Err(ApiError::bad_request(
                    "workloads must be a non-empty array of workload names",
                ))
            }
        };
        let runs = match body.get("runs") {
            None => self.base.runs,
            Some(v) => match v.as_usize() {
                Some(n) if n >= 1 => n,
                _ => return Err(ApiError::bad_request("runs must be a positive integer")),
            },
        };
        let seed = match body.get("seed") {
            None => self.base.seed,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("seed must be a u64"))?,
        };
        let cardinality = match body.get("cardinality") {
            // Equivalence classes are single-bit by construction, so an
            // exhaustive job never inherits a multi-bit default.
            None if mode == "exhaustive" => 1,
            None => self.base.max_cardinality,
            Some(v) => match v.as_usize() {
                Some(1) => 1,
                Some(n) if (2..=8).contains(&n) => {
                    if mode == "exhaustive" {
                        return Err(ApiError::bad_request(
                            "cardinality must be 1 in exhaustive mode \
                             (equivalence classes cover single-bit faults)",
                        ));
                    }
                    n
                }
                _ => {
                    return Err(ApiError::bad_request(
                        "cardinality must be an integer in 1..=8",
                    ))
                }
            },
        };
        let snapshots = match body.get("snapshots") {
            None => self.base.use_snapshots,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ApiError::bad_request("snapshots must be a boolean"))?,
        };
        let title = match body.get("title") {
            None => format!(
                "{} component(s) x {} workload(s) x {runs} runs",
                components.len(),
                workloads.len()
            ),
            Some(v) => v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("title must be a string"))?
                .to_string(),
        };
        // The canonical spec: every knob resolved, so execution after a
        // daemon restart (different environment) reproduces exactly what
        // was validated.
        let spec = Json::Obj(vec![
            (
                "components".into(),
                Json::Arr(
                    components
                        .iter()
                        .map(|&c| Json::str(component_slug(c)))
                        .collect(),
                ),
            ),
            (
                "workloads".into(),
                Json::Arr(workloads.iter().map(|w| Json::str(w.name())).collect()),
            ),
            ("runs".into(), Json::usize(runs)),
            ("seed".into(), Json::u64(seed)),
            ("cardinality".into(), Json::usize(cardinality)),
            ("snapshots".into(), Json::Bool(snapshots)),
            ("mode".into(), Json::str(mode)),
        ]);
        Ok(Submission { title, spec })
    }

    fn execute(&self, ctx: &JobContext) -> JobOutcome {
        let (mut exp, components, exhaustive) = match self.exp_from_spec(&ctx.spec) {
            Ok(parsed) => parsed,
            Err(e) => return JobOutcome::Failed(e.message),
        };
        // Fair sharing: the configured worker pool is divided across
        // whatever is running right now.
        let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        let _guard = ActiveGuard(&self.active);
        let mut fabric = self.fabric.clone();
        fabric.workers = (self.fabric.workers / active).max(1);
        // Shared memory budget: each running job gets an equal share, and
        // a job's own tighter MBU_SNAPSHOT_MEM_MB is never raised.
        if let Some(budget) = self.mem_budget_mb {
            let share = (budget / active as u64).max(1);
            exp.snapshot_mem_mb = Some(exp.snapshot_mem_mb.map_or(share, |m| m.min(share)));
        }
        let shard_dir = ctx.dir.join("shards");
        let out_csv = ctx.dir.join("measured.csv");
        let events_ctx = ctx.clone();
        // The supervisor only understands one stop signal; drain and
        // cancel both pull it. A watcher thread folds the two job-level
        // conditions into the fabric's flag, and the outcome below
        // distinguishes them again.
        let stop = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));
        let watcher = {
            let stop = Arc::clone(&stop);
            let finished = Arc::clone(&finished);
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                while !finished.load(Ordering::SeqCst) {
                    if ctx.cancelled() || ctx.draining() {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
        };
        let opts = SweepOptions {
            on_event: Some(Box::new(move |ev: &FabricEvent| {
                events_ctx.emit(ev.kind(), ev.to_json());
                if let FabricEvent::UnitDone {
                    completed, planned, ..
                }
                | FabricEvent::UnitRecovered {
                    completed, planned, ..
                } = ev
                {
                    events_ctx.set_progress(*completed, *planned);
                }
            })),
            cancel: Some(Arc::clone(&stop)),
        };
        let result = if exhaustive {
            // Class-range dispatch: exhaustive campaigns on the small
            // structures, stratified on the big arrays. A job runs in one
            // mode for its whole life, so its private shard dir never
            // mixes run-range and class-range flavors.
            let ex: Vec<HwComponent> = components
                .iter()
                .copied()
                .filter(|c| EXHAUSTIVE_COMPONENTS.contains(c))
                .collect();
            let strat: Vec<HwComponent> = components
                .iter()
                .copied()
                .filter(|c| STRATIFIED_COMPONENTS.contains(c))
                .collect();
            Supervisor::run_equiv(
                &exp,
                &ex,
                &strat,
                &fabric,
                &shard_dir,
                &out_csv,
                WorkerPool::Spawn,
                opts,
            )
        } else {
            Supervisor::run_with(
                &exp,
                &components,
                &fabric,
                &shard_dir,
                &out_csv,
                WorkerPool::Spawn,
                opts,
            )
        };
        finished.store(true, Ordering::SeqCst);
        let _ = watcher.join();
        match result {
            Ok((store, report)) => {
                let summary = summary_json(store.len(), &report);
                if report.cancelled {
                    if ctx.draining() && !ctx.cancelled() {
                        // The daemon is shutting down, not the user giving
                        // up: every in-flight unit's row is durable, so the
                        // job parks for the restart to resume.
                        JobOutcome::Drained
                    } else {
                        JobOutcome::Cancelled(summary)
                    }
                } else {
                    JobOutcome::Done(summary)
                }
            }
            Err(e) => JobOutcome::Failed(e.to_string()),
        }
    }

    fn artifact(
        &self,
        ctx: &JobContext,
        tail: &[&str],
        query: &[(String, String)],
    ) -> Result<Artifact, ApiError> {
        let out_csv = ctx.dir.join("measured.csv");
        match tail {
            // The raw merged checkpoint, byte-identical to a
            // single-process `repro sweep` over the same spec.
            ["store"] => match std::fs::read(&out_csv) {
                Ok(body) => Ok(Artifact {
                    content_type: "text/csv".into(),
                    body,
                }),
                Err(_) => Err(ApiError::not_found(
                    "no merged store (the job may have failed before its merge)",
                )),
            },
            ["results"] => {
                let (exp, components, _) = self.exp_from_spec(&ctx.spec)?;
                let store = load_results(&out_csv)?;
                let figures = components
                    .iter()
                    .map(|&c| exp.figure_table(c, &store).to_json())
                    .collect();
                let body = Json::Obj(vec![
                    ("campaigns".into(), Json::usize(store.len())),
                    ("figures".into(), Json::Arr(figures)),
                ]);
                Ok(Artifact {
                    content_type: "application/json".into(),
                    body: body.encode().into_bytes(),
                })
            }
            ["figures", n] => {
                let component = n
                    .parse::<usize>()
                    .ok()
                    .and_then(figure_component)
                    .ok_or_else(|| {
                        ApiError::not_found(format!("no figure `{n}` (figures are 1..=6)"))
                    })?;
                let (exp, _, _) = self.exp_from_spec(&ctx.spec)?;
                let store = load_results(&out_csv)?;
                let table = exp.figure_table(component, &store);
                let csv = query.iter().any(|(k, v)| k == "format" && v == "csv");
                Ok(if csv {
                    Artifact {
                        content_type: "text/csv".into(),
                        body: table.to_csv().into_bytes(),
                    }
                } else {
                    Artifact {
                        content_type: "application/json".into(),
                        body: table.to_json().encode().into_bytes(),
                    }
                })
            }
            _ => Err(ApiError::not_found(format!(
                "no artifact `{}` (expected store, results, or figures/N)",
                tail.join("/")
            ))),
        }
    }
}

fn load_results(out_csv: &Path) -> Result<ResultStore, ApiError> {
    if !out_csv.exists() {
        return Err(ApiError::not_found(
            "no merged store (the job may have failed before its merge)",
        ));
    }
    ResultStore::load(out_csv).map_err(|e| ApiError::internal(format!("store load failed: {e}")))
}

/// Retention GC: deletes the `shards/` directories of all but the newest
/// `retain` *terminal* jobs (those with an `outcome.json`, newest by its
/// mtime). Shard rows of a terminal job are already folded into its
/// merged `measured.csv`, so only resume scaffolding is reclaimed — job
/// records, outcomes and merged results are never touched, and
/// non-terminal (queued, running, drained) jobs keep their shards.
/// Returns how many directories were removed.
pub fn gc_terminal_shards(state_dir: &Path, retain: usize) -> usize {
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return 0;
    };
    let mut terminal: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let dir = entry.path();
        let outcome = dir.join("outcome.json");
        if outcome.is_file() && dir.join("shards").is_dir() {
            let stamp = outcome
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            terminal.push((stamp, dir));
        }
    }
    terminal.sort_by_key(|t| std::cmp::Reverse(t.0));
    terminal
        .into_iter()
        .skip(retain)
        .filter(|(_, dir)| std::fs::remove_dir_all(dir.join("shards")).is_ok())
        .count()
}

/// Boots the daemon: binds `listen`, prints the bound address as the
/// first stderr line (`mbu-serve: listening on <addr>` — tests and
/// scripts parse it, so `--listen 127.0.0.1:0` works), restores persisted
/// jobs from `state_dir`, and serves until killed.
///
/// # Errors
///
/// Configuration, bind, or state-directory failures as strings (the
/// `repro` binary's error convention).
pub fn run_daemon(listen: &str, state_dir: &Path) -> Result<(), String> {
    let exp = Experiments::try_from_env().map_err(|e| e.to_string())?;
    let fabric = FabricConfig::from_env().map_err(|e| e.to_string())?;
    let cfg = ServeConfig::from_env().map_err(|e| e.to_string())?;
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("mbu-serve: listening on {addr}");
    eprintln!(
        "mbu-serve: {} concurrent job(s), queue depth {}, {} fabric worker(s), state in {}",
        cfg.max_jobs,
        cfg.queue,
        fabric.workers,
        state_dir.display()
    );
    let backend =
        Arc::new(SweepBackend::new(exp, fabric.clone()).with_mem_budget(cfg.mem_budget_mb));
    let manager = JobManager::new(state_dir, backend, cfg.max_jobs, cfg.queue)
        .map_err(|e| format!("state dir {}: {e}", state_dir.display()))?;
    if let Some(retain) = cfg.retain_jobs {
        let removed = gc_terminal_shards(state_dir, retain);
        if removed > 0 {
            eprintln!("mbu-serve: retention GC reclaimed {removed} terminal shard dir(s)");
        }
    }
    // SIGTERM → graceful drain. The handler itself only sets a flag; this
    // watcher thread does the real work: stop admission, wait for running
    // sweeps to park as drained (their shard rows durable, their jobs
    // re-queued), then exit — 0 for a clean drain, 1 for a timeout.
    mbu_serve::signal::install_term_handler();
    {
        let manager = Arc::clone(&manager);
        let state = state_dir.to_path_buf();
        let drain_timeout = cfg.drain_timeout;
        let retain = cfg.retain_jobs;
        std::thread::spawn(move || {
            let mut ticks: u64 = 0;
            loop {
                if mbu_serve::signal::term_requested() {
                    let (running, queued) = manager.counts();
                    eprintln!(
                        "mbu-serve: term signal received; draining {running} running / \
                         {queued} queued job(s), budget {:.0}s",
                        drain_timeout.as_secs_f64()
                    );
                    manager.begin_drain();
                    if manager.await_drained(drain_timeout) {
                        eprintln!("mbu-serve: drain complete; exiting");
                        std::process::exit(0);
                    }
                    eprintln!(
                        "mbu-serve: drain timed out after {:.0}s with jobs still running",
                        drain_timeout.as_secs_f64()
                    );
                    std::process::exit(1);
                }
                ticks += 1;
                // Periodic retention GC (~ every 15 s at the 50 ms tick).
                if let Some(retain) = retain {
                    if ticks.is_multiple_of(300) {
                        let removed = gc_terminal_shards(&state, retain);
                        if removed > 0 {
                            eprintln!(
                                "mbu-serve: retention GC reclaimed {removed} terminal \
                                 shard dir(s)"
                            );
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    }
    let options = ServeOptions {
        conn_max: cfg.conn_max,
        io_budget: cfg.io_budget,
        health: Some(Box::new(move || {
            vec![
                ("conn_max".into(), Json::usize(cfg.conn_max)),
                ("io_budget_secs".into(), Json::u64(cfg.io_budget.as_secs())),
                (
                    "drain_timeout_secs".into(),
                    Json::u64(cfg.drain_timeout.as_secs()),
                ),
                (
                    "mem_budget_mb".into(),
                    cfg.mem_budget_mb.map_or(Json::Null, Json::u64),
                ),
                (
                    "retain_jobs".into(),
                    cfg.retain_jobs.map_or(Json::Null, Json::usize),
                ),
                (
                    "disk_watermark_mb".into(),
                    fabric.disk_watermark_mb.map_or(Json::Null, Json::u64),
                ),
            ]
        })),
    };
    mbu_serve::serve_with(listener, manager, options).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> SweepBackend {
        SweepBackend::new(Experiments::default(), FabricConfig::default())
    }

    #[test]
    fn validate_resolves_every_knob() {
        let b = backend();
        let body = Json::parse(
            r#"{"components":["l1d","itlb"],"workloads":["qsort"],"runs":6,"seed":7,"cardinality":2,"snapshots":true}"#,
        )
        .unwrap();
        let sub = b.validate(&body).unwrap();
        let (exp, components, exhaustive) = b.exp_from_spec(&sub.spec).unwrap();
        assert_eq!(components, vec![HwComponent::L1D, HwComponent::ITlb]);
        assert_eq!(exp.runs, 6);
        assert_eq!(exp.seed, 7);
        assert_eq!(exp.max_cardinality, 2);
        assert!(exp.use_snapshots);
        assert!(!exhaustive);
        assert_eq!(exp.workloads, vec![Workload::Qsort]);
    }

    #[test]
    fn validate_exhaustive_mode() {
        let b = backend();
        // Defaults: the provably-coverable small structures, single-bit.
        let sub = b
            .validate(&Json::parse(r#"{"mode":"exhaustive"}"#).unwrap())
            .unwrap();
        let (exp, components, exhaustive) = b.exp_from_spec(&sub.spec).unwrap();
        assert!(exhaustive);
        assert_eq!(components, EXHAUSTIVE_COMPONENTS.to_vec());
        assert_eq!(exp.max_cardinality, 1);
        // Explicit components (including stratified arrays) pass through.
        let sub = b
            .validate(
                &Json::parse(r#"{"mode":"exhaustive","components":["itlb","l2"],"cardinality":1}"#)
                    .unwrap(),
            )
            .unwrap();
        let (_, components, exhaustive) = b.exp_from_spec(&sub.spec).unwrap();
        assert!(exhaustive);
        assert_eq!(components, vec![HwComponent::ITlb, HwComponent::L2]);
        // Specs persisted before the mode field existed parse as measure.
        let legacy = Json::parse(
            r#"{"components":["l1d"],"workloads":["qsort"],"runs":2,"seed":1,"cardinality":1,"snapshots":false}"#,
        )
        .unwrap();
        assert!(!b.exp_from_spec(&legacy).unwrap().2);
    }

    #[test]
    fn validate_defaults_and_rejects() {
        let b = backend();
        let sub = b.validate(&Json::Obj(vec![])).unwrap();
        let (exp, components, _) = b.exp_from_spec(&sub.spec).unwrap();
        assert_eq!(components, HwComponent::ALL.to_vec());
        assert_eq!(exp.runs, b.base.runs);
        let cases = [
            (r#"{"bogus":1}"#, "unknown field"),
            (r#"{"components":["warp-core"]}"#, "unknown hardware"),
            (r#"{"components":[]}"#, "non-empty"),
            (r#"{"workloads":["nope"]}"#, "unknown workload"),
            (r#"{"runs":0}"#, "positive"),
            (r#"{"cardinality":9}"#, "1..=8"),
            (r#"{"snapshots":"maybe"}"#, "boolean"),
            (r#"{"mode":"banana"}"#, "measure"),
            (r#"{"mode":7}"#, "measure"),
            (
                r#"{"mode":"exhaustive","cardinality":3}"#,
                "exhaustive mode",
            ),
            (r#"[1]"#, "JSON object"),
        ];
        for (body, needle) in cases {
            let err = b.validate(&Json::parse(body).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body}: {}", err.message);
        }
    }

    const SERVE_VARS: [&str; 7] = [
        "MBU_HTTP_MAX_JOBS",
        "MBU_HTTP_QUEUE",
        "MBU_HTTP_CONN_MAX",
        "MBU_HTTP_TIMEOUT_SECS",
        "MBU_DRAIN_TIMEOUT_SECS",
        "MBU_MEM_BUDGET_MB",
        "MBU_RETAIN_JOBS",
    ];

    #[test]
    fn serve_config_env_knobs_are_typed() {
        // Defaults with the variables unset.
        for var in SERVE_VARS {
            std::env::remove_var(var);
        }
        assert_eq!(ServeConfig::from_env().unwrap(), ServeConfig::default());
        // Every knob rejects garbage with a typed error that names it.
        for var in SERVE_VARS {
            std::env::set_var(var, "banana");
            let err = ServeConfig::from_env().unwrap_err();
            assert!(
                err.to_string().contains(var),
                "error for {var} should name it: {err}"
            );
            std::env::remove_var(var);
        }
        std::env::set_var("MBU_HTTP_MAX_JOBS", "0");
        assert!(ServeConfig::from_env().is_err());
        std::env::remove_var("MBU_HTTP_MAX_JOBS");
        std::env::set_var("MBU_HTTP_CONN_MAX", "0");
        assert!(ServeConfig::from_env().is_err());
        std::env::remove_var("MBU_HTTP_CONN_MAX");
        // Valid values land in the right fields.
        std::env::set_var("MBU_HTTP_MAX_JOBS", "3");
        std::env::set_var("MBU_HTTP_QUEUE", "1");
        std::env::set_var("MBU_HTTP_CONN_MAX", "9");
        std::env::set_var("MBU_HTTP_TIMEOUT_SECS", "7");
        std::env::set_var("MBU_DRAIN_TIMEOUT_SECS", "11");
        std::env::set_var("MBU_MEM_BUDGET_MB", "512");
        std::env::set_var("MBU_RETAIN_JOBS", "4");
        let cfg = ServeConfig::from_env().unwrap();
        assert_eq!((cfg.max_jobs, cfg.queue), (3, 1));
        assert_eq!(cfg.conn_max, 9);
        assert_eq!(cfg.io_budget, Duration::from_secs(7));
        assert_eq!(cfg.drain_timeout, Duration::from_secs(11));
        assert_eq!(cfg.mem_budget_mb, Some(512));
        assert_eq!(cfg.retain_jobs, Some(4));
        for var in SERVE_VARS {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn retention_gc_keeps_newest_terminal_jobs() {
        let root = std::env::temp_dir().join(format!("mbu-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Three terminal jobs (outcome.json present) and one still
        // running; retention 1 keeps the newest terminal shards and the
        // running job untouched.
        for (name, terminal) in [("a", true), ("b", true), ("c", true), ("live", false)] {
            let dir = root.join(name);
            std::fs::create_dir_all(dir.join("shards")).unwrap();
            std::fs::write(dir.join("shards/worker-000.csv"), "rows").unwrap();
            if terminal {
                std::fs::write(dir.join("outcome.json"), "{}").unwrap();
                // Distinct mtimes so "newest" is well-defined.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
        let removed = gc_terminal_shards(&root, 1);
        assert_eq!(removed, 2, "two older terminal jobs reclaimed");
        assert!(!root.join("a/shards").exists());
        assert!(!root.join("b/shards").exists());
        assert!(root.join("c/shards").exists(), "newest terminal kept");
        assert!(root.join("live/shards").exists(), "non-terminal kept");
        // Idempotent: nothing left to reclaim.
        assert_eq!(gc_terminal_shards(&root, 1), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn figure_numbers_map_to_paper_components() {
        assert_eq!(figure_component(1), Some(HwComponent::L1D));
        assert_eq!(figure_component(6), Some(HwComponent::ITlb));
        assert_eq!(figure_component(0), None);
        assert_eq!(figure_component(7), None);
    }
}
