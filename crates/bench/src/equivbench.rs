//! `repro equivbench` — run-count economics of equivalence-class
//! campaigns vs the paper's uniform 2 000-run sampling, emitted as
//! `BENCH_equiv.json`.
//!
//! Each [`EquivbenchRow`] compiles one structure's fault-equivalence
//! partition and runs the class-weighted stratified campaign to the
//! paper's 2.88 % @ 99 % target margin, recording how many *distinct
//! simulations* that took. The baseline is the paper's uniform protocol —
//! 2 000 independent runs, whose worst-case (p = 0.5) margin over the same
//! fault population is **computed** from the finite-population margin
//! formula, not re-run: the formula is exactly what sizes those campaigns
//! in the first place (Leveugle et al.), so running 2 000 injections would
//! only reproduce the number with sampling noise on top.
//!
//! The reduction factor is `baseline_runs / distinct_sims` at
//! equal-or-better margin. It is largest where the live fraction λ of the
//! fault space is small (the big data arrays): the dead stratum is proved
//! `Masked` outright, and the whole-population margin of the live stratum
//! scales by λ, so a handful of draws certifies what uniform sampling
//! needs thousands of runs for. The per-row class census (`live_classes`
//! vs `population`) also records what a *full* exhaustive enumeration
//! would cost — the `repro exhaustive` mode's price for margin exactly 0.

use crate::experiments::Experiments;
use crate::store::component_slug;
use crate::supervisor::{FabricConfig, Supervisor, SweepOptions, WorkerPool};
use mbu_cpu::HwComponent;
use mbu_gefin::report::{factor, pct, Table};
use mbu_gefin::stats::{error_margin, Z_99};
use mbu_gefin::ExhaustivePlan;
use mbu_workloads::Workload;
use std::time::Instant;

/// Runs of the uniform-sampling baseline the reduction is quoted against
/// (the paper's campaign size: 2 000 ⇒ 2.88 % at 99 % confidence).
pub const BASELINE_RUNS: u64 = 2000;

/// One structure's stratified-campaign economics.
#[derive(Debug, Clone)]
pub struct EquivbenchRow {
    /// The injected structure.
    pub component: HwComponent,
    /// Fault population (bits × cycles) of the structure.
    pub population: u64,
    /// Live equivalence classes (a full exhaustive enumeration's cost).
    pub live_classes: u64,
    /// Population mass of the live classes (λ = live_weight/population).
    pub live_weight: u64,
    /// Weight-proportional tickets drawn from the live stratum.
    pub draws: u64,
    /// Distinct classes simulated (memoized draws — the actual run cost).
    pub simulated: u64,
    /// Whole-population AVF of the stratified result.
    pub avf: f64,
    /// Achieved whole-population margin at stop.
    pub achieved_margin: f64,
    /// Computed margin of [`BASELINE_RUNS`] uniform runs over the same
    /// population at worst-case p = 0.5 (99 % confidence).
    pub baseline_margin: f64,
    /// Campaign wall-clock (partition + simulations), seconds.
    pub wall_secs: f64,
}

impl EquivbenchRow {
    /// Live fraction of the fault population.
    pub fn live_fraction(&self) -> f64 {
        self.live_weight as f64 / (self.population.max(1)) as f64
    }

    /// Run-count reduction vs the uniform baseline.
    pub fn reduction(&self, baseline_runs: u64) -> f64 {
        baseline_runs as f64 / self.simulated.max(1) as f64
    }

    /// Whether the stratified margin is equal-or-better than the baseline.
    pub fn at_margin(&self) -> bool {
        self.achieved_margin <= self.baseline_margin + 1e-9
    }
}

/// Distributed class-range scaling of one real exhaustive campaign
/// (`repro equivbench --workers N`): the same sweep through the fabric
/// with one worker and with `workers`, every worker single-threaded so
/// the ratio measures process scaling, not thread scaling. Wall-clock
/// scaling needs at least `workers` cores — `cores` records what this
/// machine actually had, so a ~1× ratio on a small box is attributable.
#[derive(Debug, Clone)]
pub struct FabricBench {
    /// The exhaustively-enumerated structure.
    pub component: HwComponent,
    /// The benchmarked workload.
    pub workload: Workload,
    /// Live classes the campaign simulates (per worker count, identical).
    pub live_classes: u64,
    /// Cores available to the benchmark process.
    pub cores: usize,
    /// Worker count of the scaled run.
    pub workers: usize,
    /// Wall-clock of the 1-worker sweep, seconds.
    pub secs_one: f64,
    /// Wall-clock of the `workers`-worker sweep, seconds.
    pub secs_many: f64,
    /// Whether the two merged exhaustive stores were byte-identical.
    pub bit_identical: bool,
}

impl FabricBench {
    /// Wall-clock speedup of `workers` workers over one.
    pub fn speedup(&self) -> f64 {
        self.secs_one / self.secs_many.max(1e-9)
    }
}

/// The full stratified sweep over the benchmarked components.
#[derive(Debug, Clone)]
pub struct EquivbenchReport {
    /// The benchmarked workload.
    pub workload: Workload,
    /// Campaign seed (ticket stream).
    pub seed: u64,
    /// Uniform-baseline campaign size.
    pub baseline_runs: u64,
    /// Stop target of the stratified sampler.
    pub target_margin: f64,
    /// One row per component.
    pub rows: Vec<EquivbenchRow>,
    /// Distributed scaling section (`--workers N`), absent by default.
    pub fabric: Option<FabricBench>,
}

impl EquivbenchReport {
    /// The best reduction among rows meeting the baseline margin.
    pub fn headline_reduction(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.at_margin())
            .map(|r| r.reduction(self.baseline_runs))
            .fold(0.0, f64::max)
    }

    /// Whether every row met the baseline margin.
    pub fn all_at_margin(&self) -> bool {
        self.rows.iter().all(EquivbenchRow::at_margin)
    }

    /// Renders the report as the `BENCH_equiv.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload.name()));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"baseline_runs\": {},\n", self.baseline_runs));
        out.push_str(&format!(
            "  \"target_margin\": {:.6},\n",
            self.target_margin
        ));
        out.push_str("  \"components\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"component\": \"{}\", \"population\": {}, \"live_classes\": {}, \
                 \"live_weight\": {}, \"live_fraction\": {:.6}, \"draws\": {}, \
                 \"distinct_sims\": {}, \"avf\": {:.6}, \"achieved_margin\": {:.6}, \
                 \"baseline_margin\": {:.6}, \"reduction\": {:.3}, \"at_margin\": {}, \
                 \"wall_secs\": {:.6}}}{}\n",
                component_slug(r.component),
                r.population,
                r.live_classes,
                r.live_weight,
                r.live_fraction(),
                r.draws,
                r.simulated,
                r.avf,
                r.achieved_margin,
                r.baseline_margin,
                r.reduction(self.baseline_runs),
                r.at_margin(),
                r.wall_secs,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        if let Some(f) = &self.fabric {
            out.push_str(&format!(
                "  \"fabric\": {{\"component\": \"{}\", \"workload\": \"{}\", \
                 \"live_classes\": {}, \"cores\": {}, \"workers\": {}, \
                 \"secs_one_worker\": {:.3}, \"secs_n_workers\": {:.3}, \
                 \"speedup\": {:.3}, \"bit_identical\": {}}},\n",
                component_slug(f.component),
                f.workload.name(),
                f.live_classes,
                f.cores,
                f.workers,
                f.secs_one,
                f.secs_many,
                f.speedup(),
                f.bit_identical,
            ));
        }
        out.push_str(&format!(
            "  \"headline_reduction\": {:.3},\n",
            self.headline_reduction()
        ));
        out.push_str(&format!("  \"all_at_margin\": {}\n", self.all_at_margin()));
        out.push_str("}\n");
        out
    }

    /// Renders the report as an ASCII table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Equivalence-class run-count reduction — {} (baseline {} uniform runs)",
                self.workload, self.baseline_runs
            ),
            &[
                "Component",
                "Population",
                "Live classes",
                "Live %",
                "Sims",
                "AVF",
                "Margin",
                "Baseline",
                "Reduction",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.component.to_string(),
                r.population.to_string(),
                r.live_classes.to_string(),
                pct(r.live_fraction()),
                r.simulated.to_string(),
                pct(r.avf),
                pct(r.achieved_margin),
                pct(r.baseline_margin),
                factor(r.reduction(self.baseline_runs)),
            ]);
        }
        t
    }
}

impl Experiments {
    /// Benchmarks the class-weighted stratified campaign of every listed
    /// component against the computed uniform 2 000-run baseline margin.
    pub fn equivbench(&self, workload: Workload, components: &[HwComponent]) -> EquivbenchReport {
        let spec = self.stratified_spec();
        let mut rows = Vec::new();
        for &c in components {
            if self.verbose {
                eprintln!("  equivbench {c}/{workload}: partition + stratified campaign");
            }
            let t0 = Instant::now();
            let plan = ExhaustivePlan::try_new(
                self.equiv_config(c, workload).run_wall_budget(None),
                self.exhaustive_spec(),
            )
            .expect("single-bit data-array stratified campaign must compile");
            let cov = plan.coverage();
            let r = plan
                .run_stratified(spec, None)
                .expect("stratified campaign must run");
            let wall_secs = t0.elapsed().as_secs_f64();
            let baseline_margin =
                error_margin(cov.population, BASELINE_RUNS.min(cov.population), Z_99, 0.5)
                    .expect("baseline margin over a nonempty population");
            rows.push(EquivbenchRow {
                component: c,
                population: cov.population,
                live_classes: cov.live_classes,
                live_weight: cov.live_weight,
                draws: r.draws,
                simulated: r.simulated,
                avf: r.campaign.avf(),
                achieved_margin: r.campaign.achieved_margin.unwrap_or(f64::NAN),
                baseline_margin,
                wall_secs,
            });
        }
        EquivbenchReport {
            workload,
            seed: spec.seed,
            baseline_runs: BASELINE_RUNS,
            target_margin: spec.target_margin,
            rows,
            fabric: None,
        }
    }

    /// Benchmarks distributed class-range scaling of one real exhaustive
    /// campaign: the full sweep through the fabric with one worker, then
    /// with `workers`, every worker pinned to a single thread so the
    /// ratio measures process scaling. Also checks the two merged stores
    /// byte for byte — the fabric's core promise.
    ///
    /// # Errors
    ///
    /// A degraded sweep (quarantined units, coverage gaps) or I/O failure
    /// as a string, per the `repro` binary's error convention.
    pub fn equivbench_fabric(
        &self,
        workload: Workload,
        component: HwComponent,
        workers: usize,
    ) -> Result<FabricBench, String> {
        let mut exp = self.clone();
        exp.workloads = vec![workload];
        exp.threads = 1;
        let base =
            std::env::temp_dir().join(format!("mbu-equivbench-fabric-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut csvs = Vec::new();
        let mut secs = Vec::new();
        let mut live_classes = 0;
        for (tag, n) in [("one", 1), ("many", workers)] {
            let dir = base.join(tag);
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            let config = FabricConfig {
                workers: n,
                ..FabricConfig::default()
            };
            let out_csv = dir.join("exhaustive.csv");
            let t0 = Instant::now();
            let (store, report) = Supervisor::run_equiv(
                &exp,
                &[component],
                &[],
                &config,
                &dir.join("shards"),
                &out_csv,
                WorkerPool::Spawn,
                SweepOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            if !report.is_clean() {
                return Err(format!(
                    "fabric bench sweep with {n} worker(s) completed degraded \
                     (quarantined units or coverage gaps)"
                ));
            }
            secs.push(t0.elapsed().as_secs_f64());
            live_classes = store
                .exhaustive_meta(component, workload, 1)
                .map_or(0, |m| m.classes);
            csvs.push(std::fs::read_to_string(&out_csv).map_err(|e| e.to_string())?);
        }
        let bench = FabricBench {
            component,
            workload,
            live_classes,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            workers,
            secs_one: secs[0],
            secs_many: secs[1],
            bit_identical: !csvs[0].is_empty() && csvs[0] == csvs[1],
        };
        let _ = std::fs::remove_dir_all(&base);
        Ok(bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivbench_l2_meets_baseline_margin_with_fewer_sims() {
        let e = Experiments {
            workloads: vec![Workload::Stringsearch],
            ..Experiments::default()
        };
        let report = e.equivbench(Workload::Stringsearch, &[HwComponent::L2]);
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!(r.population > 0 && r.live_classes > 0);
        assert!(r.live_weight < r.population, "L2 is mostly idle");
        assert!(r.simulated <= r.draws);
        // The mostly-dead stratum makes the λ-scaled margin beat even the
        // baseline's best case long before 2 000 simulations.
        assert!(
            r.at_margin(),
            "margin {} vs {}",
            r.achieved_margin,
            r.baseline_margin
        );
        assert!(
            report.headline_reduction() >= 5.0,
            "reduction {}",
            report.headline_reduction()
        );
        let json = report.to_json();
        assert!(json.contains("\"baseline_runs\": 2000"));
        assert!(json.contains("\"at_margin\": true"));
        assert!(json.contains("\"headline_reduction\""));
        assert_eq!(report.table().len(), 1);
    }
}
