//! Checkpoint I/O behind a narrow, injectable seam.
//!
//! Every filesystem touch the campaign stores make goes through
//! [`StoreIo`], so the chaos harness (`crate::chaos`) can inject I/O
//! failures, torn writes and stalls into the *injector's own* persistence
//! layer, and the sweep driver can wrap the real filesystem in a bounded
//! retry-with-backoff policy ([`RetryIo`]) for transient errors.
//!
//! Production code uses [`RealIo`]; tests substitute `chaos::ChaosIo`.

use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// The filesystem operations a checkpoint store needs. Deliberately
/// coarse-grained (whole-file reads, single-call appends, atomic rewrites)
/// so each call is one crash-consistency unit.
pub trait StoreIo {
    /// Reads the whole file as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Appends `text` to the file (creating it and its parent directories
    /// if absent) and syncs the data to stable storage before returning.
    fn append(&self, path: &Path, text: &str) -> io::Result<()>;

    /// Replaces the file's contents atomically: the new text is written to
    /// a temporary sibling, synced, then renamed over the target, so a
    /// crash leaves either the old file or the new one — never a torn mix.
    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()>;

    /// The file's current length in bytes; a missing file reads as 0.
    fn len(&self, path: &Path) -> io::Result<u64>;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn append(&self, path: &Path, text: &str) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(text.as_bytes())?;
        file.sync_data()
    }

    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// How many times to retry a failed checkpoint operation, and how long to
/// back off between attempts (exponential: `base_delay`, `2×`, `4×`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
}

impl RetryPolicy {
    /// A sensible default for flaky network filesystems: 4 attempts with
    /// 10 ms / 20 ms / 40 ms backoff.
    pub const DEFAULT: Self = Self {
        attempts: 4,
        base_delay: Duration::from_millis(10),
    };

    /// No retries at all: every failure surfaces immediately.
    pub const NONE: Self = Self {
        attempts: 1,
        base_delay: Duration::ZERO,
    };
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Wraps any [`StoreIo`] in bounded retry-with-backoff. A transient failure
/// (of any kind — the wrapped I/O decides what fails) is retried up to the
/// policy's attempt budget; a persistent failure surfaces as the *last*
/// error, typed, never a panic.
pub struct RetryIo<'a> {
    inner: &'a dyn StoreIo,
    policy: RetryPolicy,
}

impl<'a> RetryIo<'a> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: &'a dyn StoreIo, policy: RetryPolicy) -> Self {
        Self { inner, policy }
    }

    fn with_retry<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let attempts = self.policy.attempts.max(1);
        let mut delay = self.policy.base_delay;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                delay = delay.saturating_mul(2);
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("retry budget of zero attempts")))
    }
}

impl StoreIo for RetryIo<'_> {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.with_retry(|| self.inner.read_to_string(path))
    }

    fn append(&self, path: &Path, text: &str) -> io::Result<()> {
        self.with_retry(|| self.inner.append(path, text))
    }

    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        self.with_retry(|| self.inner.write_atomic(path, text))
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.with_retry(|| self.inner.len(path))
    }
}

/// Chaos hook for [`free_disk_mb`]: a file whose contents (a number of
/// megabytes) stand in for the real free-space probe, re-read on every
/// probe so a test can flip breach → recovery by rewriting it.
pub const CHAOS_DISK_ENV: &str = "MBU_CHAOS_DISK_FILE";

/// Free disk space in MiB on the filesystem holding `path`, or `None` when
/// the probe itself fails (missing path, no `df`) — the governor treats an
/// unprobeable disk as "no information", not as pressure.
///
/// When `MBU_CHAOS_DISK_FILE` names a file, its contents are the probed
/// value instead; this is the chaos harness's lever for exercising the
/// watermark without actually filling a disk.
pub fn free_disk_mb(path: &Path) -> Option<u64> {
    if let Some(fake) = std::env::var_os(CHAOS_DISK_ENV) {
        return std::fs::read_to_string(fake)
            .ok()
            .and_then(|t| t.trim().parse().ok());
    }
    // `df -Pk` (POSIX portable format, 1k blocks) on the deepest existing
    // ancestor — the shard dir may not exist yet on the first probe.
    let mut probe = path;
    while !probe.exists() {
        probe = probe.parent()?;
    }
    let out = std::process::Command::new("df")
        .arg("-Pk")
        .arg(probe)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    // Header line, then one data line: fs, 1k-blocks, used, available, …
    let avail_kb: u64 = text
        .lines()
        .nth(1)?
        .split_whitespace()
        .nth(3)?
        .parse()
        .ok()?;
    Some(avail_kb / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mbu-io-{tag}-{}", std::process::id()))
    }

    #[test]
    fn real_io_roundtrips_and_counts_length() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("nested/f.csv");
        let io = RealIo;
        assert_eq!(io.len(&path).unwrap(), 0, "missing file reads as empty");
        io.append(&path, "a\n").unwrap();
        io.append(&path, "b\n").unwrap();
        assert_eq!(io.read_to_string(&path).unwrap(), "a\nb\n");
        assert_eq!(io.len(&path).unwrap(), 4);
        io.write_atomic(&path, "replaced\n").unwrap();
        assert_eq!(io.read_to_string(&path).unwrap(), "replaced\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    struct FlakyIo {
        fail_first: usize,
        calls: AtomicUsize,
        inner: RealIo,
    }

    impl StoreIo for FlakyIo {
        fn read_to_string(&self, path: &Path) -> io::Result<String> {
            self.inner.read_to_string(path)
        }
        fn append(&self, path: &Path, text: &str) -> io::Result<()> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                return Err(io::Error::other("simulated transient failure"));
            }
            self.inner.append(path, text)
        }
        fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
            self.inner.write_atomic(path, text)
        }
        fn len(&self, path: &Path) -> io::Result<u64> {
            self.inner.len(path)
        }
    }

    #[test]
    fn retry_io_rides_out_transient_failures() {
        let dir = tmpdir("retry");
        let path = dir.join("f.csv");
        let flaky = FlakyIo {
            fail_first: 2,
            calls: AtomicUsize::new(0),
            inner: RealIo,
        };
        let retry = RetryIo::new(
            &flaky,
            RetryPolicy {
                attempts: 3,
                base_delay: Duration::ZERO,
            },
        );
        retry.append(&path, "survived\n").unwrap();
        assert_eq!(retry.read_to_string(&path).unwrap(), "survived\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_io_surfaces_persistent_failures_typed() {
        let dir = tmpdir("persistent");
        let path = dir.join("f.csv");
        let flaky = FlakyIo {
            fail_first: usize::MAX,
            calls: AtomicUsize::new(0),
            inner: RealIo,
        };
        let retry = RetryIo::new(
            &flaky,
            RetryPolicy {
                attempts: 3,
                base_delay: Duration::ZERO,
            },
        );
        let err = retry.append(&path, "never\n").unwrap_err();
        assert!(err.to_string().contains("transient failure"));
        assert_eq!(
            flaky.calls.load(Ordering::Relaxed),
            3,
            "attempt budget spent"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_probe_reports_something_sane_for_tempdir() {
        // Not asserting a specific number — just that the real probe works
        // on the build machine and missing paths fall back to an ancestor.
        let free = free_disk_mb(&std::env::temp_dir().join("mbu-nonexistent/deeper"));
        assert!(free.is_some(), "df probe failed");
    }
}
