//! `repro snapbench` — campaign wall-clock with the snapshot fast path off
//! vs on, per component, emitted as `BENCH_snapshot.json`.
//!
//! Each row times one complete injection campaign twice with identical
//! configuration (same seed, same run count, same workload) — first the
//! plain path that re-simulates every run from cycle 0, then the
//! checkpoint/restore fast path — and cross-checks that both produce the
//! same per-class counts, so a speedup can never come from classifying
//! differently. The feature-gated `benches/snapshot.rs` re-measures the
//! same pairs under the in-tree `tinybench` harness; this module keeps the
//! measurement available to the plain `repro` binary (built without the
//! `bench-harness` feature) and renders the machine-readable JSON.

use crate::experiments::Experiments;
use crate::store::component_slug;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::Campaign;
use mbu_gefin::report::{factor, Table};
use mbu_workloads::Workload;
use std::time::Instant;

/// One off/on wall-clock pair for a single component.
#[derive(Debug, Clone)]
pub struct SnapbenchRow {
    /// The injected structure.
    pub component: HwComponent,
    /// Plain-path campaign wall-clock, seconds.
    pub off_secs: f64,
    /// Snapshot fast-path campaign wall-clock, seconds.
    pub on_secs: f64,
    /// Classified runs per campaign (identical off vs on).
    pub classified_runs: u64,
    /// Fast-path runs that restored a mid-run checkpoint.
    pub restores: u64,
    /// Fast-path runs classified `Masked` early by a reconvergence check.
    pub early_masked: u64,
    /// Whether both paths produced identical per-class counts.
    pub identical: bool,
}

impl SnapbenchRow {
    /// Wall-clock speedup of the fast path (plain / snapshot).
    pub fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs.max(1e-9)
    }
}

/// The full off/on sweep over every injectable component.
#[derive(Debug, Clone)]
pub struct SnapbenchReport {
    /// The benchmarked workload.
    pub workload: Workload,
    /// Configured runs per campaign.
    pub runs: usize,
    /// Fault cardinality per injection.
    pub faults: usize,
    /// Campaign seed (both paths).
    pub seed: u64,
    /// One row per component.
    pub rows: Vec<SnapbenchRow>,
}

impl SnapbenchReport {
    /// The best speedup across components.
    pub fn max_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(SnapbenchRow::speedup)
            .fold(0.0, f64::max)
    }

    /// Whether every component classified identically off vs on.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Renders the report as the `BENCH_snapshot.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload.name()));
        out.push_str(&format!("  \"runs_per_campaign\": {},\n", self.runs));
        out.push_str(&format!("  \"faults\": {},\n", self.faults));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"components\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"component\": \"{}\", \"off_secs\": {:.6}, \"on_secs\": {:.6}, \
                 \"speedup\": {:.3}, \"classified_runs\": {}, \"snapshot_restores\": {}, \
                 \"early_masked\": {}, \"identical_classifications\": {}}}{}\n",
                component_slug(r.component),
                r.off_secs,
                r.on_secs,
                r.speedup(),
                r.classified_runs,
                r.restores,
                r.early_masked,
                r.identical,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"max_speedup\": {:.3},\n", self.max_speedup()));
        out.push_str(&format!("  \"all_identical\": {}\n", self.all_identical()));
        out.push_str("}\n");
        out
    }

    /// Renders the report as an ASCII table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Snapshot fast-path speedup — {} ({} runs x {}-bit per campaign)",
                self.workload, self.runs, self.faults
            ),
            &[
                "Component",
                "Plain (s)",
                "Snapshots (s)",
                "Speedup",
                "Restores",
                "Early-masked",
                "Identical",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.component.to_string(),
                format!("{:.3}", r.off_secs),
                format!("{:.3}", r.on_secs),
                factor(r.speedup()),
                r.restores.to_string(),
                r.early_masked.to_string(),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t
    }
}

impl Experiments {
    /// Benchmarks every component's campaign with snapshots off then on,
    /// cross-checking that both paths classify identically.
    pub fn snapbench(&self, workload: Workload) -> SnapbenchReport {
        let faults = 2;
        let mut rows = Vec::new();
        for c in HwComponent::ALL {
            if self.verbose {
                eprintln!("  snapbench {c}/{workload}: plain path");
            }
            // Watchdog off: its shutdown poll (~100 ms) would floor the
            // fast path's wall-clock and understate the speedup; the cycle
            // limit (4 × T_ff) still bounds every run.
            let base = self
                .campaign_config(c, workload, faults)
                .run_wall_budget(None);
            let t0 = Instant::now();
            let off = Campaign::new(base.clone().use_snapshots(false)).run();
            let off_secs = t0.elapsed().as_secs_f64();
            if self.verbose {
                eprintln!("  snapbench {c}/{workload}: snapshot fast path");
            }
            let t1 = Instant::now();
            let on = Campaign::new(base.use_snapshots(true)).run();
            let on_secs = t1.elapsed().as_secs_f64();
            let stats = on.snapshot_stats.unwrap_or_default();
            rows.push(SnapbenchRow {
                component: c,
                off_secs,
                on_secs,
                classified_runs: off.counts.total(),
                restores: stats.restores,
                early_masked: stats.early_masked,
                identical: off.counts == on.counts,
            });
        }
        SnapbenchReport {
            workload,
            runs: self.runs,
            faults,
            seed: self.seed,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapbench_rows_cover_all_components_and_classify_identically() {
        let e = Experiments {
            runs: 6,
            workloads: vec![Workload::Stringsearch],
            ..Experiments::default()
        };
        let report = e.snapbench(Workload::Stringsearch);
        assert_eq!(report.rows.len(), HwComponent::ALL.len());
        assert!(report.all_identical(), "off/on classifications must match");
        assert!(report.max_speedup() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"components\": ["));
        assert!(json.contains("\"l2\""));
        assert!(json.contains("\"all_identical\": true"));
        assert_eq!(report.table().len(), HwComponent::ALL.len());
    }
}
