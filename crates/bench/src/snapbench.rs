//! `repro snapbench` — campaign wall-clock with the snapshot fast path off
//! vs on, per component, emitted as `BENCH_snapshot.json`, plus the
//! golden-artifact-cache sweep benchmark emitted as `BENCH_sweep.json`.
//!
//! Each [`SnapbenchRow`] times one complete injection campaign twice with
//! identical configuration (same seed, same run count, same workload) —
//! first the plain path that re-simulates every run from cycle 0, then the
//! checkpoint/restore fast path — and cross-checks that both produce the
//! same per-class counts, so a speedup can never come from classifying
//! differently. [`SweepbenchReport`] applies the same discipline one level
//! up: a whole components × cardinalities sweep over one workload, timed
//! with the sweep-wide golden-artifact cache off (every campaign pays its
//! own golden + snapshot-recording runs) vs on (one shared
//! [`GoldenArtifacts`] build), with every [`CampaignResult`] compared for
//! bit-identity. The feature-gated `benches/snapshot.rs` re-measures the
//! campaign pairs under the in-tree `tinybench` harness; this module keeps
//! the measurements available to the plain `repro` binary (built without
//! the `bench-harness` feature) and renders the machine-readable JSON.

use crate::experiments::Experiments;
use crate::store::component_slug;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{Campaign, CampaignResult};
use mbu_gefin::integrity::golden_fingerprint;
use mbu_gefin::report::{factor, Table};
use mbu_gefin::GoldenArtifacts;
use mbu_workloads::Workload;
use std::time::Instant;

/// One off/on wall-clock pair for a single component.
#[derive(Debug, Clone)]
pub struct SnapbenchRow {
    /// The injected structure.
    pub component: HwComponent,
    /// Plain-path campaign wall-clock, seconds.
    pub off_secs: f64,
    /// Snapshot fast-path campaign wall-clock, seconds.
    pub on_secs: f64,
    /// Classified runs per campaign (identical off vs on).
    pub classified_runs: u64,
    /// Fast-path runs that restored a mid-run checkpoint.
    pub restores: u64,
    /// Fast-path runs classified `Masked` early by a reconvergence check.
    pub early_masked: u64,
    /// Whether both paths produced identical per-class counts.
    pub identical: bool,
}

impl SnapbenchRow {
    /// Wall-clock speedup of the fast path (plain / snapshot).
    pub fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs.max(1e-9)
    }
}

/// The full off/on sweep over every injectable component.
#[derive(Debug, Clone)]
pub struct SnapbenchReport {
    /// The benchmarked workload.
    pub workload: Workload,
    /// Configured runs per campaign.
    pub runs: usize,
    /// Fault cardinality per injection.
    pub faults: usize,
    /// Campaign seed (both paths).
    pub seed: u64,
    /// One row per component.
    pub rows: Vec<SnapbenchRow>,
}

impl SnapbenchReport {
    /// The best speedup across components.
    pub fn max_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(SnapbenchRow::speedup)
            .fold(0.0, f64::max)
    }

    /// Whether every component classified identically off vs on.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Renders the report as the `BENCH_snapshot.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload.name()));
        out.push_str(&format!("  \"runs_per_campaign\": {},\n", self.runs));
        out.push_str(&format!("  \"faults\": {},\n", self.faults));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"components\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"component\": \"{}\", \"off_secs\": {:.6}, \"on_secs\": {:.6}, \
                 \"speedup\": {:.3}, \"classified_runs\": {}, \"snapshot_restores\": {}, \
                 \"early_masked\": {}, \"identical_classifications\": {}}}{}\n",
                component_slug(r.component),
                r.off_secs,
                r.on_secs,
                r.speedup(),
                r.classified_runs,
                r.restores,
                r.early_masked,
                r.identical,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"max_speedup\": {:.3},\n", self.max_speedup()));
        out.push_str(&format!("  \"all_identical\": {}\n", self.all_identical()));
        out.push_str("}\n");
        out
    }

    /// Renders the report as an ASCII table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Snapshot fast-path speedup — {} ({} runs x {}-bit per campaign)",
                self.workload, self.runs, self.faults
            ),
            &[
                "Component",
                "Plain (s)",
                "Snapshots (s)",
                "Speedup",
                "Restores",
                "Early-masked",
                "Identical",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.component.to_string(),
                format!("{:.3}", r.off_secs),
                format!("{:.3}", r.on_secs),
                factor(r.speedup()),
                r.restores.to_string(),
                r.early_masked.to_string(),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t
    }
}

/// Injections per campaign in [`Experiments::sweepbench`] (an upper
/// bound; `MBU_RUNS` below it is respected).
pub const SWEEPBENCH_RUNS: usize = 20;

/// Wall-clock of one components × cardinalities sweep over a single
/// workload, with the sweep-wide golden-artifact cache off vs on —
/// rendered as `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct SweepbenchReport {
    /// The benchmarked workload.
    pub workload: Workload,
    /// The swept components.
    pub components: Vec<HwComponent>,
    /// Configured runs per campaign.
    pub runs: usize,
    /// Campaign seed (both paths).
    pub seed: u64,
    /// Campaigns per path (components × 3 cardinalities).
    pub campaigns: usize,
    /// Cache-off sweep wall-clock, seconds (per-campaign golden, snapshot
    /// recording and fingerprint runs).
    pub off_secs: f64,
    /// Cache-on sweep wall-clock, seconds (one shared artifact build).
    pub on_secs: f64,
    /// Whether both paths produced bit-identical campaign results and
    /// golden-run fingerprints.
    pub identical: bool,
}

impl SweepbenchReport {
    /// Wall-clock speedup of the cached sweep (off / on).
    pub fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs.max(1e-9)
    }

    /// Renders the report as the `BENCH_sweep.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload.name()));
        out.push_str("  \"components\": [");
        for (i, c) in self.components.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\"{}",
                component_slug(*c),
                if i + 1 < self.components.len() {
                    ", "
                } else {
                    ""
                }
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"runs_per_campaign\": {},\n", self.runs));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"campaigns\": {},\n", self.campaigns));
        out.push_str(&format!(
            "  \"golden_cache_off_secs\": {:.6},\n",
            self.off_secs
        ));
        out.push_str(&format!(
            "  \"golden_cache_on_secs\": {:.6},\n",
            self.on_secs
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!("  \"identical_results\": {}\n", self.identical));
        out.push_str("}\n");
        out
    }

    /// Renders the report as an ASCII table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Golden-artifact cache sweep speedup — {} ({} campaigns x {} runs, snapshots on)",
                self.workload, self.campaigns, self.runs
            ),
            &["Metric", "Value"],
        );
        t.row(vec![
            "components".into(),
            self.components
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ]);
        t.row(vec![
            "cache off (s)".into(),
            format!("{:.3}", self.off_secs),
        ]);
        t.row(vec!["cache on (s)".into(), format!("{:.3}", self.on_secs)]);
        t.row(vec!["speedup".into(), factor(self.speedup())]);
        t.row(vec![
            "identical results".into(),
            if self.identical { "yes" } else { "NO" }.into(),
        ]);
        t
    }
}

impl Experiments {
    /// Benchmarks every component's campaign with snapshots off then on,
    /// cross-checking that both paths classify identically.
    pub fn snapbench(&self, workload: Workload) -> SnapbenchReport {
        let faults = 2;
        let mut rows = Vec::new();
        for c in HwComponent::ALL {
            if self.verbose {
                eprintln!("  snapbench {c}/{workload}: plain path");
            }
            // Watchdog off: its shutdown poll (~100 ms) would floor the
            // fast path's wall-clock and understate the speedup; the cycle
            // limit (4 × T_ff) still bounds every run.
            let base = self
                .campaign_config(c, workload, faults)
                .run_wall_budget(None);
            let t0 = Instant::now();
            let off = Campaign::new(base.clone().use_snapshots(false)).run();
            let off_secs = t0.elapsed().as_secs_f64();
            if self.verbose {
                eprintln!("  snapbench {c}/{workload}: snapshot fast path");
            }
            let t1 = Instant::now();
            let on = Campaign::new(base.use_snapshots(true)).run();
            let on_secs = t1.elapsed().as_secs_f64();
            let stats = on.snapshot_stats.unwrap_or_default();
            rows.push(SnapbenchRow {
                component: c,
                off_secs,
                on_secs,
                classified_runs: off.counts.total(),
                restores: stats.restores,
                early_masked: stats.early_masked,
                identical: off.counts == on.counts,
            });
        }
        SnapbenchReport {
            workload,
            runs: self.runs,
            faults,
            seed: self.seed,
            rows,
        }
    }

    /// Benchmarks a components × 1/2/3-bit sweep over one workload with the
    /// golden-artifact cache off vs on (snapshots enabled on both sides),
    /// cross-checking that every campaign result and fingerprint is
    /// bit-identical.
    ///
    /// The loop replicates [`Experiments::run_sweep`]'s execution path
    /// inline rather than calling it: the sweep's default per-run wall
    /// budget arms a watchdog whose shutdown poll would add constant
    /// latency to both sides and dilute the measured speedup.
    ///
    /// Campaigns are capped at [`SWEEPBENCH_RUNS`] injections: the cache
    /// removes a *fixed* per-campaign cost (golden + snapshot-recording
    /// runs), so its wall-clock share — and this benchmark — is defined by
    /// the exploratory-sweep regime of short campaigns (resumes, adaptive
    /// early stopping, quick scans). At paper-scale run counts the same
    /// absolute savings still apply but vanish into injection time; the
    /// emitted JSON records the run count used.
    pub fn sweepbench(&self, workload: Workload, components: &[HwComponent]) -> SweepbenchReport {
        let mut bench = self.clone();
        bench.use_snapshots = true;
        bench.runs = bench.runs.min(SWEEPBENCH_RUNS);
        // Cache off: every campaign pays its own golden + recording run,
        // plus the sweep's one per-workload fingerprint golden run.
        if bench.verbose {
            eprintln!("  sweepbench {workload}: golden cache off");
        }
        let t0 = Instant::now();
        let mut off_results: Vec<CampaignResult> = Vec::new();
        for &c in components {
            for faults in 1..=3 {
                let cfg = bench
                    .campaign_config(c, workload, faults)
                    .run_wall_budget(None);
                off_results.push(Campaign::new(cfg).run());
            }
        }
        let off_fp = golden_fingerprint(bench.core, workload).ok();
        let off_secs = t0.elapsed().as_secs_f64();
        // Cache on: one shared artifact build covers the golden run, the
        // snapshot store and the fingerprint for every campaign.
        if bench.verbose {
            eprintln!("  sweepbench {workload}: golden cache on");
        }
        let t1 = Instant::now();
        let artifacts: GoldenArtifacts = Campaign::new(
            bench
                .campaign_config(components[0], workload, 1)
                .run_wall_budget(None),
        )
        .build_artifacts()
        .expect("fault-free run must exit cleanly");
        let mut on_results: Vec<CampaignResult> = Vec::new();
        for &c in components {
            for faults in 1..=3 {
                let cfg = bench
                    .campaign_config(c, workload, faults)
                    .run_wall_budget(None);
                on_results.push(
                    Campaign::new(cfg)
                        .try_run_with_artifacts(Some(&artifacts))
                        .expect("artifacts were built for this sweep"),
                );
            }
        }
        let on_fp = Some(bench.artifact_fingerprint(&artifacts));
        let on_secs = t1.elapsed().as_secs_f64();
        SweepbenchReport {
            workload,
            components: components.to_vec(),
            runs: bench.runs,
            seed: bench.seed,
            campaigns: off_results.len(),
            off_secs,
            on_secs,
            identical: off_results == on_results && off_fp == on_fp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapbench_rows_cover_all_components_and_classify_identically() {
        let e = Experiments {
            runs: 6,
            workloads: vec![Workload::Stringsearch],
            ..Experiments::default()
        };
        let report = e.snapbench(Workload::Stringsearch);
        assert_eq!(report.rows.len(), HwComponent::ALL.len());
        assert!(report.all_identical(), "off/on classifications must match");
        assert!(report.max_speedup() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"components\": ["));
        assert!(json.contains("\"l2\""));
        assert!(json.contains("\"all_identical\": true"));
        assert_eq!(report.table().len(), HwComponent::ALL.len());
    }

    #[test]
    fn sweepbench_produces_identical_results_and_renders() {
        let e = Experiments {
            runs: 6,
            workloads: vec![Workload::Stringsearch],
            ..Experiments::default()
        };
        let report = e.sweepbench(
            Workload::Stringsearch,
            &[HwComponent::RegFile, HwComponent::DTlb],
        );
        assert_eq!(report.campaigns, 6, "2 components x 3 cardinalities");
        assert!(
            report.identical,
            "cache on/off results must be bit-identical"
        );
        assert!(report.off_secs > 0.0 && report.on_secs > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"campaigns\": 6"));
        assert!(json.contains("\"identical_results\": true"));
        assert!(json.contains("\"regfile\", \"dtlb\""));
        assert_eq!(report.table().len(), 5);
    }
}
