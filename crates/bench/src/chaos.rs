//! Chaos harness for the injector's *own* infrastructure.
//!
//! The paper's methodology stands on the campaign engine being more
//! reliable than the hardware it models. This module turns the fault
//! injector on itself: [`ChaosIo`] wraps a [`StoreIo`] and injects
//! filesystem failures (rejected appends, torn writes, stalls) at
//! scripted call indices, and the file-corruption helpers flip bits and
//! truncate checkpoints at rest. The integration tests in
//! `tests/chaos.rs` use these to assert the sweep-level invariant:
//!
//! > Every sweep either completes with results **bit-identical** to an
//! > unfaulted sweep, or fails with a **typed error** — and a subsequent
//! > resume reproduces the unfaulted results exactly.
//!
//! Nothing here is test-only cfg'd: the harness is part of the public
//! surface so downstream users can chaos-test their own campaign drivers.

use crate::io::StoreIo;
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which append calls misbehave, by 0-based call index. A retried append
/// is a *new* call index, so transient-failure plans compose naturally
/// with [`crate::io::RetryIo`].
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Appends that fail outright (no bytes written).
    pub fail_appends: BTreeSet<usize>,
    /// One append that tears: only the first `keep_bytes` bytes reach the
    /// file, then the call reports failure — a crash mid-write.
    pub torn_append: Option<(usize, usize)>,
    /// From this call index on, *every* append fails (a persistently dead
    /// disk, not a transient hiccup).
    pub fail_appends_from: Option<usize>,
    /// Sleep this long before every append (a stalled NFS mount).
    pub stall: Option<Duration>,
}

impl ChaosPlan {
    /// No chaos at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail exactly the given append call indices.
    pub fn failing(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            fail_appends: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    fn should_fail(&self, index: usize) -> bool {
        if self.fail_appends.contains(&index) {
            return true;
        }
        matches!(self.fail_appends_from, Some(from) if index >= from)
    }
}

/// A [`StoreIo`] that injects scripted failures into append calls while
/// delegating everything else to the wrapped I/O. Reads and atomic writes
/// stay healthy: the interesting crash surface of a checkpointed sweep is
/// the incremental append path.
pub struct ChaosIo<'a> {
    inner: &'a dyn StoreIo,
    appends: AtomicUsize,
    plan: Mutex<ChaosPlan>,
}

impl<'a> ChaosIo<'a> {
    /// Wraps `inner` with a failure plan.
    pub fn new(inner: &'a dyn StoreIo, plan: ChaosPlan) -> Self {
        Self {
            inner,
            appends: AtomicUsize::new(0),
            plan: Mutex::new(plan),
        }
    }

    /// How many append calls have been attempted so far.
    pub fn append_calls(&self) -> usize {
        self.appends.load(Ordering::Relaxed)
    }

    /// Replaces the failure plan mid-flight (e.g. heal the disk after a
    /// crash has been provoked).
    pub fn set_plan(&self, plan: ChaosPlan) {
        *self.plan.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    fn plan_snapshot(&self) -> ChaosPlan {
        self.plan.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl StoreIo for ChaosIo<'_> {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.inner.read_to_string(path)
    }

    fn append(&self, path: &Path, text: &str) -> io::Result<()> {
        let index = self.appends.fetch_add(1, Ordering::Relaxed);
        let plan = self.plan_snapshot();
        if let Some(stall) = plan.stall {
            std::thread::sleep(stall);
        }
        if let Some((torn_index, keep_bytes)) = plan.torn_append {
            if index == torn_index {
                let keep = keep_bytes.min(text.len());
                // Write the prefix through the healthy inner I/O, then
                // report failure: the caller sees an error, the file holds
                // a torn row.
                self.inner.append(path, &text[..keep])?;
                return Err(io::Error::other(format!(
                    "chaos: append {index} torn after {keep} bytes"
                )));
            }
        }
        if plan.should_fail(index) {
            return Err(io::Error::other(format!("chaos: append {index} rejected")));
        }
        self.inner.append(path, text)
    }

    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        self.inner.write_atomic(path, text)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.inner.len(path)
    }
}

/// A scripted worker-process fault for the distributed-sweep chaos tests.
///
/// The crate forbids `unsafe`, so there is no `libc::kill` — instead the
/// fault fires *inside* the victim worker, wired into the campaign's
/// per-run hook, which reproduces the observable effect of each failure
/// mode: an abrupt `SIGKILL` (process vanishes mid-unit, shard file
/// possibly mid-append), a hung worker (process alive, no heartbeats, no
/// progress), or a worker that corrupts its control stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Exit abruptly (status 137, the `SIGKILL` exit code) after this many
    /// runs of the first assigned unit — no shutdown handshake, no final
    /// flush.
    KillMidUnit {
        /// Runs to execute before dying.
        after_runs: usize,
    },
    /// After this many runs, stop forever: mute the heartbeat thread and
    /// block the run in an endless sleep. The process stays alive, so only
    /// the supervisor's stall detector can reclaim the unit.
    HangMidUnit {
        /// Runs to execute before freezing.
        after_runs: usize,
    },
    /// Write garbage bytes into the control stream instead of the next
    /// protocol frame — a corrupted or truncated frame on the wire.
    GarbageFrames,
    /// Exit abruptly (status 137) immediately after the Nth completed
    /// unit's row is durably in the shard store but *before* the `Done`
    /// acknowledgement is sent — the precise window where work is done on
    /// disk yet the supervisor believes it lost. This is the fault the
    /// worker-rejoin recovery path exists for.
    DieAfterPersist {
        /// Completed-and-persisted units before dying.
        after_units: usize,
    },
}

impl WorkerFault {
    /// Parses a fault spec: `kill-mid-unit:N`, `hang-mid-unit:N`,
    /// `die-after-persist:N` or `garbage-frames`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown kinds or malformed counts.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, arg) = match spec.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (spec, None),
        };
        let after = |arg: Option<&str>| -> Result<usize, String> {
            arg.ok_or_else(|| format!("fault `{kind}` needs `:N`"))?
                .parse()
                .map_err(|e| format!("bad run count in `{spec}`: {e}"))
        };
        match kind {
            "kill-mid-unit" => Ok(WorkerFault::KillMidUnit {
                after_runs: after(arg)?,
            }),
            "hang-mid-unit" => Ok(WorkerFault::HangMidUnit {
                after_runs: after(arg)?,
            }),
            "garbage-frames" => Ok(WorkerFault::GarbageFrames),
            "die-after-persist" => Ok(WorkerFault::DieAfterPersist {
                after_units: after(arg)?,
            }),
            other => Err(format!("unknown worker fault `{other}`")),
        }
    }
}

/// Worker-side chaos driver: counts runs and fires the configured
/// [`WorkerFault`] at its scripted point. One instance is shared between a
/// worker's campaign run-hook and its heartbeat thread.
#[derive(Debug, Default)]
pub struct WorkerChaos {
    fault: Option<WorkerFault>,
    runs_seen: AtomicUsize,
    units_persisted: AtomicUsize,
    muted: std::sync::atomic::AtomicBool,
}

/// The supervisor-side env var: `<worker index>:<fault spec>`. The
/// supervisor consumes it and passes the bare spec to the targeted worker
/// via [`WORKER_FAULT_ENV`] — respawned replacements never inherit it, so
/// a killed worker does not kill its replacement.
pub const CHAOS_WORKER_ENV: &str = "MBU_CHAOS_WORKER";

/// The worker-side env var holding a bare fault spec.
pub const WORKER_FAULT_ENV: &str = "MBU_CHAOS_FAULT";

impl WorkerChaos {
    /// No chaos.
    pub fn none() -> Self {
        Self::default()
    }

    /// A driver firing `fault`.
    pub fn with_fault(fault: WorkerFault) -> Self {
        Self {
            fault: Some(fault),
            ..Self::default()
        }
    }

    /// Builds from [`WORKER_FAULT_ENV`] (no chaos when unset).
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — chaos wiring is test scaffolding, and
    /// a typo'd fault silently not firing would pass the test it was meant
    /// to arm.
    pub fn from_env() -> Self {
        match std::env::var(WORKER_FAULT_ENV) {
            Ok(spec) => match WorkerFault::parse(&spec) {
                Ok(fault) => Self::with_fault(fault),
                Err(e) => panic!("{WORKER_FAULT_ENV}: {e}"),
            },
            Err(_) => Self::none(),
        }
    }

    /// Parses the supervisor-side [`CHAOS_WORKER_ENV`] into a (worker
    /// index, fault spec) pair, `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value (see [`WorkerChaos::from_env`]).
    pub fn target_from_env() -> Option<(usize, String)> {
        let v = std::env::var(CHAOS_WORKER_ENV).ok()?;
        let (index, spec) = v
            .split_once(':')
            .unwrap_or_else(|| panic!("{CHAOS_WORKER_ENV} must be `<worker index>:<fault>`"));
        let index = index
            .parse()
            .unwrap_or_else(|e| panic!("{CHAOS_WORKER_ENV}: bad worker index: {e}"));
        // Validate the spec eagerly so the failure is at the supervisor,
        // not buried in a worker's stderr.
        if let Err(e) = WorkerFault::parse(spec) {
            panic!("{CHAOS_WORKER_ENV}: {e}");
        }
        Some((index, spec.to_string()))
    }

    /// Hook point for the campaign's per-run hook: counts the run and
    /// fires kill/hang faults at their scripted run count.
    pub fn on_run(&self) {
        let seen = self.runs_seen.fetch_add(1, Ordering::Relaxed) + 1;
        match self.fault {
            Some(WorkerFault::KillMidUnit { after_runs }) if seen == after_runs => {
                // 128 + 9: the wait-status a genuinely SIGKILLed process
                // reports. No flush, no unwinding past this point.
                std::process::exit(137);
            }
            Some(WorkerFault::HangMidUnit { after_runs }) if seen == after_runs => {
                self.muted.store(true, Ordering::SeqCst);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            _ => {}
        }
    }

    /// Hook point for the worker loop, called after a completed unit's row
    /// is durably appended to the shard store and before the `Done` frame
    /// is written: fires the die-after-persist fault at its scripted unit
    /// count.
    pub fn on_unit_persisted(&self) {
        let seen = self.units_persisted.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(WorkerFault::DieAfterPersist { after_units }) = self.fault {
            if seen == after_units {
                // Same abrupt exit as kill-mid-unit: no flush, no ack.
                std::process::exit(137);
            }
        }
    }

    /// Whether the heartbeat thread must stop sending (the hang fault has
    /// fired — a frozen process sends nothing).
    pub fn heartbeat_muted(&self) -> bool {
        self.muted.load(Ordering::SeqCst)
    }

    /// Whether the garbage-frames fault is armed.
    pub fn garbage_frames(&self) -> bool {
        matches!(self.fault, Some(WorkerFault::GarbageFrames))
    }

    /// Runs executed so far (test observability).
    pub fn runs_seen(&self) -> usize {
        self.runs_seen.load(Ordering::Relaxed)
    }
}

/// A scripted misbehaving HTTP client for chaos-proofing the injection
/// service's acceptor. Each fault is fired *at* a live daemon from the
/// outside ([`HttpFault::fire`]); the contract under test is that every
/// one yields a typed 4xx/timeout response or a clean close — never a
/// wedged acceptor thread, a leaked connection slot, or corrupted job
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpFault {
    /// Open a connection, send a few bytes of request line, then go
    /// silent while holding the socket open — the classic slow-loris.
    /// Expected: a typed 408 once the server's I/O budget expires.
    SlowLoris,
    /// Send headers promising a `Content-Length` body, write only part of
    /// it, then half-close. Expected: a typed 400 for the truncated body.
    TornBody,
    /// Disconnect abruptly mid-request-line. Expected: a clean close
    /// server-side (nothing to respond to) and a healthy acceptor after.
    MidStreamDisconnect,
    /// Send an unbounded stream of headers. Expected: a typed 431 once
    /// the server's header cap is hit.
    HeaderFlood,
}

/// What the server observably did in response to an [`HttpFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpFaultOutcome {
    /// The server answered with an HTTP status line — a typed response.
    Status(u16),
    /// The server closed the connection without a response (the correct
    /// answer to a client that vanished mid-request).
    Closed,
}

/// The env var naming HTTP faults to fire: a comma-separated list of
/// kebab specs (`slow-loris,header-flood`) or `all`.
pub const CHAOS_HTTP_ENV: &str = "MBU_CHAOS_HTTP";

impl HttpFault {
    /// Every fault in the family, in firing order.
    pub fn all() -> [HttpFault; 4] {
        [
            HttpFault::SlowLoris,
            HttpFault::TornBody,
            HttpFault::MidStreamDisconnect,
            HttpFault::HeaderFlood,
        ]
    }

    /// The fault's kebab-case spec name.
    pub fn kind(self) -> &'static str {
        match self {
            HttpFault::SlowLoris => "slow-loris",
            HttpFault::TornBody => "torn-body",
            HttpFault::MidStreamDisconnect => "mid-stream-disconnect",
            HttpFault::HeaderFlood => "header-flood",
        }
    }

    /// Parses one kebab spec.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown kinds.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "slow-loris" => Ok(HttpFault::SlowLoris),
            "torn-body" => Ok(HttpFault::TornBody),
            "mid-stream-disconnect" => Ok(HttpFault::MidStreamDisconnect),
            "header-flood" => Ok(HttpFault::HeaderFlood),
            other => Err(format!("unknown HTTP fault `{other}`")),
        }
    }

    /// Builds the firing list from [`CHAOS_HTTP_ENV`] (empty when unset;
    /// `all` expands to the whole family).
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a typo'd fault silently not firing
    /// would pass the test it was meant to arm.
    pub fn from_env() -> Vec<HttpFault> {
        match std::env::var(CHAOS_HTTP_ENV) {
            Ok(v) if v.trim() == "all" => HttpFault::all().to_vec(),
            Ok(v) => v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| match HttpFault::parse(s) {
                    Ok(f) => f,
                    Err(e) => panic!("{CHAOS_HTTP_ENV}: {e}"),
                })
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Fires this fault at `addr` and reports what the server did. The
    /// client waits up to `patience` for a response — set it comfortably
    /// above the server's I/O budget so a slow-loris 408 is observed
    /// rather than raced.
    ///
    /// # Errors
    ///
    /// I/O errors from connecting or reading (a *connect* failure means
    /// the acceptor is wedged — exactly what the chaos tests fail on).
    pub fn fire(self, addr: &str, patience: Duration) -> io::Result<HttpFaultOutcome> {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(patience))?;
        match self {
            HttpFault::SlowLoris => {
                stream.write_all(b"GET /healthz HT")?;
                // Hold the socket open and silent; the server's deadline
                // must fire, not ours.
            }
            HttpFault::TornBody => {
                stream.write_all(
                    b"POST /sweeps HTTP/1.1\r\nContent-Type: application/json\r\n\
                      Content-Length: 512\r\n\r\n{\"runs\": 8",
                )?;
                // Half-close: the body can never complete, but the read
                // side stays open for the server's verdict.
                stream.shutdown(std::net::Shutdown::Write)?;
            }
            HttpFault::MidStreamDisconnect => {
                stream.write_all(b"POST /sweeps HTTP/1.1\r\nContent-")?;
                stream.shutdown(std::net::Shutdown::Both)?;
                return Ok(HttpFaultOutcome::Closed);
            }
            HttpFault::HeaderFlood => {
                stream.write_all(b"GET /healthz HTTP/1.1\r\n")?;
                // Keep flooding until the server gives up on us; write
                // errors (reset after the 431) end the flood, not the test.
                for i in 0..10_000 {
                    let header = format!("X-Flood-{i}: {}\r\n", "a".repeat(64));
                    if stream.write_all(header.as_bytes()).is_err() {
                        break;
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Write);
            }
        }
        let mut reply = Vec::new();
        match stream.read_to_end(&mut reply) {
            Ok(_) => {}
            // A reset instead of EOF still counts as a close if nothing
            // was received; with bytes in hand, parse what we got.
            Err(_) if reply.is_empty() => return Ok(HttpFaultOutcome::Closed),
            Err(_) => {}
        }
        if reply.is_empty() {
            return Ok(HttpFaultOutcome::Closed);
        }
        let text = String::from_utf8_lossy(&reply);
        let status = text
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| io::Error::other(format!("unparseable reply: {text:.60}")))?;
        Ok(HttpFaultOutcome::Status(status))
    }
}

/// Truncates the file to its first `keep` bytes — a crash that tore the
/// tail off a checkpoint.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    file.sync_all()
}

/// Flips one bit of the file in place — silent at-rest corruption, exactly
/// the fault model the paper studies, aimed at the injector's own records.
///
/// # Errors
///
/// Propagates I/O errors; out-of-range `byte` is an error, not a panic.
pub fn flip_file_bit(path: &Path, byte: u64, bit: u8) -> io::Result<()> {
    let mut data = std::fs::read(path)?;
    let i = usize::try_from(byte).map_err(io::Error::other)?;
    if i >= data.len() {
        return Err(io::Error::other(format!(
            "byte {i} out of range (file is {} bytes)",
            data.len()
        )));
    }
    data[i] ^= 1 << (bit % 8);
    std::fs::write(path, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mbu-chaos-{tag}-{}", std::process::id()))
    }

    #[test]
    fn scripted_appends_fail_and_heal() {
        let dir = tmpdir("plan");
        let path = dir.join("f.csv");
        let io = ChaosIo::new(&RealIo, ChaosPlan::failing([1]));
        io.append(&path, "a\n").unwrap();
        assert!(io.append(&path, "b\n").is_err(), "call 1 scripted to fail");
        io.append(&path, "c\n").unwrap();
        assert_eq!(io.read_to_string(&path).unwrap(), "a\nc\n");
        assert_eq!(io.append_calls(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_leaves_prefix_and_errors() {
        let dir = tmpdir("torn");
        let path = dir.join("f.csv");
        let io = ChaosIo::new(
            &RealIo,
            ChaosPlan {
                torn_append: Some((0, 4)),
                ..ChaosPlan::default()
            },
        );
        let err = io.append(&path, "0123456789\n").unwrap_err();
        assert!(err.to_string().contains("torn"));
        assert_eq!(io.read_to_string(&path).unwrap(), "0123");
        // The next call is healthy.
        io.append(&path, "rest\n").unwrap();
        assert_eq!(io.read_to_string(&path).unwrap(), "0123rest\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_failure_from_index() {
        let dir = tmpdir("dead");
        let path = dir.join("f.csv");
        let io = ChaosIo::new(
            &RealIo,
            ChaosPlan {
                fail_appends_from: Some(1),
                ..ChaosPlan::default()
            },
        );
        io.append(&path, "a\n").unwrap();
        for _ in 0..3 {
            assert!(io.append(&path, "x\n").is_err());
        }
        // Healing the plan restores service.
        io.set_plan(ChaosPlan::none());
        io.append(&path, "b\n").unwrap();
        assert_eq!(io.read_to_string(&path).unwrap(), "a\nb\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_fault_specs_parse() {
        assert_eq!(
            WorkerFault::parse("kill-mid-unit:25"),
            Ok(WorkerFault::KillMidUnit { after_runs: 25 })
        );
        assert_eq!(
            WorkerFault::parse("hang-mid-unit:3"),
            Ok(WorkerFault::HangMidUnit { after_runs: 3 })
        );
        assert_eq!(
            WorkerFault::parse("garbage-frames"),
            Ok(WorkerFault::GarbageFrames)
        );
        assert_eq!(
            WorkerFault::parse("die-after-persist:1"),
            Ok(WorkerFault::DieAfterPersist { after_units: 1 })
        );
        assert!(WorkerFault::parse("die-after-persist").is_err());
        assert!(WorkerFault::parse("kill-mid-unit").is_err());
        assert!(WorkerFault::parse("kill-mid-unit:x").is_err());
        assert!(WorkerFault::parse("segfault").is_err());
    }

    #[test]
    fn http_fault_specs_parse() {
        for fault in HttpFault::all() {
            assert_eq!(HttpFault::parse(fault.kind()), Ok(fault));
        }
        assert!(HttpFault::parse("teardrop").is_err());
        std::env::remove_var(CHAOS_HTTP_ENV);
        assert!(HttpFault::from_env().is_empty());
        std::env::set_var(CHAOS_HTTP_ENV, "slow-loris, header-flood");
        assert_eq!(
            HttpFault::from_env(),
            vec![HttpFault::SlowLoris, HttpFault::HeaderFlood]
        );
        std::env::set_var(CHAOS_HTTP_ENV, "all");
        assert_eq!(HttpFault::from_env(), HttpFault::all().to_vec());
        std::env::remove_var(CHAOS_HTTP_ENV);
    }

    #[test]
    fn worker_chaos_counts_without_fault() {
        let chaos = WorkerChaos::none();
        for _ in 0..5 {
            chaos.on_run();
        }
        assert_eq!(chaos.runs_seen(), 5);
        assert!(!chaos.heartbeat_muted());
        assert!(!chaos.garbage_frames());
    }

    #[test]
    fn file_corruption_helpers() {
        let dir = tmpdir("corrupt");
        let path = dir.join("f.csv");
        RealIo.append(&path, "hello world\n").unwrap();
        flip_file_bit(&path, 0, 1).unwrap();
        assert_eq!(RealIo.read_to_string(&path).unwrap(), "jello world\n");
        truncate_file(&path, 5).unwrap();
        assert_eq!(RealIo.read_to_string(&path).unwrap(), "jello");
        assert!(
            flip_file_bit(&path, 999, 0).is_err(),
            "out of range is typed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
