//! Wire protocol between the distributed-sweep supervisor and its worker
//! processes: length-prefixed JSON frames over stdio or TCP.
//!
//! The JSON value itself lives in [`mbu_gefin::json`] (re-exported here as
//! [`Json`]) so the HTTP service layer can share it; this module owns the
//! framing and the typed message vocabulary.
//!
//! Framing is `<ASCII decimal byte length>\n<payload>`. The length line
//! makes truncation detectable (a dead worker cannot leave a frame that
//! parses), and [`MAX_FRAME`] bounds what a garbage length line can make
//! the supervisor allocate. Anything malformed surfaces as a typed
//! [`ProtocolError`] — the supervisor treats it as a worker fault, never
//! as data.

use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AdaptiveSpec, UnitSpec};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::exhaustive::{ExhaustiveSpec, StratifiedSpec};
use mbu_gefin::integrity::GoldenFingerprint;
use mbu_gefin::json::JsonError;
use mbu_workloads::Workload;
use std::fmt;
use std::io::{BufRead, Write};

use crate::store::{component_slug, ShardRow, ShardStratified};

pub use mbu_gefin::json::Json;

/// Upper bound on a single frame's payload, in bytes. Control messages are
/// tiny; a length line above this is garbage by definition.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame or message could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The framing layer was violated: a non-numeric or oversized length
    /// line, or a payload shorter than its declared length.
    Frame(String),
    /// The payload was not valid JSON.
    Json(String),
    /// The JSON was well-formed but not a recognizable message.
    Message(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Eof => f.write_str("peer closed the stream"),
            ProtocolError::Frame(m) => write!(f, "bad frame: {m}"),
            ProtocolError::Json(m) => write!(f, "bad JSON: {m}"),
            ProtocolError::Message(m) => write!(f, "bad message: {m}"),
            ProtocolError::Io(e) => write!(f, "protocol I/O: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e.to_string())
    }
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates I/O errors (a broken pipe here means the peer died).
pub fn write_frame(w: &mut dyn Write, json: &Json) -> std::io::Result<()> {
    let payload = json.encode();
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// [`ProtocolError::Eof`] on clean close at a frame boundary;
/// [`ProtocolError::Frame`] on a garbage length line, an oversized length,
/// or a payload truncated mid-frame; [`ProtocolError::Json`] if the payload
/// is not JSON.
pub fn read_frame(r: &mut dyn BufRead) -> Result<Json, ProtocolError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(ProtocolError::Eof);
    }
    let trimmed = line.trim();
    let len: usize = trimmed
        .parse()
        .map_err(|_| ProtocolError::Frame(format!("length line {trimmed:?} is not a number")))?;
    if len > MAX_FRAME {
        return Err(ProtocolError::Frame(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| ProtocolError::Frame(format!("payload truncated: {e}")))?;
    let text = String::from_utf8(payload)
        .map_err(|_| ProtocolError::Frame("payload is not UTF-8".into()))?;
    Ok(Json::parse(&text)?)
}

/// The experiment parameters a worker needs to reconstruct the exact
/// campaign a supervisor planned: everything in [`crate::Experiments`] that
/// affects classification or checkpoint rows. The core configuration is
/// not carried — both sides build the same default, and any drift is caught
/// by golden-fingerprint verification at merge time.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpSpec {
    /// Runs per full campaign.
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Worker threads per campaign (0 = available parallelism).
    pub threads: usize,
    /// Adaptive early stopping (whole-campaign units only).
    pub adaptive: Option<AdaptiveSpec>,
    /// Checkpoint/restore fast-forward injection.
    pub use_snapshots: bool,
    /// Snapshot interval override, in cycles.
    pub snapshot_interval: Option<u64>,
    /// Snapshot memory cap, in MiB.
    pub snapshot_mem_mb: Option<u64>,
    /// Sweep-wide golden-artifact cache (per-process in a worker).
    pub use_golden_cache: bool,
    /// Equivalence-class dispatch: `Some` turns the assigned unit's
    /// `[start, end)` into a *class range* over the campaign's dense live
    /// order (or a whole-campaign stratified sampler) instead of a run
    /// range. Absent on run-range units, so old and new peers interoperate
    /// on the sampled path.
    pub equiv: Option<EquivSpec>,
}

/// The equivalence-class engine knobs a worker needs to rebuild the exact
/// [`mbu_gefin::exhaustive::ExhaustivePlan`] the supervisor planned from.
/// The plan is deterministic in these plus the golden run, and any drift
/// is still caught by golden-fingerprint verification at merge time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivSpec {
    /// Representative picker / class-cap / snapshot-alignment knobs.
    pub exhaustive: ExhaustiveSpec,
    /// `Some` makes the unit a whole-campaign class-weighted stratified
    /// sampler (L1/L2 scale); `None` makes it an exhaustive class range.
    pub stratified: Option<StratifiedSpec>,
}

impl EquivSpec {
    fn to_json(self) -> Json {
        let strat = match self.stratified {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("target_margin".into(), Json::f64(s.target_margin)),
                ("z".into(), Json::f64(s.z)),
                ("min_draws".into(), Json::u64(s.min_draws)),
                ("batch".into(), Json::u64(s.batch)),
                ("max_draws".into(), Json::u64(s.max_draws)),
                ("seed".into(), Json::u64(s.seed)),
            ]),
        };
        Json::Obj(vec![
            ("rep_seed".into(), Json::u64(self.exhaustive.rep_seed)),
            ("max_classes".into(), Json::u64(self.exhaustive.max_classes)),
            ("snap_align".into(), Json::Bool(self.exhaustive.snap_align)),
            ("strat".into(), strat),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let stratified = match v.get("strat") {
            None | Some(Json::Null) => None,
            Some(s) => Some(StratifiedSpec {
                target_margin: get_f64(s, "target_margin")?,
                z: get_f64(s, "z")?,
                min_draws: get_u64(s, "min_draws")?,
                batch: get_u64(s, "batch")?,
                max_draws: get_u64(s, "max_draws")?,
                seed: get_u64(s, "seed")?,
            }),
        };
        Ok(Self {
            exhaustive: ExhaustiveSpec {
                rep_seed: get_u64(v, "rep_seed")?,
                max_classes: get_u64(v, "max_classes")?,
                snap_align: get_bool(v, "snap_align")?,
            },
            stratified,
        })
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(v) => Json::u64(v),
        None => Json::Null,
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-integer field `{key}`")))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-integer field `{key}`")))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-numeric field `{key}`")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-bool field `{key}`")))
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-string field `{key}`")))
}

fn get_opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::Message(format!("non-integer field `{key}`"))),
    }
}

impl ExpSpec {
    /// Encodes to a JSON object.
    pub fn to_json(&self) -> Json {
        let adaptive = match &self.adaptive {
            None => Json::Null,
            Some(a) => Json::Obj(vec![
                ("target_margin".into(), Json::f64(a.target_margin)),
                ("z".into(), Json::f64(a.z)),
                ("min_runs".into(), Json::usize(a.min_runs)),
                ("batch".into(), Json::usize(a.batch)),
            ]),
        };
        Json::Obj(vec![
            ("runs".into(), Json::usize(self.runs)),
            ("seed".into(), Json::u64(self.seed)),
            ("threads".into(), Json::usize(self.threads)),
            ("adaptive".into(), adaptive),
            ("snapshots".into(), Json::Bool(self.use_snapshots)),
            ("snap_interval".into(), opt_u64(self.snapshot_interval)),
            ("snap_mem_mb".into(), opt_u64(self.snapshot_mem_mb)),
            ("golden_cache".into(), Json::Bool(self.use_golden_cache)),
            (
                "equiv".into(),
                match self.equiv {
                    None => Json::Null,
                    Some(e) => e.to_json(),
                },
            ),
        ])
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on a missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let adaptive = match v.get("adaptive") {
            None | Some(Json::Null) => None,
            Some(a) => Some(AdaptiveSpec {
                target_margin: get_f64(a, "target_margin")?,
                z: get_f64(a, "z")?,
                min_runs: get_usize(a, "min_runs")?,
                batch: get_usize(a, "batch")?,
            }),
        };
        Ok(Self {
            runs: get_usize(v, "runs")?,
            seed: get_u64(v, "seed")?,
            threads: get_usize(v, "threads")?,
            adaptive,
            use_snapshots: get_bool(v, "snapshots")?,
            snapshot_interval: get_opt_u64(v, "snap_interval")?,
            snapshot_mem_mb: get_opt_u64(v, "snap_mem_mb")?,
            use_golden_cache: get_bool(v, "golden_cache")?,
            equiv: match v.get("equiv") {
                None | Some(Json::Null) => None,
                Some(e) => Some(EquivSpec::from_json(e)?),
            },
        })
    }
}

fn row_to_json(r: &ShardRow) -> Json {
    let mut fields = vec![
        ("unit".into(), unit_to_json(&r.unit)),
        ("seed".into(), Json::u64(r.seed)),
        ("masked".into(), Json::u64(r.counts.masked)),
        ("sdc".into(), Json::u64(r.counts.sdc)),
        ("crash".into(), Json::u64(r.counts.crash)),
        ("timeout".into(), Json::u64(r.counts.timeout)),
        ("assert".into(), Json::u64(r.counts.assert_)),
        ("cycles".into(), Json::u64(r.fault_free_cycles)),
        ("instr".into(), Json::u64(r.fault_free_instructions)),
        ("fp".into(), Json::Str(r.fingerprint.to_string())),
    ];
    if let Some(ex) = &r.exhaustive {
        let mut ex_fields = vec![
            ("masked".into(), Json::u64(ex.weighted.masked)),
            ("sdc".into(), Json::u64(ex.weighted.sdc)),
            ("crash".into(), Json::u64(ex.weighted.crash)),
            ("timeout".into(), Json::u64(ex.weighted.timeout)),
            ("assert".into(), Json::u64(ex.weighted.assert_)),
            ("weight".into(), Json::u64(ex.weight_total)),
            ("pruned".into(), Json::u64(ex.pruned)),
        ];
        if let Some(s) = &ex.stratified {
            ex_fields.push(("margin_bits".into(), Json::u64(s.margin_bits)));
            ex_fields.push(("simulated".into(), Json::u64(s.simulated)));
        }
        fields.push(("ex".into(), Json::Obj(ex_fields)));
    }
    Json::Obj(fields)
}

fn row_from_json(v: &Json) -> Result<ShardRow, ProtocolError> {
    let fp: GoldenFingerprint = get_str(v, "fp")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad fingerprint: {e}")))?;
    let exhaustive = match v.get("ex") {
        None | Some(Json::Null) => None,
        Some(ex) => {
            let stratified = match (
                get_opt_u64(ex, "margin_bits")?,
                get_opt_u64(ex, "simulated")?,
            ) {
                (None, None) => None,
                (Some(margin_bits), Some(simulated)) => Some(ShardStratified {
                    margin_bits,
                    simulated,
                }),
                _ => {
                    return Err(ProtocolError::Message(
                        "stratified annotation needs both `margin_bits` and `simulated`".into(),
                    ))
                }
            };
            Some(crate::store::ShardExhaustive {
                weighted: ClassCounts {
                    masked: get_u64(ex, "masked")?,
                    sdc: get_u64(ex, "sdc")?,
                    crash: get_u64(ex, "crash")?,
                    timeout: get_u64(ex, "timeout")?,
                    assert_: get_u64(ex, "assert")?,
                },
                weight_total: get_u64(ex, "weight")?,
                pruned: get_u64(ex, "pruned")?,
                stratified,
            })
        }
    };
    Ok(ShardRow {
        unit: unit_from_json(
            v.get("unit")
                .ok_or_else(|| ProtocolError::Message("missing `unit`".into()))?,
        )?,
        seed: get_u64(v, "seed")?,
        counts: ClassCounts {
            masked: get_u64(v, "masked")?,
            sdc: get_u64(v, "sdc")?,
            crash: get_u64(v, "crash")?,
            timeout: get_u64(v, "timeout")?,
            assert_: get_u64(v, "assert")?,
        },
        fault_free_cycles: get_u64(v, "cycles")?,
        fault_free_instructions: get_u64(v, "instr")?,
        fingerprint: fp,
        exhaustive,
    })
}

fn unit_to_json(u: &UnitSpec) -> Json {
    Json::Obj(vec![
        ("comp".into(), Json::Str(component_slug(u.component).into())),
        ("wl".into(), Json::Str(u.workload.name().into())),
        ("faults".into(), Json::usize(u.faults)),
        ("start".into(), Json::usize(u.start)),
        ("end".into(), Json::usize(u.end)),
    ])
}

fn unit_from_json(v: &Json) -> Result<UnitSpec, ProtocolError> {
    let component: HwComponent = get_str(v, "comp")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad component: {e}")))?;
    let workload: Workload = get_str(v, "wl")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad workload: {e}")))?;
    Ok(UnitSpec {
        component,
        workload,
        faults: get_usize(v, "faults")?,
        start: get_usize(v, "start")?,
        end: get_usize(v, "end")?,
    })
}

/// Supervisor → worker messages.
///
/// `Assign` dominates both traffic and allocation count, so the size
/// skew against the payload-free `Shutdown` is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Run this unit under these experiment parameters.
    Assign {
        /// Supervisor-assigned unit identity (echoed in every reply).
        unit_id: u64,
        /// The run-range to execute.
        unit: UnitSpec,
        /// The campaign parameters.
        exp: ExpSpec,
    },
    /// Finish up and exit cleanly.
    Shutdown,
}

impl ToWorker {
    /// Encodes to a JSON object with a `t` discriminator.
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Assign { unit_id, unit, exp } => Json::Obj(vec![
                ("t".into(), Json::Str("assign".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("unit".into(), unit_to_json(unit)),
                ("exp".into(), exp.to_json()),
            ]),
            ToWorker::Shutdown => Json::Obj(vec![("t".into(), Json::Str("shutdown".into()))]),
        }
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on an unknown discriminator or a missing
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match get_str(v, "t")? {
            "assign" => Ok(ToWorker::Assign {
                unit_id: get_u64(v, "id")?,
                unit: unit_from_json(
                    v.get("unit")
                        .ok_or_else(|| ProtocolError::Message("missing `unit`".into()))?,
                )?,
                exp: ExpSpec::from_json(
                    v.get("exp")
                        .ok_or_else(|| ProtocolError::Message("missing `exp`".into()))?,
                )?,
            }),
            "shutdown" => Ok(ToWorker::Shutdown),
            other => Err(ProtocolError::Message(format!(
                "unknown supervisor message `{other}`"
            ))),
        }
    }
}

/// Worker → supervisor messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToSupervisor {
    /// First message after startup.
    Hello {
        /// The worker's OS process id, for diagnostics.
        pid: u32,
        /// Stable worker identity for session resume. A reconnecting TCP
        /// worker that presents the id of a lost slot rejoins the pool
        /// instead of counting as a brand-new worker. Spawned stdio
        /// workers leave this unset.
        worker_id: Option<String>,
    },
    /// Periodic liveness signal while a unit is in flight.
    Heartbeat {
        /// The unit being executed.
        unit_id: u64,
        /// Runs of the unit completed so far (monotonic).
        done: usize,
    },
    /// The unit completed and its row is durably in the worker's shard
    /// store. The row rides along so a supervisor on the other end of a
    /// TCP link (which cannot read the worker's local shard file) can
    /// persist it into its own shard store; for stdio workers the file on
    /// disk is the authoritative copy and this is a control-plane echo.
    Done {
        /// The completed unit.
        unit_id: u64,
        /// The shard row the worker persisted.
        row: ShardRow,
        /// Anomalies the campaign logged (panics, wall-clock overruns).
        anomalies: usize,
    },
    /// A row replayed from the worker's shard store at startup: work that
    /// was persisted durably but possibly never acknowledged (the worker
    /// died between its shard append and its `Done` frame). The supervisor
    /// uses these to retire matching requeued units without re-running
    /// them; stale or unknown rows are simply ignored — the merge dedups.
    Recovered {
        /// The replayed shard row.
        row: ShardRow,
    },
    /// The unit failed with a campaign-level error.
    Fail {
        /// The failed unit.
        unit_id: u64,
        /// Display form of the error.
        error: String,
    },
}

impl ToSupervisor {
    /// Encodes to a JSON object with a `t` discriminator.
    pub fn to_json(&self) -> Json {
        match self {
            ToSupervisor::Hello { pid, worker_id } => {
                let mut fields = vec![
                    ("t".into(), Json::Str("hello".into())),
                    ("pid".into(), Json::u64(*pid as u64)),
                ];
                if let Some(id) = worker_id {
                    fields.push(("wid".into(), Json::Str(id.clone())));
                }
                Json::Obj(fields)
            }
            ToSupervisor::Heartbeat { unit_id, done } => Json::Obj(vec![
                ("t".into(), Json::Str("hb".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("done".into(), Json::usize(*done)),
            ]),
            ToSupervisor::Done {
                unit_id,
                row,
                anomalies,
            } => Json::Obj(vec![
                ("t".into(), Json::Str("done".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("row".into(), row_to_json(row)),
                ("anomalies".into(), Json::usize(*anomalies)),
            ]),
            ToSupervisor::Recovered { row } => Json::Obj(vec![
                ("t".into(), Json::Str("recovered".into())),
                ("row".into(), row_to_json(row)),
            ]),
            ToSupervisor::Fail { unit_id, error } => Json::Obj(vec![
                ("t".into(), Json::Str("fail".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("error".into(), Json::Str(error.clone())),
            ]),
        }
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on an unknown discriminator or a missing
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match get_str(v, "t")? {
            "hello" => Ok(ToSupervisor::Hello {
                pid: get_u64(v, "pid")? as u32,
                worker_id: match v.get("wid") {
                    None | Some(Json::Null) => None,
                    Some(w) => Some(
                        w.as_str()
                            .ok_or_else(|| ProtocolError::Message("non-string field `wid`".into()))?
                            .to_string(),
                    ),
                },
            }),
            "hb" => Ok(ToSupervisor::Heartbeat {
                unit_id: get_u64(v, "id")?,
                done: get_usize(v, "done")?,
            }),
            "done" => Ok(ToSupervisor::Done {
                unit_id: get_u64(v, "id")?,
                row: row_from_json(
                    v.get("row")
                        .ok_or_else(|| ProtocolError::Message("missing `row`".into()))?,
                )?,
                anomalies: get_usize(v, "anomalies")?,
            }),
            "recovered" => Ok(ToSupervisor::Recovered {
                row: row_from_json(
                    v.get("row")
                        .ok_or_else(|| ProtocolError::Message("missing `row`".into()))?,
                )?,
            }),
            "fail" => Ok(ToSupervisor::Fail {
                unit_id: get_u64(v, "id")?,
                error: get_str(v, "error")?.to_string(),
            }),
            other => Err(ProtocolError::Message(format!(
                "unknown worker message `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_frame(json: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, json).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        read_frame(&mut reader).unwrap()
    }

    fn sample_row() -> ShardRow {
        ShardRow {
            unit: UnitSpec {
                component: HwComponent::DTlb,
                workload: Workload::Qsort,
                faults: 2,
                start: 50,
                end: 125,
            },
            seed: u64::MAX,
            counts: ClassCounts {
                masked: 70,
                sdc: 2,
                crash: 2,
                timeout: 1,
                assert_: 0,
            },
            fault_free_cycles: 123_456,
            fault_free_instructions: 65_432,
            fingerprint: GoldenFingerprint(0x0123_4567_89ab_cdef),
            exhaustive: None,
        }
    }

    #[test]
    fn frames_roundtrip() {
        let msg = Json::Obj(vec![
            ("t".into(), Json::Str("hb".into())),
            ("id".into(), Json::u64(7)),
        ]);
        assert_eq!(roundtrip_frame(&msg), msg);
    }

    #[test]
    fn frame_reader_types_each_failure() {
        // Clean EOF.
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
        // Garbage length line.
        let mut r = BufReader::new(&b"not-a-number\n{}"[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Oversized length.
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = BufReader::new(huge.as_bytes());
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Truncated payload (worker died mid-write).
        let mut r = BufReader::new(&b"10\n{\"t\""[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Valid frame, non-JSON payload.
        let mut r = BufReader::new(&b"3\nxyz"[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Json(_))));
    }

    #[test]
    fn assign_roundtrips_with_all_options() {
        let msg = ToWorker::Assign {
            unit_id: 42,
            unit: UnitSpec {
                component: HwComponent::L1D,
                workload: Workload::Sha,
                faults: 3,
                start: 50,
                end: 125,
            },
            exp: ExpSpec {
                runs: 150,
                seed: 0x6EF1_2019,
                threads: 2,
                adaptive: Some(AdaptiveSpec {
                    target_margin: 0.0288,
                    ..AdaptiveSpec::paper()
                }),
                use_snapshots: true,
                snapshot_interval: Some(5_000),
                snapshot_mem_mb: Some(64),
                use_golden_cache: true,
                equiv: None,
            },
        };
        let back = ToWorker::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn class_range_assigns_roundtrip() {
        // An exhaustive class-range unit and a whole-campaign stratified
        // unit: both ride the same Assign with an `equiv` spec.
        for stratified in [None, Some(StratifiedSpec::paper())] {
            let msg = ToWorker::Assign {
                unit_id: 7,
                unit: UnitSpec {
                    component: HwComponent::ITlb,
                    workload: Workload::Crc32,
                    faults: 1,
                    start: 128,
                    end: 256,
                },
                exp: ExpSpec {
                    runs: 150,
                    seed: 0x6EF1_2019,
                    threads: 1,
                    adaptive: None,
                    use_snapshots: true,
                    snapshot_interval: None,
                    snapshot_mem_mb: None,
                    use_golden_cache: true,
                    equiv: Some(EquivSpec {
                        exhaustive: ExhaustiveSpec {
                            rep_seed: 3,
                            max_classes: 1_000_000,
                            snap_align: true,
                        },
                        stratified,
                    }),
                },
            };
            let back = ToWorker::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stratified_rows_roundtrip_margin_bit_exactly() {
        let mut row = sample_row();
        row.counts = ClassCounts {
            masked: 1,
            sdc: 0,
            crash: 0,
            timeout: 0,
            assert_: 0,
        };
        row.unit.start = 0;
        row.unit.end = 1;
        row.exhaustive = Some(crate::store::ShardExhaustive {
            weighted: ClassCounts {
                masked: 900,
                sdc: 60,
                crash: 30,
                timeout: 8,
                assert_: 2,
            },
            weight_total: 1_500,
            pruned: 500,
            stratified: Some(ShardStratified {
                margin_bits: 0.028_799_123_f64.to_bits(),
                simulated: 42,
            }),
        });
        let msg = ToSupervisor::Done {
            unit_id: 3,
            row: row.clone(),
            anomalies: 0,
        };
        let back = ToSupervisor::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
        assert_eq!(back, msg);
        // A half-present annotation is a typed message error.
        let mut json = msg.to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "row" {
                    if let Json::Obj(row_fields) = v {
                        for (rk, rv) in row_fields.iter_mut() {
                            if rk == "ex" {
                                if let Json::Obj(ex_fields) = rv {
                                    ex_fields.retain(|(ek, _)| ek != "simulated");
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(matches!(
            ToSupervisor::from_json(&json),
            Err(ProtocolError::Message(_))
        ));
    }

    #[test]
    fn assign_roundtrips_with_defaults() {
        let msg = ToWorker::Assign {
            unit_id: 0,
            unit: UnitSpec::whole(HwComponent::RegFile, Workload::Crc32, 1, 100),
            exp: ExpSpec {
                runs: 100,
                seed: u64::MAX,
                threads: 0,
                adaptive: None,
                use_snapshots: false,
                snapshot_interval: None,
                snapshot_mem_mb: None,
                use_golden_cache: false,
                equiv: None,
            },
        };
        let back = ToWorker::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
        assert_eq!(back, msg);
        assert_eq!(
            ToWorker::from_json(&roundtrip_frame(&ToWorker::Shutdown.to_json())).unwrap(),
            ToWorker::Shutdown
        );
    }

    #[test]
    fn worker_messages_roundtrip() {
        for msg in [
            ToSupervisor::Hello {
                pid: 1234,
                worker_id: None,
            },
            ToSupervisor::Hello {
                pid: 1234,
                worker_id: Some("rack7-worker-2".into()),
            },
            ToSupervisor::Heartbeat {
                unit_id: 9,
                done: 55,
            },
            ToSupervisor::Done {
                unit_id: 9,
                row: sample_row(),
                anomalies: 1,
            },
            ToSupervisor::Recovered { row: sample_row() },
            ToSupervisor::Fail {
                unit_id: 10,
                error: "fault cardinality must fit the cluster".into(),
            },
        ] {
            let back = ToSupervisor::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn hello_without_worker_id_omits_the_field() {
        let msg = ToSupervisor::Hello {
            pid: 7,
            worker_id: None,
        };
        assert!(msg.to_json().get("wid").is_none());
    }

    #[test]
    fn unknown_discriminators_are_typed_errors() {
        let v = Json::parse("{\"t\":\"explode\"}").unwrap();
        assert!(matches!(
            ToWorker::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
        assert!(matches!(
            ToSupervisor::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
        let v = Json::parse("[]").unwrap();
        assert!(matches!(
            ToWorker::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
    }
}
