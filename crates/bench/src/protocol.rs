//! Wire protocol between the distributed-sweep supervisor and its worker
//! processes: length-prefixed JSON frames over stdio or TCP.
//!
//! The repo carries no serialization dependency, so the protocol hand-rolls
//! a minimal JSON value ([`Json`]) with one deliberate twist: numbers are
//! kept as *raw tokens* ([`Json::Num`] holds the literal text), so a
//! 64-bit campaign seed or an `f64` margin round-trips bit-exactly instead
//! of being squeezed through a lossy common numeric type.
//!
//! Framing is `<ASCII decimal byte length>\n<payload>`. The length line
//! makes truncation detectable (a dead worker cannot leave a frame that
//! parses), and [`MAX_FRAME`] bounds what a garbage length line can make
//! the supervisor allocate. Anything malformed surfaces as a typed
//! [`ProtocolError`] — the supervisor treats it as a worker fault, never
//! as data.

use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AdaptiveSpec, UnitSpec};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::integrity::GoldenFingerprint;
use mbu_workloads::Workload;
use std::fmt;
use std::io::{BufRead, Write};

use crate::store::{component_slug, ShardRow};

/// Upper bound on a single frame's payload, in bytes. Control messages are
/// tiny; a length line above this is garbage by definition.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame or message could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The framing layer was violated: a non-numeric or oversized length
    /// line, or a payload shorter than its declared length.
    Frame(String),
    /// The payload was not valid JSON.
    Json(String),
    /// The JSON was well-formed but not a recognizable message.
    Message(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Eof => f.write_str("peer closed the stream"),
            ProtocolError::Frame(m) => write!(f, "bad frame: {m}"),
            ProtocolError::Json(m) => write!(f, "bad JSON: {m}"),
            ProtocolError::Message(m) => write!(f, "bad message: {m}"),
            ProtocolError::Io(e) => write!(f, "protocol I/O: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// A minimal JSON value. Numbers are raw source tokens so integer and
/// float round-trips are bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its literal token text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; duplicate keys are never emitted).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A `Num` from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `Num` from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A `Num` from an `f64` (shortest-roundtrip formatting).
    pub fn f64(v: f64) -> Json {
        Json::Num(v.to_string())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a `Num` holding one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a `Num` holding one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Json`] on any syntax error, including
    /// trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, ProtocolError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ProtocolError::Json(format!(
                "trailing bytes at offset {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

/// Recursive-descent JSON parser over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> ProtocolError {
        ProtocolError::Json(format!("{what} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ProtocolError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("number with no digits"));
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("sliced on ASCII boundaries")
            .to_string();
        // Validate the token parses as a float (every JSON number does);
        // the raw text is what is stored.
        token
            .parse::<f64>()
            .map_err(|_| self.err("malformed number"))?;
        Ok(Json::Num(token))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by this protocol;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ProtocolError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ProtocolError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates I/O errors (a broken pipe here means the peer died).
pub fn write_frame(w: &mut dyn Write, json: &Json) -> std::io::Result<()> {
    let payload = json.encode();
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// [`ProtocolError::Eof`] on clean close at a frame boundary;
/// [`ProtocolError::Frame`] on a garbage length line, an oversized length,
/// or a payload truncated mid-frame; [`ProtocolError::Json`] if the payload
/// is not JSON.
pub fn read_frame(r: &mut dyn BufRead) -> Result<Json, ProtocolError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(ProtocolError::Eof);
    }
    let trimmed = line.trim();
    let len: usize = trimmed
        .parse()
        .map_err(|_| ProtocolError::Frame(format!("length line {trimmed:?} is not a number")))?;
    if len > MAX_FRAME {
        return Err(ProtocolError::Frame(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| ProtocolError::Frame(format!("payload truncated: {e}")))?;
    let text = String::from_utf8(payload)
        .map_err(|_| ProtocolError::Frame("payload is not UTF-8".into()))?;
    Json::parse(&text)
}

/// The experiment parameters a worker needs to reconstruct the exact
/// campaign a supervisor planned: everything in [`crate::Experiments`] that
/// affects classification or checkpoint rows. The core configuration is
/// not carried — both sides build the same default, and any drift is caught
/// by golden-fingerprint verification at merge time.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpSpec {
    /// Runs per full campaign.
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Worker threads per campaign (0 = available parallelism).
    pub threads: usize,
    /// Adaptive early stopping (whole-campaign units only).
    pub adaptive: Option<AdaptiveSpec>,
    /// Checkpoint/restore fast-forward injection.
    pub use_snapshots: bool,
    /// Snapshot interval override, in cycles.
    pub snapshot_interval: Option<u64>,
    /// Snapshot memory cap, in MiB.
    pub snapshot_mem_mb: Option<u64>,
    /// Sweep-wide golden-artifact cache (per-process in a worker).
    pub use_golden_cache: bool,
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(v) => Json::u64(v),
        None => Json::Null,
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-integer field `{key}`")))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-integer field `{key}`")))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-numeric field `{key}`")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-bool field `{key}`")))
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Message(format!("missing or non-string field `{key}`")))
}

fn get_opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::Message(format!("non-integer field `{key}`"))),
    }
}

impl ExpSpec {
    /// Encodes to a JSON object.
    pub fn to_json(&self) -> Json {
        let adaptive = match &self.adaptive {
            None => Json::Null,
            Some(a) => Json::Obj(vec![
                ("target_margin".into(), Json::f64(a.target_margin)),
                ("z".into(), Json::f64(a.z)),
                ("min_runs".into(), Json::usize(a.min_runs)),
                ("batch".into(), Json::usize(a.batch)),
            ]),
        };
        Json::Obj(vec![
            ("runs".into(), Json::usize(self.runs)),
            ("seed".into(), Json::u64(self.seed)),
            ("threads".into(), Json::usize(self.threads)),
            ("adaptive".into(), adaptive),
            ("snapshots".into(), Json::Bool(self.use_snapshots)),
            ("snap_interval".into(), opt_u64(self.snapshot_interval)),
            ("snap_mem_mb".into(), opt_u64(self.snapshot_mem_mb)),
            ("golden_cache".into(), Json::Bool(self.use_golden_cache)),
        ])
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on a missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let adaptive = match v.get("adaptive") {
            None | Some(Json::Null) => None,
            Some(a) => Some(AdaptiveSpec {
                target_margin: get_f64(a, "target_margin")?,
                z: get_f64(a, "z")?,
                min_runs: get_usize(a, "min_runs")?,
                batch: get_usize(a, "batch")?,
            }),
        };
        Ok(Self {
            runs: get_usize(v, "runs")?,
            seed: get_u64(v, "seed")?,
            threads: get_usize(v, "threads")?,
            adaptive,
            use_snapshots: get_bool(v, "snapshots")?,
            snapshot_interval: get_opt_u64(v, "snap_interval")?,
            snapshot_mem_mb: get_opt_u64(v, "snap_mem_mb")?,
            use_golden_cache: get_bool(v, "golden_cache")?,
        })
    }
}

fn row_to_json(r: &ShardRow) -> Json {
    Json::Obj(vec![
        ("unit".into(), unit_to_json(&r.unit)),
        ("seed".into(), Json::u64(r.seed)),
        ("masked".into(), Json::u64(r.counts.masked)),
        ("sdc".into(), Json::u64(r.counts.sdc)),
        ("crash".into(), Json::u64(r.counts.crash)),
        ("timeout".into(), Json::u64(r.counts.timeout)),
        ("assert".into(), Json::u64(r.counts.assert_)),
        ("cycles".into(), Json::u64(r.fault_free_cycles)),
        ("instr".into(), Json::u64(r.fault_free_instructions)),
        ("fp".into(), Json::Str(r.fingerprint.to_string())),
    ])
}

fn row_from_json(v: &Json) -> Result<ShardRow, ProtocolError> {
    let fp: GoldenFingerprint = get_str(v, "fp")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad fingerprint: {e}")))?;
    Ok(ShardRow {
        unit: unit_from_json(
            v.get("unit")
                .ok_or_else(|| ProtocolError::Message("missing `unit`".into()))?,
        )?,
        seed: get_u64(v, "seed")?,
        counts: ClassCounts {
            masked: get_u64(v, "masked")?,
            sdc: get_u64(v, "sdc")?,
            crash: get_u64(v, "crash")?,
            timeout: get_u64(v, "timeout")?,
            assert_: get_u64(v, "assert")?,
        },
        fault_free_cycles: get_u64(v, "cycles")?,
        fault_free_instructions: get_u64(v, "instr")?,
        fingerprint: fp,
    })
}

fn unit_to_json(u: &UnitSpec) -> Json {
    Json::Obj(vec![
        ("comp".into(), Json::Str(component_slug(u.component).into())),
        ("wl".into(), Json::Str(u.workload.name().into())),
        ("faults".into(), Json::usize(u.faults)),
        ("start".into(), Json::usize(u.start)),
        ("end".into(), Json::usize(u.end)),
    ])
}

fn unit_from_json(v: &Json) -> Result<UnitSpec, ProtocolError> {
    let component: HwComponent = get_str(v, "comp")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad component: {e}")))?;
    let workload: Workload = get_str(v, "wl")?
        .parse()
        .map_err(|e| ProtocolError::Message(format!("bad workload: {e}")))?;
    Ok(UnitSpec {
        component,
        workload,
        faults: get_usize(v, "faults")?,
        start: get_usize(v, "start")?,
        end: get_usize(v, "end")?,
    })
}

/// Supervisor → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Run this unit under these experiment parameters.
    Assign {
        /// Supervisor-assigned unit identity (echoed in every reply).
        unit_id: u64,
        /// The run-range to execute.
        unit: UnitSpec,
        /// The campaign parameters.
        exp: ExpSpec,
    },
    /// Finish up and exit cleanly.
    Shutdown,
}

impl ToWorker {
    /// Encodes to a JSON object with a `t` discriminator.
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Assign { unit_id, unit, exp } => Json::Obj(vec![
                ("t".into(), Json::Str("assign".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("unit".into(), unit_to_json(unit)),
                ("exp".into(), exp.to_json()),
            ]),
            ToWorker::Shutdown => Json::Obj(vec![("t".into(), Json::Str("shutdown".into()))]),
        }
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on an unknown discriminator or a missing
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match get_str(v, "t")? {
            "assign" => Ok(ToWorker::Assign {
                unit_id: get_u64(v, "id")?,
                unit: unit_from_json(
                    v.get("unit")
                        .ok_or_else(|| ProtocolError::Message("missing `unit`".into()))?,
                )?,
                exp: ExpSpec::from_json(
                    v.get("exp")
                        .ok_or_else(|| ProtocolError::Message("missing `exp`".into()))?,
                )?,
            }),
            "shutdown" => Ok(ToWorker::Shutdown),
            other => Err(ProtocolError::Message(format!(
                "unknown supervisor message `{other}`"
            ))),
        }
    }
}

/// Worker → supervisor messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToSupervisor {
    /// First message after startup.
    Hello {
        /// The worker's OS process id, for diagnostics.
        pid: u32,
    },
    /// Periodic liveness signal while a unit is in flight.
    Heartbeat {
        /// The unit being executed.
        unit_id: u64,
        /// Runs of the unit completed so far (monotonic).
        done: usize,
    },
    /// The unit completed and its row is durably in the worker's shard
    /// store. The row rides along so a supervisor on the other end of a
    /// TCP link (which cannot read the worker's local shard file) can
    /// persist it into its own shard store; for stdio workers the file on
    /// disk is the authoritative copy and this is a control-plane echo.
    Done {
        /// The completed unit.
        unit_id: u64,
        /// The shard row the worker persisted.
        row: ShardRow,
        /// Anomalies the campaign logged (panics, wall-clock overruns).
        anomalies: usize,
    },
    /// The unit failed with a campaign-level error.
    Fail {
        /// The failed unit.
        unit_id: u64,
        /// Display form of the error.
        error: String,
    },
}

impl ToSupervisor {
    /// Encodes to a JSON object with a `t` discriminator.
    pub fn to_json(&self) -> Json {
        match self {
            ToSupervisor::Hello { pid } => Json::Obj(vec![
                ("t".into(), Json::Str("hello".into())),
                ("pid".into(), Json::u64(*pid as u64)),
            ]),
            ToSupervisor::Heartbeat { unit_id, done } => Json::Obj(vec![
                ("t".into(), Json::Str("hb".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("done".into(), Json::usize(*done)),
            ]),
            ToSupervisor::Done {
                unit_id,
                row,
                anomalies,
            } => Json::Obj(vec![
                ("t".into(), Json::Str("done".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("row".into(), row_to_json(row)),
                ("anomalies".into(), Json::usize(*anomalies)),
            ]),
            ToSupervisor::Fail { unit_id, error } => Json::Obj(vec![
                ("t".into(), Json::Str("fail".into())),
                ("id".into(), Json::u64(*unit_id)),
                ("error".into(), Json::Str(error.clone())),
            ]),
        }
    }

    /// Decodes from a JSON object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Message`] on an unknown discriminator or a missing
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match get_str(v, "t")? {
            "hello" => Ok(ToSupervisor::Hello {
                pid: get_u64(v, "pid")? as u32,
            }),
            "hb" => Ok(ToSupervisor::Heartbeat {
                unit_id: get_u64(v, "id")?,
                done: get_usize(v, "done")?,
            }),
            "done" => Ok(ToSupervisor::Done {
                unit_id: get_u64(v, "id")?,
                row: row_from_json(
                    v.get("row")
                        .ok_or_else(|| ProtocolError::Message("missing `row`".into()))?,
                )?,
                anomalies: get_usize(v, "anomalies")?,
            }),
            "fail" => Ok(ToSupervisor::Fail {
                unit_id: get_u64(v, "id")?,
                error: get_str(v, "error")?.to_string(),
            }),
            other => Err(ProtocolError::Message(format!(
                "unknown worker message `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_frame(json: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, json).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        read_frame(&mut reader).unwrap()
    }

    #[test]
    fn json_roundtrips_u64_exactly() {
        let v = Json::u64(u64::MAX);
        assert_eq!(v.encode(), "18446744073709551615");
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn json_roundtrips_f64_exactly() {
        // 0.0288f32 widened to f64: a value whose shortest round-trip
        // needs many digits.
        for v in [0.0288_f32 as f64, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let back = Json::parse(&Json::f64(v).encode()).unwrap();
            assert_eq!(back.as_f64(), Some(v), "bit-exact float roundtrip");
        }
    }

    #[test]
    fn json_strings_escape_and_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}control ünïcode";
        let encoded = Json::Str(s.into()).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn json_rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{\"a\":1}x").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn frames_roundtrip() {
        let msg = Json::Obj(vec![
            ("t".into(), Json::Str("hb".into())),
            ("id".into(), Json::u64(7)),
        ]);
        assert_eq!(roundtrip_frame(&msg), msg);
    }

    #[test]
    fn frame_reader_types_each_failure() {
        // Clean EOF.
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
        // Garbage length line.
        let mut r = BufReader::new(&b"not-a-number\n{}"[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Oversized length.
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = BufReader::new(huge.as_bytes());
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Truncated payload (worker died mid-write).
        let mut r = BufReader::new(&b"10\n{\"t\""[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Frame(_))));
        // Valid frame, non-JSON payload.
        let mut r = BufReader::new(&b"3\nxyz"[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Json(_))));
    }

    #[test]
    fn assign_roundtrips_with_all_options() {
        let msg = ToWorker::Assign {
            unit_id: 42,
            unit: UnitSpec {
                component: HwComponent::L1D,
                workload: Workload::Sha,
                faults: 3,
                start: 50,
                end: 125,
            },
            exp: ExpSpec {
                runs: 150,
                seed: 0x6EF1_2019,
                threads: 2,
                adaptive: Some(AdaptiveSpec {
                    target_margin: 0.0288,
                    ..AdaptiveSpec::paper()
                }),
                use_snapshots: true,
                snapshot_interval: Some(5_000),
                snapshot_mem_mb: Some(64),
                use_golden_cache: true,
            },
        };
        let back = ToWorker::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn assign_roundtrips_with_defaults() {
        let msg = ToWorker::Assign {
            unit_id: 0,
            unit: UnitSpec::whole(HwComponent::RegFile, Workload::Crc32, 1, 100),
            exp: ExpSpec {
                runs: 100,
                seed: u64::MAX,
                threads: 0,
                adaptive: None,
                use_snapshots: false,
                snapshot_interval: None,
                snapshot_mem_mb: None,
                use_golden_cache: false,
            },
        };
        let back = ToWorker::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
        assert_eq!(back, msg);
        assert_eq!(
            ToWorker::from_json(&roundtrip_frame(&ToWorker::Shutdown.to_json())).unwrap(),
            ToWorker::Shutdown
        );
    }

    #[test]
    fn worker_messages_roundtrip() {
        for msg in [
            ToSupervisor::Hello { pid: 1234 },
            ToSupervisor::Heartbeat {
                unit_id: 9,
                done: 55,
            },
            ToSupervisor::Done {
                unit_id: 9,
                row: ShardRow {
                    unit: UnitSpec {
                        component: HwComponent::DTlb,
                        workload: Workload::Qsort,
                        faults: 2,
                        start: 50,
                        end: 125,
                    },
                    seed: u64::MAX,
                    counts: ClassCounts {
                        masked: 70,
                        sdc: 2,
                        crash: 2,
                        timeout: 1,
                        assert_: 0,
                    },
                    fault_free_cycles: 123_456,
                    fault_free_instructions: 65_432,
                    fingerprint: GoldenFingerprint(0x0123_4567_89ab_cdef),
                },
                anomalies: 1,
            },
            ToSupervisor::Fail {
                unit_id: 10,
                error: "fault cardinality must fit the cluster".into(),
            },
        ] {
            let back = ToSupervisor::from_json(&roundtrip_frame(&msg.to_json())).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_discriminators_are_typed_errors() {
        let v = Json::parse("{\"t\":\"explode\"}").unwrap();
        assert!(matches!(
            ToWorker::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
        assert!(matches!(
            ToSupervisor::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
        let v = Json::parse("[]").unwrap();
        assert!(matches!(
            ToWorker::from_json(&v),
            Err(ProtocolError::Message(_))
        ));
    }
}
