//! Experiment harness regenerating every table and figure of the paper.
//!
//! The `repro` binary (`cargo run -p mbu-bench --release --bin repro -- <id>`)
//! drives the functions in this crate; the [`tinybench`]-based benches
//! (behind the `bench-harness` feature) reuse the same building blocks for
//! performance measurements and ablations.
//!
//! Campaign sweeps are crash-safe: [`Experiments::run_sweep`] skips
//! campaigns the [`ResultStore`] already holds and flushes each finished
//! campaign to the checkpoint CSV immediately, so an interrupted `measure`
//! resumes where it stopped.
//!
//! Environment knobs:
//!
//! * `MBU_RUNS` — injections per (component, cardinality, workload);
//!   default 150, paper scale 2000.
//! * `MBU_SEED` — campaign seed (default `0x6EF1_2019`).
//! * `MBU_THREADS` — worker threads (default: available parallelism).
//! * `MBU_WORKLOADS` — comma-separated subset of workload names.
//! * `MBU_ADAPTIVE_MARGIN` — target error margin (e.g. `0.0288`); enables
//!   margin-driven adaptive early stopping per campaign.
//! * `MBU_DEADLINE_SECS` — wall-clock budget for a whole sweep; on expiry
//!   the sweep stops cleanly with partial (checkpointed) results.
//! * `MBU_SNAPSHOTS` — `on` enables checkpoint/restore fast-forward
//!   injection (golden-run snapshots, nearest-checkpoint restore, early
//!   `Masked` reconvergence classification); classifications stay
//!   bit-identical to the plain path.
//! * `MBU_SNAPSHOT_INTERVAL` — snapshot interval in cycles (default:
//!   auto-tuned from each workload's fault-free execution time).
//! * `MBU_SNAPSHOT_MEM_MB` — hard cap on retained snapshot memory; over
//!   the cap the store thins itself to sparser intervals.
//! * `MBU_GOLDEN_CACHE` — `off` disables the sweep-wide golden-artifact
//!   cache (default on: one golden run + snapshot store per workload,
//!   shared across every campaign targeting it). Results are bit-identical
//!   either way; bypassing logs a sweep-level anomaly.
//! * `MBU_EQUIV` — `on` extends `repro exhaustive` past the small
//!   structures: the big data arrays (L1D/L1I/L2) are covered by
//!   class-weighted stratified sampling (draws proportional to
//!   live-interval mass, the dead stratum credited `Masked` exactly).
//! * `MBU_EXHAUSTIVE_MAX_CLASSES` — hard cap on live equivalence classes
//!   per exhaustive campaign (default 4 000 000); a larger partition is
//!   rejected with a typed error, never silently subsampled.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod equivbench;
pub mod experiments;
pub mod fabric;
pub mod io;
pub mod protocol;
pub mod service;
pub mod snapbench;
pub mod store;
pub mod supervisor;
#[cfg(feature = "bench-harness")]
pub mod tinybench;

pub use chaos::{ChaosIo, ChaosPlan, WorkerChaos};
pub use equivbench::{EquivbenchReport, EquivbenchRow};
pub use experiments::{
    ComponentData, ConfigError, EquivReport, Experiments, SweepControl, SweepReport,
    EXHAUSTIVE_COMPONENTS, STRATIFIED_COMPONENTS,
};
pub use fabric::{plan_units, MergeReport, ShardAudit};
pub use io::{RealIo, RetryIo, RetryPolicy, StoreIo};
pub use protocol::{ExpSpec, Json, ProtocolError, ToSupervisor, ToWorker};
pub use service::{run_daemon, ServeConfig, SweepBackend};
pub use snapbench::{SnapbenchReport, SnapbenchRow, SweepbenchReport};
pub use store::{
    AnalyticalRow, AnalyticalStore, LoadAudit, QuarantinedRow, ResultStore, RowDefect, ShardRow,
    ShardStore, StoreError, StoreVersion,
};
pub use supervisor::{
    FabricConfig, FabricError, FabricEvent, FabricReport, Supervisor, SweepOptions, WorkerPool,
};
