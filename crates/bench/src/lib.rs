//! Experiment harness regenerating every table and figure of the paper.
//!
//! The `repro` binary (`cargo run -p mbu-bench --release --bin repro -- <id>`)
//! drives the functions in this crate; the [`tinybench`]-based benches
//! (behind the `bench-harness` feature) reuse the same building blocks for
//! performance measurements and ablations.
//!
//! Campaign sweeps are crash-safe: [`Experiments::run_sweep`] skips
//! campaigns the [`ResultStore`] already holds and flushes each finished
//! campaign to the checkpoint CSV immediately, so an interrupted `measure`
//! resumes where it stopped.
//!
//! Environment knobs:
//!
//! * `MBU_RUNS` — injections per (component, cardinality, workload);
//!   default 150, paper scale 2000.
//! * `MBU_SEED` — campaign seed (default `0x6EF1_2019`).
//! * `MBU_THREADS` — worker threads (default: available parallelism).
//! * `MBU_WORKLOADS` — comma-separated subset of workload names.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod store;
#[cfg(feature = "bench-harness")]
pub mod tinybench;

pub use experiments::{ComponentData, Experiments, SweepReport};
pub use store::{AnalyticalRow, AnalyticalStore, ResultStore, StoreError};
