//! Experiment harness regenerating every table and figure of the paper.
//!
//! The `repro` binary (`cargo run -p mbu-bench --release --bin repro -- <id>`)
//! drives the functions in this crate; the Criterion benches reuse the same
//! building blocks for performance measurements and ablations.
//!
//! Environment knobs:
//!
//! * `MBU_RUNS` — injections per (component, cardinality, workload);
//!   default 150, paper scale 2000.
//! * `MBU_SEED` — campaign seed (default `0x6EF1_2019`).
//! * `MBU_THREADS` — worker threads (default: available parallelism).
//! * `MBU_WORKLOADS` — comma-separated subset of workload names.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod store;

pub use experiments::{ComponentData, Experiments};
pub use store::ResultStore;
