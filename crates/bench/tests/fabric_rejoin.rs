//! TCP worker session resume, end to end against the real `repro` binary.
//!
//! The invariant: a remote worker that dies in the persisted-but-unacked
//! window and then reconnects under its old `--id` **rejoins** the pool —
//! the supervisor re-adopts its shard store, retires the already-persisted
//! unit from the replayed rows instead of re-running it, and the merged
//! CSV stays byte-identical to a single-process sweep.

use mbu_bench::{Experiments, FabricConfig, ResultStore, Supervisor, WorkerPool};
use mbu_cpu::HwComponent;
use mbu_workloads::Workload;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const RUNS: usize = 6;
const WORKLOAD: Workload = Workload::Qsort;
const COMPONENTS: [HwComponent; 2] = [HwComponent::L1D, HwComponent::RegFile];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-rejoin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn experiments() -> Experiments {
    Experiments {
        runs: RUNS,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    }
}

/// Single-process reference bytes for the same two components.
fn reference() -> String {
    let e = experiments();
    let dir = tmpdir("reference");
    let path = dir.join("measured.csv");
    let mut store = ResultStore::new();
    for &c in &COMPONENTS {
        let report = e.run_sweep(&[c], &mut store, None).unwrap();
        assert!(report.failed.is_empty(), "reference: {:?}", report.failed);
    }
    store.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// Spawns `repro worker --connect` with a stable worker id; `fault` arms
/// `MBU_CHAOS_FAULT` on that process only.
fn spawn_worker(addr: &str, shard: &PathBuf, id: &str, fault: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("worker")
        .arg("--connect")
        .arg(addr)
        .arg("--shard")
        .arg(shard)
        .arg("--id")
        .arg(id)
        .env_remove("MBU_CHAOS_WORKER")
        .env_remove("MBU_CHAOS_FAULT")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = fault {
        cmd.env("MBU_CHAOS_FAULT", spec);
    }
    cmd.spawn().expect("worker spawns")
}

/// Worker `beta` persists its first unit, dies before acking it, and
/// reconnects clean under the same id and shard path. The supervisor must
/// count a rejoin, recover the persisted unit from the replayed shard
/// rows, log a `worker-rejoined` anomaly, and still merge bit-identically.
#[test]
fn reconnecting_worker_rejoins_and_replays_persisted_unit() {
    let want = reference();
    let dir = tmpdir("rejoin");
    let shard_dir = dir.join("shards");
    std::fs::create_dir_all(&shard_dir).unwrap();
    let out_csv = dir.join("measured.csv");
    let shard_a = shard_dir.join("alpha.csv");
    let shard_b = shard_dir.join("beta.csv");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    // A long retry backoff keeps beta's requeued unit parked in `pending`
    // (not re-dispatched to alpha) while beta restarts and replays it;
    // stealing stays off so the drained pool can't split the tail first.
    let sup = std::thread::spawn({
        let shard_dir = shard_dir.clone();
        let out_csv = out_csv.clone();
        move || {
            let e = experiments();
            let config = FabricConfig {
                workers: 2,
                retry_backoff: Duration::from_secs(10),
                steal: false,
                ..FabricConfig::default()
            };
            Supervisor::run(
                &e,
                &COMPONENTS,
                &config,
                &shard_dir,
                &out_csv,
                WorkerPool::Tcp(listener),
            )
        }
    });

    let mut alpha = spawn_worker(&addr, &shard_a, "alpha", None);
    // Beta persists one unit, then exits without acking it.
    let mut beta = spawn_worker(&addr, &shard_b, "beta", Some("die-after-persist:1"));
    let status = beta.wait().expect("beta exits");
    assert!(!status.success(), "beta must die after persisting");

    // Reconnect beta clean: same id, same shard store.
    let mut beta2 = spawn_worker(&addr, &shard_b, "beta", None);

    let (store, report) = sup.join().expect("supervisor thread").expect("sweep ok");
    let _ = alpha.wait();
    let _ = beta2.wait();

    assert_eq!(report.workers_lost, 1, "beta's death must be counted");
    assert_eq!(report.workers_rejoined, 1, "beta must rejoin, not respawn");
    assert!(
        report.units_recovered >= 1,
        "the persisted-but-unacked unit must be recovered from beta's shard"
    );
    assert!(
        report
            .anomalies
            .entries()
            .iter()
            .any(|a| a.to_string().contains("worker-rejoined")),
        "rejoin must be logged as a typed anomaly: {:?}",
        report.anomalies
    );
    assert!(report.is_clean(), "merge must be complete");
    assert_eq!(store.len(), 6, "2 components x 3 cardinalities");
    let got = std::fs::read_to_string(&out_csv).unwrap();
    assert_eq!(
        got, want,
        "merged store differs from the single-process sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
