//! Differential validation of the fault-equivalence engine: a class
//! representative must be interchangeable with *every* member of its
//! class, and the class-range shard primitive must be bit-identical for
//! any thread count, representative seed, and snapshots on or off. The
//! weight-multiplied exhaustive result is sound exactly as far as these
//! invariances hold, so the suite checks them directly against
//! brute-force enumeration.
//!
//! The non-ignored tests run on restricted class windows so they stay
//! debug-friendly; the `#[ignore]`d test widens the windows and sweeps
//! ITLB + PRF across three workloads for the release-mode CI equiv job
//! (`cargo test -p mbu-bench --release --test equiv_differential -- --ignored`).

use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::{ClassOutcome, ExhaustivePlan, ExhaustiveSpec};
use mbu_workloads::Workload;

fn plan(
    workload: Workload,
    component: HwComponent,
    spec: ExhaustiveSpec,
    threads: usize,
    snapshots: bool,
) -> ExhaustivePlan {
    let cfg = CampaignConfig::new(workload, component, 1)
        .threads(threads)
        .use_snapshots(snapshots);
    ExhaustivePlan::try_new(cfg, spec).expect("partition must compile")
}

/// What class-member invariance promises is shared: the classification and
/// the run length, per class (the injected member cycle is free to differ).
fn shared(outcomes: &[ClassOutcome]) -> Vec<(u64, u64, mbu_gefin::FaultEffect, u64)> {
    outcomes
        .iter()
        .map(|o| (o.class_id, o.weight, o.effect, o.cycles))
        .collect()
}

/// Class windows spread across the live order: the head, the middle, and
/// the tail each see different liveness patterns (cold start, steady
/// state, drain).
fn windows(live: usize, len: usize) -> Vec<std::ops::Range<usize>> {
    let mut ws = Vec::new();
    ws.push(0..len.min(live));
    if live > 2 * len {
        ws.push(live / 2..(live / 2 + len).min(live));
        ws.push(live - len..live);
    }
    ws
}

/// The shard primitive is bit-identical across thread counts, rep seeds
/// (midpoint vs spread picks), and the snapshot fast path — the exact
/// invariances the distributed exhaustive sweep and the weight-multiply
/// rely on.
#[test]
fn class_outcomes_invariant_to_threads_rep_seed_and_snapshots() {
    let w = Workload::Stringsearch;
    for component in [HwComponent::ITlb, HwComponent::DTlb, HwComponent::RegFile] {
        let base = plan(w, component, ExhaustiveSpec::default(), 1, false);
        // One golden build amortized over every plain-path window; the
        // snapshot variant records its own store below.
        let artifacts = Campaign::new(CampaignConfig::new(w, component, 1))
            .build_artifacts()
            .expect("golden artifacts");
        let variants = [
            // More workers, same everything else.
            plan(w, component, ExhaustiveSpec::default(), 2, false),
            // Spread representative picks instead of midpoints, with the
            // snapshot alignment off so the seed alone moves the pick.
            plan(
                w,
                component,
                ExhaustiveSpec {
                    rep_seed: 0xDEAD_BEEF,
                    snap_align: false,
                    ..ExhaustiveSpec::default()
                },
                1,
                false,
            ),
            // Snapshot fast-forward on (and snap-aligned picks with it).
            plan(w, component, ExhaustiveSpec::default(), 2, true),
        ];
        let snap_artifacts =
            Campaign::new(CampaignConfig::new(w, component, 1).use_snapshots(true))
                .build_artifacts()
                .expect("snapshot-recording artifacts");
        for range in windows(base.live_classes(), 48) {
            let reference = shared(
                &base
                    .run_class_range(range.clone(), Some(&artifacts))
                    .expect("reference window"),
            );
            for (v, variant) in variants.iter().enumerate() {
                let shared_artifacts = if v == 2 { &snap_artifacts } else { &artifacts };
                let got = shared(
                    &variant
                        .run_class_range(range.clone(), Some(shared_artifacts))
                        .expect("variant window"),
                );
                assert_eq!(
                    reference, got,
                    "{component}/{w}: variant {v} diverged on classes {range:?}"
                );
            }
        }
    }
}

/// Brute force vs representative: enumerate *every* member cycle of
/// small classes and the boundary members of a wide class; each must
/// classify identically (effect and run length) to the representative
/// the exhaustive campaign actually simulates.
#[test]
fn every_member_of_a_class_matches_its_representative() {
    let w = Workload::Stringsearch;
    for component in [HwComponent::ITlb, HwComponent::RegFile] {
        let p = plan(w, component, ExhaustiveSpec::default(), 1, false);
        let cfg = CampaignConfig::new(w, component, 1);
        let artifacts = Campaign::new(cfg)
            .build_artifacts()
            .expect("golden artifacts");
        let mut enumerated = 0usize;
        let mut wide: Option<usize> = None;
        for i in 0..p.live_classes() {
            let class = p.live_class(i);
            if class.weight() > 6 {
                wide.get_or_insert(i);
                continue;
            }
            if enumerated == 5 {
                continue;
            }
            enumerated += 1;
            let rep = p
                .run_class_range(i..i + 1, Some(&artifacts))
                .expect("representative")[0];
            for cycle in class.start..=class.end {
                let member = p
                    .probe_member(&class, cycle, Some(&artifacts))
                    .expect("member probe");
                assert_eq!(
                    (member.effect, member.cycles),
                    (rep.effect, rep.cycles),
                    "{component}/{w}: class {} member {cycle} diverged from \
                     representative at {}",
                    class.id,
                    rep.inject_cycle
                );
            }
        }
        assert!(enumerated > 0, "{component}/{w}: no small class found");
        // A wide class can't be enumerated cheaply, but its interval
        // boundaries are where an off-by-one in segment capture would
        // show: pin both ends against the representative.
        let i = wide.expect("a wide class exists");
        let class = p.live_class(i);
        let rep = p
            .run_class_range(i..i + 1, Some(&artifacts))
            .expect("representative")[0];
        for cycle in [class.start, class.end] {
            let member = p
                .probe_member(&class, cycle, Some(&artifacts))
                .expect("boundary probe");
            assert_eq!(
                (member.effect, member.cycles),
                (rep.effect, rep.cycles),
                "{component}/{w}: class {} boundary member {cycle} diverged",
                class.id
            );
        }
    }
}

/// Release-scale sweep for the CI equiv job: ITLB + PRF across three
/// workloads, 1 000-class windows at the head/middle/tail of the live
/// order, engine variants (threads, rep seed, snapshots) bit-identical
/// throughout, and full member enumeration of the small classes in each
/// head window.
#[test]
#[ignore = "release-scale: cargo test -p mbu-bench --release --test equiv_differential -- --ignored"]
fn itlb_and_prf_windows_bit_identical_across_three_workloads() {
    // Qsort and sha partitions on these structures exceed the default
    // 4M-class cap (which is what `repro exhaustive` would refuse); the
    // differential is about member invariance, so lift the policy knob.
    let uncapped = ExhaustiveSpec {
        max_classes: u64::MAX,
        ..ExhaustiveSpec::default()
    };
    for workload in [Workload::Stringsearch, Workload::Qsort, Workload::Sha] {
        for component in [HwComponent::ITlb, HwComponent::RegFile] {
            let base = plan(workload, component, uncapped, 0, false);
            let variant = plan(
                workload,
                component,
                ExhaustiveSpec {
                    rep_seed: 0xDEAD_BEEF,
                    snap_align: false,
                    ..uncapped
                },
                3,
                true,
            );
            let cfg = CampaignConfig::new(workload, component, 1);
            let artifacts = Campaign::new(cfg)
                .build_artifacts()
                .expect("golden artifacts");
            let snap_artifacts =
                Campaign::new(CampaignConfig::new(workload, component, 1).use_snapshots(true))
                    .build_artifacts()
                    .expect("snapshot-recording artifacts");
            for range in windows(base.live_classes(), 1000) {
                let reference = base
                    .run_class_range(range.clone(), Some(&artifacts))
                    .expect("reference window");
                let got = variant
                    .run_class_range(range.clone(), Some(&snap_artifacts))
                    .expect("variant window");
                assert_eq!(
                    shared(&reference),
                    shared(&got),
                    "{component}/{workload}: engines diverged on classes {range:?}"
                );
            }
            // Brute-force the head window's small classes end to end.
            let head = windows(base.live_classes(), 1000).remove(0);
            let reps = base
                .run_class_range(head.clone(), Some(&artifacts))
                .expect("head window");
            let mut enumerated = 0usize;
            for (i, rep) in head.clone().zip(&reps) {
                let class = base.live_class(i);
                assert_eq!(class.id, rep.class_id, "live order is dense and sorted");
                if class.weight() > 8 || enumerated == 20 {
                    continue;
                }
                enumerated += 1;
                for cycle in class.start..=class.end {
                    let member = base
                        .probe_member(&class, cycle, Some(&artifacts))
                        .expect("member probe");
                    assert_eq!(
                        (member.effect, member.cycles),
                        (rep.effect, rep.cycles),
                        "{component}/{workload}: class {} member {cycle} diverged",
                        class.id
                    );
                }
            }
            assert!(
                enumerated > 0,
                "{component}/{workload}: no enumerable class in the head window"
            );
        }
    }
}
