//! Differential validation of the snapshot fast path: campaigns with
//! checkpoint/restore fast-forward injection enabled must produce
//! *bit-identical* classifications — and byte-identical checkpoint CSV
//! rows — to plain full simulation. Snapshots may only change wall-clock,
//! never results, including when composed with the liveness oracle and
//! adaptive sampling.

use mbu_bench::{Experiments, ResultStore};
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AdaptiveSpec, Campaign, CampaignConfig};
use mbu_gefin::{golden_fingerprint, SnapshotSpec};
use mbu_workloads::Workload;

const WORKLOADS: [Workload; 3] = [Workload::Stringsearch, Workload::Sha, Workload::Qsort];

/// Seeded sweep over (component × workload × cardinality): with and without
/// snapshots the counts, per-run details, and anomaly logs are identical,
/// and across the sweep the fast path both restores checkpoints and
/// classifies a nonzero number of runs `Masked` early.
#[test]
fn snapshot_fast_path_is_bit_identical_across_components_and_workloads() {
    let mut total_restores = 0u64;
    let mut total_early = 0u64;
    let mut total_runs = 0u64;
    for component in HwComponent::ALL {
        for (w, &workload) in WORKLOADS.iter().enumerate() {
            for faults in [1usize, 2] {
                let base = CampaignConfig::new(workload, component, faults)
                    .runs(6)
                    .seed(0x5AB0 + w as u64)
                    .collect_details(true);
                let plain = Campaign::new(base.clone()).run();
                let fast = Campaign::new(base.use_snapshots(true)).run();
                assert_eq!(
                    plain.counts, fast.counts,
                    "{component}/{workload}/{faults}-bit: counts diverged"
                );
                assert_eq!(
                    plain.details, fast.details,
                    "{component}/{workload}/{faults}-bit: per-run details diverged"
                );
                assert_eq!(plain.anomalies, fast.anomalies);
                assert!(
                    plain.snapshot_stats.is_none(),
                    "plain path records no store"
                );
                let stats = fast.snapshot_stats.expect("fast path records a store");
                total_restores += stats.restores;
                total_early += stats.early_masked;
                total_runs += fast.counts.total();
            }
        }
    }
    assert!(
        total_restores > 0,
        "no run fast-forwarded from a checkpoint across {total_runs} runs"
    );
    assert!(
        total_early > 0,
        "no run reconverged early across {total_runs} runs"
    );
    assert!(total_early <= total_runs);
}

/// The on-disk checkpoint rows — classification counts, cycle counts,
/// margin, CRC, and golden-run fingerprint columns — serialize
/// byte-identically whether the campaigns ran plain or fast-forwarded.
#[test]
fn checkpoint_csv_rows_are_byte_identical() {
    let mut plain_store = ResultStore::new();
    let mut fast_store = ResultStore::new();
    let e = Experiments {
        runs: 8,
        workloads: WORKLOADS.to_vec(),
        ..Experiments::default()
    };
    for &workload in &WORKLOADS {
        let fp = golden_fingerprint(e.core, workload).ok();
        for component in [HwComponent::RegFile, HwComponent::L2] {
            let plain = e.campaign(component, workload, 2);
            let mut snap = e.clone();
            snap.use_snapshots = true;
            let fast = snap.campaign(component, workload, 2);
            plain_store.insert_with_fingerprint(plain, fp);
            fast_store.insert_with_fingerprint(fast, fp);
        }
    }
    assert_eq!(
        plain_store.to_csv(),
        fast_store.to_csv(),
        "checkpoint CSV must not depend on the snapshot fast path"
    );
}

/// Composition: snapshots + liveness oracle + adaptive sampling together
/// still classify bit-identically to the oracle + adaptive baseline, and
/// the two prefilters don't starve each other.
#[test]
fn snapshots_compose_with_oracle_and_adaptive_sampling() {
    let adaptive = Some(AdaptiveSpec {
        target_margin: 0.20,
        min_runs: 8,
        batch: 8,
        ..AdaptiveSpec::paper()
    });
    for &workload in &[Workload::Stringsearch, Workload::Qsort] {
        let base = CampaignConfig::new(workload, HwComponent::L2, 2)
            .runs(24)
            .seed(0xC0DE)
            .collect_details(true)
            .use_liveness_oracle(true)
            .adaptive(adaptive);
        let reference = Campaign::new(base.clone()).run();
        let composed = Campaign::new(base.use_snapshots(true).snapshot_spec(SnapshotSpec {
            interval: Some(512),
            mem_cap_bytes: None,
        }))
        .run();
        assert_eq!(reference.counts, composed.counts, "{workload}: counts");
        assert_eq!(reference.details, composed.details, "{workload}: details");
        assert_eq!(reference.anomalies, composed.anomalies);
        assert_eq!(
            reference.achieved_margin, composed.achieved_margin,
            "{workload}: adaptive stopping must not depend on snapshots"
        );
        assert_eq!(
            reference.oracle_skips, composed.oracle_skips,
            "{workload}: oracle decisions must not depend on snapshots"
        );
    }
}

/// The `MBU_SNAPSHOT_*`-backed knobs thread through `Experiments` into the
/// campaign: a capped store degrades to sparser checkpoints (surfaced in
/// the stats) without changing a single classification.
#[test]
fn experiments_snapshot_knobs_degrade_gracefully() {
    let workload = Workload::Stringsearch;
    let plain = Experiments {
        runs: 10,
        workloads: vec![workload],
        ..Experiments::default()
    };
    let mut capped = plain.clone();
    capped.use_snapshots = true;
    capped.snapshot_interval = Some(256);
    capped.snapshot_mem_mb = Some(0); // 0 MiB: forces maximal thinning
    let a = plain.campaign(HwComponent::DTlb, workload, 2);
    let b = capped.campaign(HwComponent::DTlb, workload, 2);
    assert_eq!(a.counts, b.counts);
    let stats = b.snapshot_stats.expect("stats surface in the result");
    assert!(stats.thinned >= 1, "a 0 MiB cap must thin the store");
    assert!(stats.interval > 256, "thinning must widen the interval");
    assert!(
        b.anomalies
            .entries()
            .iter()
            .any(|an| an.message.contains("snapshot store exceeded")),
        "the cap must be logged as an anomaly"
    );
}
