//! Drives the `repro daemon` HTTP service over a real socket, end to end.
//!
//! The service-mode invariant mirrors the fabric one, one level up:
//!
//! > A sweep submitted over HTTP finishes with a stored CSV
//! > **byte-identical** to a single-process `repro sweep`, streams its
//! > progress live, and survives cancellation and daemon SIGKILL with a
//! > resumable shard directory — errors are structured JSON, never
//! > connection drops.

use mbu_bench::{Experiments, FabricConfig, ResultStore, Supervisor, WorkerPool};
use mbu_cpu::HwComponent;
use mbu_serve::http;
use mbu_workloads::Workload;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mbu_bench::Json;

const WORKLOAD: Workload = Workload::Qsort;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Single-process reference bytes for `components` at `runs` injections.
fn reference_for(components: &[HwComponent], runs: usize) -> String {
    let e = Experiments {
        runs,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    };
    let dir = tmpdir(&format!("ref-{}-{runs}", components.len()));
    let path = dir.join("measured.csv");
    let mut store = ResultStore::new();
    for &c in components {
        let report = e.run_sweep(&[c], &mut store, None).unwrap();
        assert!(report.failed.is_empty(), "reference: {:?}", report.failed);
    }
    store.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// A running `repro daemon` child bound to an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots the daemon on `127.0.0.1:0`, parses the bound address from
    /// its first stderr line, and drains the rest of stderr on a thread.
    fn boot(state: &Path, env: &[(&str, &str)]) -> Daemon {
        let mut child = daemon_cmd(state, env).spawn().expect("daemon spawns");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("daemon stderr line");
        let addr = line
            .strip_prefix("mbu-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
            .trim()
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn daemon_cmd(state: &Path, env: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("daemon")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--state")
        .arg(state)
        .env_remove("MBU_CHAOS_WORKER")
        .env_remove("MBU_CHAOS_FAULT")
        .env_remove("MBU_HTTP_MAX_JOBS")
        .env_remove("MBU_HTTP_QUEUE")
        .env("MBU_WORKLOADS", WORKLOAD.name())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd
}

fn get_json(addr: &str, path: &str) -> (u16, Json) {
    let (status, body) = http::request(addr, "GET", path, None).unwrap();
    let v = Json::parse(std::str::from_utf8(&body).unwrap())
        .unwrap_or_else(|e| panic!("GET {path}: bad JSON ({e}): {body:?}"));
    (status, v)
}

/// Submits `spec` and returns the assigned job id.
fn submit(addr: &str, spec: &str) -> String {
    let (status, body) = http::request(addr, "POST", "/sweeps", Some(spec.as_bytes())).unwrap();
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(status, 201, "submit rejected: {v:?}");
    v.get("id").unwrap().as_str().unwrap().to_string()
}

/// Polls `/sweeps/{id}` until the job reaches a terminal state (an
/// `outcome` appears), returning the final status document.
fn wait_terminal(addr: &str, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, v) = get_json(addr, &format!("/sweeps/{id}"));
        assert_eq!(status, 200, "status poll: {v:?}");
        if v.get("outcome").is_some() {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {v:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn state_of(status: &Json) -> String {
    status.get("state").unwrap().as_str().unwrap().to_string()
}

/// Collects the job's full event stream (replay from seq 0 to terminal).
fn events_of(addr: &str, id: &str) -> String {
    let mut chunks = Vec::new();
    let status = http::request_stream(addr, "GET", &format!("/sweeps/{id}/events?from=0"), |c| {
        chunks.push(String::from_utf8(c.to_vec()).unwrap());
        true
    })
    .unwrap();
    assert_eq!(status, 200);
    chunks.concat()
}

/// Two sweeps submitted back to back run concurrently on the shared
/// worker budget, stream typed progress events, and each serves a stored
/// CSV byte-identical to its single-process reference.
#[test]
fn concurrent_http_sweeps_match_single_process_references() {
    let dir = tmpdir("concurrent");
    let daemon = Daemon::boot(
        &dir,
        &[
            ("MBU_HTTP_MAX_JOBS", "2"),
            ("MBU_WORKERS", "2"),
            ("MBU_RUNS", "6"),
        ],
    );
    let a = submit(&daemon.addr, r#"{"components":["l1d"],"runs":6}"#);
    let b = submit(&daemon.addr, r#"{"components":["regfile"],"runs":6}"#);
    assert_ne!(a, b);

    for (id, component) in [(&a, HwComponent::L1D), (&b, HwComponent::RegFile)] {
        let status = wait_terminal(&daemon.addr, id);
        assert_eq!(state_of(&status), "done", "job {id}: {status:?}");
        let (code, csv) =
            http::request(&daemon.addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
        assert_eq!(code, 200);
        let want = reference_for(&[component], 6);
        assert_eq!(
            String::from_utf8(csv).unwrap(),
            want,
            "job {id} store differs from the single-process sweep"
        );

        // Live progress surfaced as typed events, replayable after the fact.
        let events = events_of(&daemon.addr, id);
        for kind in ["submitted", "state", "unit-done", "merged"] {
            assert!(
                events.contains(&format!("\"kind\":\"{kind}\"")),
                "job {id} events missing {kind}: {events}"
            );
        }

        // Figures and summary come straight off the merged store.
        let (code, results) = get_json(&daemon.addr, &format!("/sweeps/{id}/results"));
        assert_eq!(code, 200);
        assert!(results.get("figures").is_some(), "{results:?}");
    }

    // Figure numbers use the paper's component order: 1 = L1D, 4 = regfile.
    let (code, _) =
        http::request(&daemon.addr, "GET", &format!("/sweeps/{a}/figures/1"), None).unwrap();
    assert_eq!(code, 200);
    let (code, body) = http::request(
        &daemon.addr,
        "GET",
        &format!("/sweeps/{b}/figures/4?format=csv"),
        None,
    )
    .unwrap();
    assert_eq!(code, 200);
    assert!(!body.is_empty());

    let (code, list) = get_json(&daemon.addr, "/sweeps");
    assert_eq!(code, 200);
    let text = list.encode();
    assert!(text.contains(&a) && text.contains(&b), "{text}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every rejection is a structured JSON error with the right status code:
/// malformed specs are 400s naming the offending knob, a full queue is a
/// 429, artifacts of unfinished jobs are 409s, and a bad `MBU_HTTP_*`
/// value fails daemon startup with a typed `ConfigError` naming the var.
#[test]
fn structured_errors_queue_limits_and_typed_env_knobs() {
    let dir = tmpdir("errors");
    let daemon = Daemon::boot(
        &dir,
        &[
            ("MBU_HTTP_MAX_JOBS", "1"),
            ("MBU_HTTP_QUEUE", "1"),
            ("MBU_WORKERS", "1"),
            ("MBU_RUNS", "6"),
        ],
    );
    let bad = [
        (&b"not json"[..], 400, "invalid JSON"),
        (&b"[1,2]"[..], 400, "object"),
        (&br#"{"bogus":1}"#[..], 400, "bogus"),
        (&br#"{"runs":0}"#[..], 400, "runs"),
        (&br#"{"cardinality":9}"#[..], 400, "cardinality"),
        (&br#"{"components":["warp-core"]}"#[..], 400, "warp-core"),
    ];
    for (body, want_status, needle) in bad {
        let (status, reply) = http::request(&daemon.addr, "POST", "/sweeps", Some(body)).unwrap();
        let text = String::from_utf8(reply).unwrap();
        assert_eq!(status, want_status, "{text}");
        let v = Json::parse(&text).expect("error body is JSON");
        let msg = v.get("error").unwrap().as_str().unwrap();
        assert!(
            msg.contains(needle),
            "error {msg:?} does not name {needle:?}"
        );
    }

    // One slot, one queue seat: the third submission is a 429.
    let slow = r#"{"runs":40}"#;
    let running = submit(&daemon.addr, slow);
    let queued = submit(&daemon.addr, slow);
    let (status, reply) =
        http::request(&daemon.addr, "POST", "/sweeps", Some(slow.as_bytes())).unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&reply));

    // Artifacts of a live job are a 409, not a partial read.
    let (status, _) = http::request(
        &daemon.addr,
        "GET",
        &format!("/sweeps/{running}/store"),
        None,
    )
    .unwrap();
    assert_eq!(status, 409);

    // Cancel the queued job (immediate) and the running one (drains).
    for id in [&queued, &running] {
        let (status, _) =
            http::request(&daemon.addr, "POST", &format!("/sweeps/{id}/cancel"), None).unwrap();
        assert_eq!(status, 202);
        let final_status = wait_terminal(&daemon.addr, id);
        assert_eq!(state_of(&final_status), "cancelled");
    }
    let (status, _) = http::request(
        &daemon.addr,
        "POST",
        &format!("/sweeps/{queued}/cancel"),
        None,
    )
    .unwrap();
    assert_eq!(status, 409, "cancelling a terminal job must conflict");
    let (status, _) = http::request(&daemon.addr, "POST", "/sweeps/j9999/cancel", None).unwrap();
    assert_eq!(status, 404);
    drop(daemon);

    // A malformed env knob fails startup with the var named, not a panic.
    let out = daemon_cmd(&dir, &[("MBU_HTTP_MAX_JOBS", "banana")])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("MBU_HTTP_MAX_JOBS"),
        "startup error must name the bad var:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling mid-sweep drains in-flight units and leaves the job's shard
/// directory resumable: a follow-up supervisor run over the same state
/// skips the durable coverage and completes byte-identically.
#[test]
fn cancellation_leaves_resumable_shards() {
    const COMPONENTS: [HwComponent; 3] = [HwComponent::L1D, HwComponent::L1I, HwComponent::L2];
    let dir = tmpdir("cancel");
    let daemon = Daemon::boot(&dir, &[("MBU_WORKERS", "1"), ("MBU_RUNS", "10")]);
    let id = submit(
        &daemon.addr,
        r#"{"components":["l1d","l1i","l2"],"runs":10}"#,
    );

    // Wait for real progress (at least one unit durable) before cancelling.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, v) = get_json(&daemon.addr, &format!("/sweeps/{id}"));
        let done = v
            .get("progress")
            .and_then(|p| p.get("done"))
            .and_then(mbu_bench::Json::as_u64)
            .unwrap_or(0);
        if done >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no unit ever completed: {v:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, _) =
        http::request(&daemon.addr, "POST", &format!("/sweeps/{id}/cancel"), None).unwrap();
    assert_eq!(status, 202);
    let final_status = wait_terminal(&daemon.addr, &id);
    assert_eq!(state_of(&final_status), "cancelled", "{final_status:?}");
    drop(daemon);

    // The job directory is a valid resume point: partial merged CSV plus
    // durable shards. A fresh supervisor run completes the sweep, skipping
    // what the cancelled run already banked.
    let job_dir = dir.join("jobs").join(&id);
    let shard_dir = job_dir.join("shards");
    assert!(shard_dir.is_dir(), "cancelled job must keep its shards");
    let e = Experiments {
        runs: 10,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    };
    let config = FabricConfig {
        workers: 2,
        ..FabricConfig::default()
    };
    let out_csv = job_dir.join("measured.csv");
    // `WorkerPool::Spawn` re-execs the current binary, which in a test
    // harness is not `repro` — adopt real workers over TCP instead.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let worker_addr = listener.local_addr().unwrap().to_string();
    let mut workers: Vec<Child> = (0..2)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_repro"))
                .arg("worker")
                .arg("--connect")
                .arg(&worker_addr)
                .arg("--shard")
                .arg(shard_dir.join(format!("resume-{i}.csv")))
                .env_remove("MBU_CHAOS_WORKER")
                .env_remove("MBU_CHAOS_FAULT")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("resume worker spawns")
        })
        .collect();
    let (_, report) = Supervisor::run(
        &e,
        &COMPONENTS,
        &config,
        &shard_dir,
        &out_csv,
        WorkerPool::Tcp(listener),
    )
    .expect("resume sweep");
    for w in &mut workers {
        let _ = w.wait();
    }
    assert!(report.is_clean(), "resume must complete: {report:?}");
    assert!(
        report.skipped_existing >= 1,
        "resume must skip the coverage the cancelled run banked: {report:?}"
    );
    assert_eq!(
        std::fs::read_to_string(&out_csv).unwrap(),
        reference_for(&COMPONENTS, 10),
        "resumed store differs from the single-process sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILLing the daemon mid-job and restarting it on the same state
/// directory re-adopts finished jobs (results still served) and re-queues
/// the interrupted one, which resumes from its shards and finishes with
/// reference-identical bytes.
#[test]
fn daemon_restart_resumes_interrupted_jobs() {
    const COMPONENTS: [HwComponent; 3] = [HwComponent::L1D, HwComponent::L1I, HwComponent::L2];
    let dir = tmpdir("restart");
    let env = [
        ("MBU_HTTP_MAX_JOBS", "1"),
        ("MBU_WORKERS", "1"),
        ("MBU_RUNS", "10"),
    ];
    let daemon = Daemon::boot(&dir, &env);

    // A fast job that finishes before the crash.
    let finished = submit(&daemon.addr, r#"{"components":["regfile"],"runs":6}"#);
    let status = wait_terminal(&daemon.addr, &finished);
    assert_eq!(state_of(&status), "done");

    // A slow job we SIGKILL the daemon under, once its shards are real.
    let interrupted = submit(
        &daemon.addr,
        r#"{"components":["l1d","l1i","l2"],"runs":10}"#,
    );
    let shard_dir = dir.join("jobs").join(&interrupted).join("shards");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let nonempty = std::fs::read_dir(&shard_dir)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|f| f.metadata().map(|m| m.len() > 0).unwrap_or(false))
            })
            .unwrap_or(false);
        if nonempty {
            break;
        }
        assert!(Instant::now() < deadline, "no shard rows ever appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(daemon); // SIGKILL; the sweep dies with durable shards on disk.

    let daemon = Daemon::boot(&dir, &env);
    // The finished job survived the restart, outcome and all.
    let status = wait_terminal(&daemon.addr, &finished);
    assert_eq!(state_of(&status), "done");
    let (code, csv) = http::request(
        &daemon.addr,
        "GET",
        &format!("/sweeps/{finished}/store"),
        None,
    )
    .unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        reference_for(&[HwComponent::RegFile], 6)
    );

    // The interrupted job was re-queued, resumed from its shards, and
    // finished with the same bytes a single process would have produced.
    let status = wait_terminal(&daemon.addr, &interrupted);
    assert_eq!(state_of(&status), "done", "{status:?}");
    let events = events_of(&daemon.addr, &interrupted);
    assert!(
        events.contains("\"kind\":\"resumed\""),
        "restart must log the re-queue: {events}"
    );
    let (code, csv) = http::request(
        &daemon.addr,
        "GET",
        &format!("/sweeps/{interrupted}/store"),
        None,
    )
    .unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        reference_for(&COMPONENTS, 10),
        "resumed job store differs from the single-process sweep"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
