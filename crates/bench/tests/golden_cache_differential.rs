//! Differential validation of the sweep-wide golden-artifact cache: a sweep
//! that builds each workload's golden output and snapshot store once and
//! shares them across campaigns must produce *bit-identical* campaign
//! results — and byte-identical v2 checkpoint rows — to the bypass path
//! where every campaign re-runs its own golden execution. The cache may
//! only change wall-clock, never results, under any thread count.

use mbu_bench::{Experiments, ResultStore};
use mbu_cpu::{CoreConfig, HwComponent};
use mbu_gefin::campaign::{AnomalyKind, Campaign, CampaignConfig};
use mbu_gefin::error::CampaignError;
use mbu_gefin::SnapshotSpec;
use mbu_workloads::Workload;

const COMPONENTS: [HwComponent; 3] = [HwComponent::RegFile, HwComponent::L2, HwComponent::DTlb];

fn sweeper(use_golden_cache: bool, threads: usize) -> Experiments {
    Experiments {
        runs: 6,
        threads,
        workloads: vec![Workload::Stringsearch],
        use_snapshots: true,
        use_golden_cache,
        ..Experiments::default()
    }
}

/// Three components × three cardinalities over one shared workload, with
/// snapshots enabled: the cached sweep (one golden + recording run total)
/// and the bypass sweep (one pair per campaign) classify every run
/// identically, serialize byte-identical checkpoint files, and differ only
/// in the sweep-level bypass anomaly.
#[test]
fn cached_sweep_is_bit_identical_to_bypass_sweep() {
    let dir = std::env::temp_dir().join(format!("mbu-gcache-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let on_path = dir.join("cache_on.csv");
    let off_path = dir.join("cache_off.csv");

    let mut on_store = ResultStore::new();
    let on_report = sweeper(true, 0)
        .run_sweep(&COMPONENTS, &mut on_store, Some(&on_path))
        .unwrap();
    let mut off_store = ResultStore::new();
    let off_report = sweeper(false, 0)
        .run_sweep(&COMPONENTS, &mut off_store, Some(&off_path))
        .unwrap();

    assert_eq!(on_report.executed, 9, "3 components x 3 cardinalities");
    assert_eq!(off_report.executed, 9);
    assert!(on_report.is_clean() && off_report.is_clean());
    for &c in &COMPONENTS {
        for faults in 1..=3 {
            let a = on_store.get(c, Workload::Stringsearch, faults).unwrap();
            let b = off_store.get(c, Workload::Stringsearch, faults).unwrap();
            assert_eq!(a, b, "{c}/{faults}-bit: campaign results diverged");
            assert_eq!(a.anomalies, b.anomalies, "{c}/{faults}-bit: anomaly logs");
        }
    }
    assert_eq!(
        on_store.to_csv(),
        off_store.to_csv(),
        "in-memory checkpoint serialization must not depend on the cache"
    );
    assert_eq!(
        std::fs::read(&on_path).unwrap(),
        std::fs::read(&off_path).unwrap(),
        "on-disk checkpoint files must be byte-identical"
    );
    // The only sweep-level difference: bypassing is logged as an anomaly.
    assert!(
        on_report.anomalies.is_empty(),
        "a cached sweep logs no bypass anomaly"
    );
    assert_eq!(off_report.anomalies.len(), 1);
    assert_eq!(
        off_report.anomalies.entries()[0].kind,
        AnomalyKind::GoldenCacheBypass
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cached sweep is deterministic under any worker-thread count: one
/// worker and four workers produce byte-identical checkpoint rows.
#[test]
fn cached_sweep_is_identical_across_thread_counts() {
    let mut one_store = ResultStore::new();
    sweeper(true, 1)
        .run_sweep(&COMPONENTS, &mut one_store, None)
        .unwrap();
    let mut four_store = ResultStore::new();
    sweeper(true, 4)
        .run_sweep(&COMPONENTS, &mut four_store, None)
        .unwrap();
    assert_eq!(
        one_store.to_csv(),
        four_store.to_csv(),
        "thread count must not leak into cached-sweep results"
    );
}

/// A single campaign given pre-built artifacts classifies identically to
/// one that runs its own golden execution.
#[test]
fn campaign_with_artifacts_matches_private_golden_run() {
    let base = CampaignConfig::new(Workload::Qsort, HwComponent::DTlb, 2)
        .runs(8)
        .seed(0xA11)
        .collect_details(true)
        .use_snapshots(true);
    let campaign = Campaign::new(base);
    let artifacts = campaign.build_artifacts().unwrap();
    let private = campaign.try_run().unwrap();
    let shared = campaign.try_run_with_artifacts(Some(&artifacts)).unwrap();
    assert_eq!(
        private, shared,
        "artifact-fed campaign must be bit-identical"
    );
}

/// Artifacts built for a different core, program or snapshot spec are
/// rejected with `ArtifactMismatch` instead of silently misclassifying.
#[test]
fn mismatched_artifacts_are_rejected() {
    let base = CampaignConfig::new(Workload::Sha, HwComponent::RegFile, 1).runs(4);
    let artifacts = Campaign::new(base.clone()).build_artifacts().unwrap();

    // Wrong program: artifacts carry Sha's golden run, campaign is Qsort.
    let other =
        Campaign::new(CampaignConfig::new(Workload::Qsort, HwComponent::RegFile, 1).runs(4));
    assert!(matches!(
        other.try_run_with_artifacts(Some(&artifacts)),
        Err(CampaignError::ArtifactMismatch { .. })
    ));

    // Missing store: the campaign wants snapshots, the artifacts have none.
    let snapping = Campaign::new(base.clone().use_snapshots(true));
    assert!(matches!(
        snapping.try_run_with_artifacts(Some(&artifacts)),
        Err(CampaignError::ArtifactMismatch { .. })
    ));

    // Wrong spec: store recorded under the default spec, campaign wants a
    // custom interval.
    let snap_artifacts = Campaign::new(base.clone().use_snapshots(true))
        .build_artifacts()
        .unwrap();
    let respecced = Campaign::new(
        base.clone()
            .use_snapshots(true)
            .snapshot_spec(SnapshotSpec {
                interval: Some(512),
                mem_cap_bytes: None,
            }),
    );
    assert!(matches!(
        respecced.try_run_with_artifacts(Some(&snap_artifacts)),
        Err(CampaignError::ArtifactMismatch { .. })
    ));

    // Wrong core: same workload, different microarchitecture.
    let mut recored = base;
    recored.core = CoreConfig::in_order_a9();
    assert!(matches!(
        Campaign::new(recored).try_run_with_artifacts(Some(&artifacts)),
        Err(CampaignError::ArtifactMismatch { .. })
    ));
}
