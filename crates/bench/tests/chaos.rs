//! Chaos tests: the fault injector injected with faults of its own.
//!
//! Every test asserts the sweep-level integrity invariant:
//!
//! > A sweep either completes with results **bit-identical** to an
//! > unfaulted sweep, or fails with a **typed error** — and a subsequent
//! > resume reproduces the unfaulted results exactly.
//!
//! "Bit-identical" is literal: stores and checkpoint files are compared as
//! exact strings (`ResultStore::to_csv` uses shortest-roundtrip float
//! formatting, so serialization is canonical).

use mbu_bench::chaos::{flip_file_bit, truncate_file};
use mbu_bench::store::quarantine_path;
use mbu_bench::{
    ChaosIo, ChaosPlan, Experiments, RealIo, ResultStore, RetryPolicy, RowDefect, StoreError,
    SweepControl,
};
use mbu_cpu::HwComponent;
use mbu_gefin::integrity::GoldenFingerprint;
use mbu_workloads::Workload;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COMPONENT: HwComponent = HwComponent::RegFile;
const WORKLOAD: Workload = Workload::Stringsearch;

/// Fast retry policy so chaos tests don't sleep through real backoff.
const FAST_RETRY: RetryPolicy = RetryPolicy {
    attempts: 3,
    base_delay: Duration::from_millis(1),
};

fn tiny() -> Experiments {
    Experiments {
        runs: 8,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The unfaulted reference: (in-memory store CSV, checkpoint file text).
/// Campaigns are deterministic, so every healthy or healed sweep must
/// reproduce exactly these bytes.
fn reference(e: &Experiments) -> (String, String) {
    let dir = tmpdir("reference");
    let path = dir.join("sweep.csv");
    let mut store = ResultStore::new();
    let report = e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.executed, 3);
    let file = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (store.to_csv(), file)
}

#[test]
fn transient_append_failures_retry_to_bit_identical_results() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("transient");
    let path = dir.join("sweep.csv");
    // Appends 0 and 2 fail; their retries (new call indices) succeed.
    let chaos = ChaosIo::new(&RealIo, ChaosPlan::failing([0, 2]));
    let control = SweepControl {
        io: &chaos,
        retry: FAST_RETRY,
        ..SweepControl::default()
    };
    let mut store = ResultStore::new();
    let report = e
        .run_sweep_with(&[COMPONENT], &mut store, Some(&path), &control)
        .unwrap();
    assert!(report.is_clean());
    assert_eq!(report.executed, 3);
    assert_eq!(
        chaos.append_calls(),
        5,
        "3 campaign appends plus 2 retried failures"
    );
    assert_eq!(store.to_csv(), ref_csv, "store is bit-identical");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        ref_file,
        "checkpoint file is bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_appends_do_not_corrupt_results() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("stall");
    let path = dir.join("sweep.csv");
    let chaos = ChaosIo::new(
        &RealIo,
        ChaosPlan {
            stall: Some(Duration::from_millis(2)),
            ..ChaosPlan::default()
        },
    );
    let control = SweepControl {
        io: &chaos,
        ..SweepControl::default()
    };
    let mut store = ResultStore::new();
    let report = e
        .run_sweep_with(&[COMPONENT], &mut store, Some(&path), &control)
        .unwrap();
    assert!(report.is_clean());
    assert_eq!(store.to_csv(), ref_csv);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_append_failure_is_typed_and_resume_reproduces_exactly() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("dead-disk");
    let path = dir.join("sweep.csv");
    // The disk dies after the first campaign is checkpointed.
    let chaos = ChaosIo::new(
        &RealIo,
        ChaosPlan {
            fail_appends_from: Some(1),
            ..ChaosPlan::default()
        },
    );
    let control = SweepControl {
        io: &chaos,
        retry: RetryPolicy::NONE,
        ..SweepControl::default()
    };
    let mut lost = ResultStore::new();
    let err = e
        .run_sweep_with(&[COMPONENT], &mut lost, Some(&path), &control)
        .unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_)),
        "typed, not a panic: {err}"
    );

    // Simulate the process dying with it: reload from disk, heal, resume.
    let (mut store, audit) = ResultStore::recover(&path).unwrap();
    assert!(audit.quarantined.is_empty(), "nothing torn, just missing");
    assert_eq!(store.len(), 1, "exactly the checkpointed campaign survives");
    chaos.set_plan(ChaosPlan::none());
    let report = e
        .run_sweep_with(&[COMPONENT], &mut store, Some(&path), &control)
        .unwrap();
    assert_eq!(report.executed, 2, "the two lost campaigns re-run");
    assert_eq!(report.skipped_existing, 1);
    assert_eq!(report.stale_rerun, 0, "the surviving fingerprint matches");
    assert_eq!(store.to_csv(), ref_csv, "resume reproduces the store");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        ref_file,
        "resume reproduces the checkpoint file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_append_is_quarantined_on_recover_and_resume_is_exact() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("torn");
    let path = dir.join("sweep.csv");
    // The second campaign's row tears 12 bytes in — a crash mid-write.
    let chaos = ChaosIo::new(
        &RealIo,
        ChaosPlan {
            torn_append: Some((1, 12)),
            ..ChaosPlan::default()
        },
    );
    let control = SweepControl {
        io: &chaos,
        retry: RetryPolicy::NONE,
        ..SweepControl::default()
    };
    let err = e
        .run_sweep_with(&[COMPONENT], &mut ResultStore::new(), Some(&path), &control)
        .unwrap_err();
    assert!(matches!(err, StoreError::Io(_)), "typed: {err}");

    // Recovery quarantines the torn tail and rewrites a clean file.
    let (mut store, audit) = ResultStore::recover(&path).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(audit.quarantined.len(), 1);
    assert!(
        matches!(audit.quarantined[0].defect, RowDefect::Syntax { .. }),
        "a torn row is a syntax defect: {:?}",
        audit.quarantined[0].defect
    );
    let sidecar = quarantine_path(&path);
    assert!(sidecar.exists(), "defect preserved in the sidecar");
    ResultStore::load(&path).expect("rewritten file is strictly clean");

    chaos.set_plan(ChaosPlan::none());
    let report = e
        .run_sweep_with(&[COMPONENT], &mut store, Some(&path), &control)
        .unwrap();
    assert_eq!(report.executed, 2);
    assert_eq!(report.skipped_existing, 1);
    assert_eq!(store.to_csv(), ref_csv);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_resumes_to_identical_results() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("truncate");
    let path = dir.join("sweep.csv");
    let mut store = ResultStore::new();
    e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    // Tear the tail off: half the last row is gone.
    let len = std::fs::metadata(&path).unwrap().len();
    truncate_file(&path, len - 30).unwrap();

    let (mut store, audit) = ResultStore::recover(&path).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(audit.quarantined.len(), 1);
    let report = e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    assert_eq!(report.executed, 1, "only the torn campaign re-runs");
    assert_eq!(report.skipped_existing, 2);
    assert_eq!(store.to_csv(), ref_csv);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_is_caught_by_crc_and_rerun_to_identical_results() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("bitflip");
    let path = dir.join("sweep.csv");
    let mut store = ResultStore::new();
    e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    // Flip one bit inside the last data row — silent at-rest corruption.
    let text = std::fs::read_to_string(&path).unwrap();
    let offset = text.rfind("stringsearch").unwrap();
    flip_file_bit(&path, offset as u64, 0).unwrap();

    // The audit sees it without modifying anything.
    let audit_table = e.verify_store(&path).unwrap().to_csv();
    assert!(
        audit_table.contains("defective rows,1"),
        "verify-store reports the defect: {audit_table}"
    );

    // Recovery quarantines exactly the flipped row, as a CRC mismatch.
    let (mut store, audit) = ResultStore::recover(&path).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(audit.quarantined.len(), 1);
    assert!(
        matches!(audit.quarantined[0].defect, RowDefect::CrcMismatch { .. }),
        "a flipped bit is a CRC mismatch: {:?}",
        audit.quarantined[0].defect
    );
    let report = e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    assert_eq!(report.executed, 1);
    assert_eq!(store.to_csv(), ref_csv, "values are never silently wrong");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forged_fingerprint_forces_rerun_but_legacy_rows_are_kept() {
    let e = tiny();
    let (c, w) = (COMPONENT, WORKLOAD);
    let mut truth = ResultStore::new();
    e.run_sweep(&[c], &mut truth, None).unwrap();
    let true_fp = truth.fingerprint(c, w, 1).expect("sweeps stamp rows");

    // A checkpoint whose 2-bit row was measured under *different* binaries
    // (forged fingerprint) and whose 3-bit row predates fingerprints.
    let mut tampered = ResultStore::new();
    tampered.insert_with_fingerprint(truth.get(c, w, 1).unwrap().clone(), Some(true_fp));
    tampered.insert_with_fingerprint(
        truth.get(c, w, 2).unwrap().clone(),
        Some(GoldenFingerprint(0xDEAD_BEEF_DEAD_BEEF)),
    );
    tampered.insert_with_fingerprint(truth.get(c, w, 3).unwrap().clone(), None);

    let report = e.run_sweep(&[c], &mut tampered, None).unwrap();
    assert_eq!(report.stale_rerun, 1, "the forged row is re-run");
    assert_eq!(report.executed, 1);
    assert_eq!(report.skipped_existing, 2);
    assert_eq!(
        report.legacy_unverified, 1,
        "the legacy row is kept, flagged"
    );
    assert_eq!(
        tampered.get(c, w, 2).unwrap(),
        truth.get(c, w, 2).unwrap(),
        "the re-run reproduces the true result"
    );
    assert_eq!(
        tampered.fingerprint(c, w, 2),
        Some(true_fp),
        "the re-run is stamped with the real fingerprint"
    );
    assert_eq!(
        tampered.fingerprint(c, w, 3),
        None,
        "legacy stays unstamped"
    );
}

#[test]
fn expired_deadline_stops_cleanly_and_resume_completes() {
    let e = tiny();
    let (ref_csv, ref_file) = reference(&e);
    let dir = tmpdir("deadline");
    let path = dir.join("sweep.csv");
    let control = SweepControl {
        deadline: Some(Instant::now()),
        ..SweepControl::default()
    };
    let mut store = ResultStore::new();
    let report = e
        .run_sweep_with(&[COMPONENT], &mut store, Some(&path), &control)
        .unwrap();
    assert!(report.deadline_expired, "graceful stop, not a kill");
    assert!(report.is_clean());
    assert_eq!(report.executed, 0);
    assert!(store.is_empty());
    // A later sweep without the deadline picks up and completes exactly.
    let report = e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    assert!(!report.deadline_expired);
    assert_eq!(report.executed, 3);
    assert_eq!(store.to_csv(), ref_csv);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_sweep_reports_margins_and_resumes_deterministically() {
    let e = Experiments {
        adaptive: Some(mbu_gefin::campaign::AdaptiveSpec {
            target_margin: 0.25,
            min_runs: 8,
            batch: 8,
            ..mbu_gefin::campaign::AdaptiveSpec::paper()
        }),
        ..tiny()
    };
    let dir = tmpdir("adaptive");
    let path = dir.join("sweep.csv");
    let mut store = ResultStore::new();
    let first = e.run_sweep(&[COMPONENT], &mut store, Some(&path)).unwrap();
    assert!(first.is_clean());
    assert_eq!(first.margins.len(), 3, "every campaign reports its margin");
    let worst = first.worst_margin().unwrap();
    assert!(worst > 0.0 && worst <= 1.0, "worst margin sane: {worst}");
    // Margins survive the checkpoint: a resumed sweep re-reports them from
    // disk without executing anything.
    let (mut reloaded, audit) = ResultStore::recover(&path).unwrap();
    assert!(audit.quarantined.is_empty());
    let second = e
        .run_sweep(&[COMPONENT], &mut reloaded, Some(&path))
        .unwrap();
    assert_eq!(second.executed, 0);
    assert_eq!(second.margins, first.margins, "margins roundtrip the CSV");
    assert_eq!(reloaded.to_csv(), store.to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}
