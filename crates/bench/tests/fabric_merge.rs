//! Property tests for the distributed-sweep merge: whatever a fleet of
//! unreliable workers leaves in the shard stores — permuted rows,
//! duplicated retries, steal-split overlaps, stale fingerprints — the
//! merge is idempotent, order-independent, and never invents or alters
//! coverage. A deterministic engine means any exact cover of `0..runs`
//! must splice to the same campaign result, bit for bit.

use mbu_bench::fabric::{merge_rows, merge_rows_with_totals};
use mbu_bench::store::ShardExhaustive;
use mbu_bench::{Experiments, ShardRow};
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::UnitSpec;
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::integrity::GoldenFingerprint;
use mbu_workloads::Workload;
use proptest::prelude::*;
use std::collections::BTreeMap;

const FP: GoldenFingerprint = GoldenFingerprint(0xFEED_FACE_CAFE_F00D);
const STALE_FP: GoldenFingerprint = GoldenFingerprint(0xDEAD_DEAD_DEAD_DEAD);
const CYCLES: u64 = 123_456;
const INSTRUCTIONS: u64 = 98_765;

fn exp(runs: usize) -> Experiments {
    Experiments {
        runs,
        workloads: vec![Workload::Sha],
        ..Experiments::default()
    }
}

fn key() -> (HwComponent, Workload, usize) {
    (HwComponent::L1D, Workload::Sha, 1)
}

/// The synthetic per-run classification: what a deterministic engine
/// would produce for run `i`. Any range's counts are the sum over its
/// runs, so *every* consistent cover of `0..runs` sums identically.
fn run_class(i: usize) -> ClassCounts {
    let mut c = ClassCounts::new();
    match i % 7 {
        0..=3 => c.masked += 1,
        4 => c.sdc += 1,
        5 => c.crash += 1,
        _ => c.timeout += 1,
    }
    c
}

fn range_counts(start: usize, end: usize) -> ClassCounts {
    let mut total = ClassCounts::new();
    for i in start..end {
        let c = run_class(i);
        total.masked += c.masked;
        total.sdc += c.sdc;
        total.crash += c.crash;
        total.timeout += c.timeout;
        total.assert_ += c.assert_;
    }
    total
}

fn row(exp: &Experiments, start: usize, end: usize, fingerprint: GoldenFingerprint) -> ShardRow {
    let (component, workload, faults) = key();
    ShardRow {
        unit: UnitSpec {
            component,
            workload,
            faults,
            start,
            end,
        },
        seed: exp.seed,
        counts: range_counts(start, end),
        fault_free_cycles: CYCLES,
        fault_free_instructions: INSTRUCTIONS,
        fingerprint,
        exhaustive: None,
    }
}

/// Synthetic class weight for live class `i` — varied so different covers
/// only reconcile if the weighted sums are computed range-exactly.
fn class_weight(i: usize) -> u64 {
    (i % 5) as u64 + 1
}

/// Dead (pruned) population mass of the synthetic exhaustive campaign.
const PRUNED: u64 = 1000;

/// The whole synthetic fault population: live mass + dead mass.
fn ex_population(classes: usize) -> u64 {
    (0..classes).map(class_weight).sum::<u64>() + PRUNED
}

/// One exhaustive shard row covering live classes `start..end`: per-class
/// outcomes from the same deterministic engine, weighted by class weight.
fn ex_row(exp: &Experiments, start: usize, end: usize, classes: usize) -> ShardRow {
    let mut weighted = ClassCounts::new();
    for i in start..end {
        let c = run_class(i);
        weighted.masked += c.masked * class_weight(i);
        weighted.sdc += c.sdc * class_weight(i);
        weighted.crash += c.crash * class_weight(i);
        weighted.timeout += c.timeout * class_weight(i);
        weighted.assert_ += c.assert_ * class_weight(i);
    }
    let mut r = row(exp, start, end, FP);
    r.exhaustive = Some(ShardExhaustive {
        weighted,
        weight_total: ex_population(classes),
        pruned: PRUNED,
        stratified: None,
    });
    r
}

/// An exact exhaustive cover of `0..classes` from sorted cut points.
fn ex_cover(exp: &Experiments, classes: usize, cuts: &[usize]) -> Vec<ShardRow> {
    let mut points: Vec<usize> = cuts.to_vec();
    points.push(0);
    points.push(classes);
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| ex_row(exp, w[0], w[1], classes))
        .collect()
}

fn expected() -> BTreeMap<Workload, GoldenFingerprint> {
    let mut m = BTreeMap::new();
    m.insert(Workload::Sha, FP);
    m
}

/// An exact cover of `0..runs` from sorted cut points.
fn cover(exp: &Experiments, cuts: &[usize]) -> Vec<ShardRow> {
    let mut bounds = vec![0];
    bounds.extend(cuts.iter().copied());
    bounds.push(exp.runs);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| row(exp, w[0], w[1], FP))
        .collect()
}

/// Deterministic in-place shuffle from a seed (the shim has no shuffle
/// strategy; order-independence is the property under test, so the
/// permutation itself need not shrink well).
fn shuffle<T>(rows: &mut [T], mut seed: u64) {
    for i in (1..rows.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rows.swap(i, (seed >> 33) as usize % (i + 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Merging any permutation of any exact cover — with retries
    /// (duplicate rows) and steal splits (a row plus its two halves)
    /// layered on top — produces the same complete campaign as the
    /// whole-range single row, and merging the merge's input again
    /// changes nothing.
    #[test]
    fn merge_is_order_independent_and_idempotent(
        runs in 4usize..48,
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..6),
        dup in any::<prop::sample::Index>(),
        split in any::<prop::sample::Index>(),
        perm in any::<u64>(),
    ) {
        let e = exp(runs);
        let cuts: Vec<usize> = raw_cuts.iter().map(|c| 1 + c.index(runs - 1)).collect();
        let mut rows = cover(&e, &cuts);
        // A retry re-executed one unit verbatim.
        rows.push(rows[dup.index(rows.len())].clone());
        // A steal split one unit: its full row *and* both halves exist.
        let victim = rows[split.index(rows.len())].unit;
        if victim.len() >= 2 {
            let mid = victim.start + victim.len() / 2;
            rows.push(row(&e, victim.start, mid, FP));
            rows.push(row(&e, mid, victim.end, FP));
        }
        shuffle(&mut rows, perm);

        let reference = merge_rows(&e, &[key()], &[row(&e, 0, runs, FP)], &expected());
        let (store, report) = merge_rows(&e, &[key()], &rows, &expected());
        prop_assert!(report.is_complete(), "gaps from an exact cover: {:?}", report.gaps);
        prop_assert_eq!(report.campaigns_merged, 1);
        prop_assert_eq!(report.stale_dropped, 0);
        prop_assert_eq!(
            store.to_csv(),
            reference.0.to_csv(),
            "cover {:?} merged differently from the whole-range row",
            cuts
        );

        // Idempotence: a second merge of the same shard rows (as after a
        // supervisor crash + restart) is bit-identical.
        let (again, report_again) = merge_rows(&e, &[key()], &rows, &expected());
        prop_assert_eq!(again.to_csv(), store.to_csv());
        prop_assert_eq!(report_again, report);

        // Order-independence of the *report*, not just the store: the
        // same rows in a different order account identically.
        let mut reshuffled = rows.clone();
        shuffle(&mut reshuffled, perm.wrapping_add(1));
        let (other, other_report) = merge_rows(&e, &[key()], &reshuffled, &expected());
        prop_assert_eq!(other.to_csv(), store.to_csv());
        prop_assert_eq!(other_report, report);
    }

    /// Rows stamped with a stale golden-run fingerprint or a foreign seed
    /// are never merged: their ranges stay gaps (the re-run plan), and
    /// they can never displace fresh rows covering the same range.
    #[test]
    fn stale_rows_are_rerun_not_merged(
        runs in 4usize..48,
        cut in any::<prop::sample::Index>(),
        wrong_seed in any::<bool>(),
        perm in any::<u64>(),
    ) {
        let e = exp(runs);
        let mid = 1 + cut.index(runs - 1);
        // Fresh head, stale tail: only the head may merge.
        let mut tail = row(&e, mid, runs, STALE_FP);
        if wrong_seed {
            tail.fingerprint = FP;
            tail.seed = e.seed ^ 0x5A5A;
        }
        let mut rows = vec![row(&e, 0, mid, FP), tail];
        shuffle(&mut rows, perm);
        let (store, report) = merge_rows(&e, &[key()], &rows, &expected());
        prop_assert_eq!(store.len(), 0, "partial campaign must not merge");
        prop_assert_eq!(report.stale_dropped, 1);
        prop_assert_eq!(report.campaigns_merged, 0);
        prop_assert_eq!(
            report.gaps,
            vec![UnitSpec { start: mid, end: runs, ..rows[0].unit }],
            "the stale range, exactly, is the resume plan"
        );

        // A stale row covering the *whole* campaign alongside a fresh
        // exact cover changes nothing.
        let mut rows = cover(&e, &[mid]);
        rows.push(row(&e, 0, runs, STALE_FP));
        shuffle(&mut rows, perm.wrapping_add(7));
        let reference = merge_rows(&e, &[key()], &[row(&e, 0, runs, FP)], &expected());
        let (store, report) = merge_rows(&e, &[key()], &rows, &expected());
        prop_assert_eq!(report.stale_dropped, 1);
        prop_assert!(report.is_complete());
        prop_assert_eq!(store.to_csv(), reference.0.to_csv());
    }

    /// Shard-store round-trip composes with the merge: writing rows to
    /// CSV, reading them back, and merging equals merging the originals.
    #[test]
    fn merge_survives_store_round_trip(
        runs in 4usize..32,
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
        perm in any::<u64>(),
    ) {
        let e = exp(runs);
        let cuts: Vec<usize> = raw_cuts.iter().map(|c| 1 + c.index(runs - 1)).collect();
        let mut rows = cover(&e, &cuts);
        shuffle(&mut rows, perm);
        let mut shard = mbu_bench::ShardStore::new();
        for r in &rows {
            shard.push(r.clone());
        }
        let (reloaded, audit) = mbu_bench::ShardStore::from_csv_lossy(&shard.to_csv())
            .expect("round-trip parses");
        prop_assert!(audit.quarantined.is_empty());
        let (direct, _) = merge_rows(&e, &[key()], &rows, &expected());
        let (via_csv, _) = merge_rows(&e, &[key()], reloaded.rows(), &expected());
        prop_assert_eq!(via_csv.to_csv(), direct.to_csv());
    }

    /// Exhaustive-flavor merge: any exact cover of the live-class space
    /// splices to the same weighted, margin-0, meta-annotated campaign as
    /// the whole-range row, independent of row order.
    #[test]
    fn exhaustive_cover_merges_weighted_and_annotated(
        classes in 4usize..40,
        raw_cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
        perm in any::<u64>(),
    ) {
        let e = exp(classes);
        let cuts: Vec<usize> = raw_cuts.iter().map(|c| 1 + c.index(classes - 1)).collect();
        let mut rows = ex_cover(&e, classes, &cuts);
        shuffle(&mut rows, perm);
        let totals = [(key(), classes)];
        let reference = merge_rows_with_totals(
            &e, &totals, &[ex_row(&e, 0, classes, classes)], &expected(),
        );
        let (store, report) = merge_rows_with_totals(&e, &totals, &rows, &expected());
        prop_assert!(report.is_complete(), "gaps from an exact cover: {:?}", report.gaps);
        prop_assert_eq!(report.campaigns_merged, 1);
        prop_assert_eq!(store.to_csv(), reference.0.to_csv());
        let (c, w, f) = key();
        let merged = store.get(c, w, f).expect("merged campaign");
        // Weighted cover + pruned dead mass == the whole population,
        // margin exactly 0, meta carried through.
        prop_assert_eq!(merged.achieved_margin, Some(0.0));
        prop_assert_eq!(merged.counts.total(), ex_population(classes));
        let meta = store.exhaustive_meta(c, w, f).expect("annotation survives merge");
        prop_assert_eq!(meta.classes, classes as u64);
        prop_assert_eq!(meta.weight, ex_population(classes));
    }

    /// Flavor mixing and population disagreement are conflicts, never
    /// merged: the whole campaign becomes a gap so it re-runs cleanly.
    #[test]
    fn mixed_or_disagreeing_exhaustive_rows_conflict(
        classes in 4usize..40,
        cut in any::<prop::sample::Index>(),
        disagree in any::<bool>(),
        perm in any::<u64>(),
    ) {
        let e = exp(classes);
        let mid = 1 + cut.index(classes - 1);
        let mut tail = ex_row(&e, mid, classes, classes);
        if disagree {
            // Same flavor, different claimed population.
            tail.exhaustive.as_mut().unwrap().weight_total += 1;
        } else {
            // Sampled row inside an exhaustive campaign.
            tail.exhaustive = None;
        }
        let mut rows = vec![ex_row(&e, 0, mid, classes), tail];
        shuffle(&mut rows, perm);
        let totals = [(key(), classes)];
        let (store, report) = merge_rows_with_totals(&e, &totals, &rows, &expected());
        prop_assert_eq!(store.len(), 0, "conflicting flavor must not merge");
        prop_assert_eq!(report.campaigns_merged, 0);
        prop_assert!(report.conflicts_dropped > 0);
        prop_assert_eq!(
            report.gaps,
            vec![UnitSpec { start: 0, end: classes, ..rows[0].unit }],
            "the whole campaign is the re-run plan"
        );
    }

    /// Work-stealing on class ranges: any sequence of `split_at` steals
    /// leaves a set of units that is pairwise disjoint and still covers
    /// every live class exactly once — no class is lost or simulated
    /// under two owners' names, so the merge's exact-adjacency splicing
    /// always finds a perfect cover.
    #[test]
    fn class_range_split_at_partitions_are_disjoint_and_total(
        classes in 1usize..500,
        steals in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
    ) {
        let (component, workload, faults) = key();
        let root = UnitSpec { component, workload, faults, start: 0, end: classes };
        // Degenerate split points are refused outright.
        prop_assert!(root.split_at(root.start).is_none());
        prop_assert!(root.split_at(root.end).is_none());
        let mut units = vec![root];
        for steal in &steals {
            let i = steal.index(units.len());
            let u = units[i];
            if u.len() < 2 {
                continue;
            }
            let mid = u.start + 1 + steal.index(u.len() - 1);
            let (head, tail) = u.split_at(mid).expect("interior split point");
            prop_assert_eq!((head.start, head.end, tail.start, tail.end),
                            (u.start, mid, mid, u.end));
            prop_assert!(!head.is_empty() && !tail.is_empty());
            units[i] = head;
            units.push(tail);
        }
        let mut owners = vec![0u32; classes];
        for u in &units {
            prop_assert_eq!(u.campaign_key(), key());
            for class in u.range() {
                owners[class] += 1;
            }
        }
        prop_assert!(
            owners.iter().all(|&n| n == 1),
            "every class owned exactly once: {owners:?}"
        );
    }
}
