//! Chaos-proofing the HTTP plane: every scripted client fault in
//! [`mbu_bench::chaos::HttpFault`] must get a typed 4xx/timeout reply or
//! a clean close — never a wedged acceptor, a leaked connection slot, or
//! corrupted job state. Driven both in-process ([`HttpFault::fire`]) and
//! through the `repro chaos-http` CLI verb the CI scenario uses.

use mbu_bench::chaos::{HttpFault, HttpFaultOutcome};
use mbu_bench::{Experiments, Json, ResultStore};
use mbu_cpu::HwComponent;
use mbu_serve::http;
use mbu_workloads::Workload;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WORKLOAD: Workload = Workload::Qsort;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(state: &Path, env: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.arg("daemon")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--state")
            .arg(state)
            .env_remove("MBU_CHAOS_WORKER")
            .env_remove("MBU_CHAOS_FAULT")
            .env_remove("MBU_CHAOS_DISK_FILE")
            .env("MBU_WORKLOADS", WORKLOAD.name())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("daemon spawns");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("daemon stderr line");
        let addr = line
            .strip_prefix("mbu-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
            .trim()
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn healthz_ok(addr: &str) {
    let (status, body) = http::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");
}

/// Every fault in the family gets its typed reply, and the acceptor
/// serves a healthy `/healthz` and a correct full sweep afterwards — the
/// faults leave no wedge and no corrupted job state.
#[test]
fn every_http_fault_yields_a_typed_reply_and_no_wedge() {
    let dir = tmpdir("faults");
    let daemon = Daemon::boot(
        &dir,
        &[
            ("MBU_HTTP_TIMEOUT_SECS", "2"),
            ("MBU_WORKERS", "1"),
            ("MBU_RUNS", "6"),
        ],
    );
    let patience = Duration::from_secs(7);
    for fault in HttpFault::all() {
        let outcome = fault
            .fire(&daemon.addr, patience)
            .unwrap_or_else(|e| panic!("{}: acceptor wedged or died: {e}", fault.kind()));
        let expected = match fault {
            HttpFault::SlowLoris => HttpFaultOutcome::Status(408),
            HttpFault::TornBody => HttpFaultOutcome::Status(400),
            HttpFault::MidStreamDisconnect => HttpFaultOutcome::Closed,
            HttpFault::HeaderFlood => HttpFaultOutcome::Status(431),
        };
        assert_eq!(outcome, expected, "{} got the wrong reply", fault.kind());
        // The fault must not have consumed the acceptor or a slot.
        healthz_ok(&daemon.addr);
    }

    // Job state survives the barrage: a real sweep still runs to a store
    // byte-identical to the single-process reference.
    let (status, body) = http::request(
        &daemon.addr,
        "POST",
        "/sweeps",
        Some(br#"{"components":["l1d"],"runs":6}"#),
    )
    .unwrap();
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let id = Json::parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (_, body) = http::request(&daemon.addr, "GET", &format!("/sweeps/{id}"), None).unwrap();
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        if v.get("outcome").is_some() {
            assert_eq!(v.get("state").unwrap().as_str().unwrap(), "done", "{v:?}");
            break;
        }
        assert!(Instant::now() < deadline, "post-chaos sweep never finished");
        std::thread::sleep(Duration::from_millis(50));
    }
    let (code, csv) =
        http::request(&daemon.addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
    assert_eq!(code, 200);
    let e = Experiments {
        runs: 6,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    };
    let mut store = ResultStore::new();
    e.run_sweep(&[HwComponent::L1D], &mut store, None).unwrap();
    let ref_path = dir.join("reference.csv");
    store.save(&ref_path).unwrap();
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        std::fs::read_to_string(&ref_path).unwrap(),
        "post-chaos store differs from the single-process sweep"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The connection cap load-sheds with a 503 while a slot is held, and the
/// slot is reclaimed once the holder leaves (or times out) — no leak.
#[test]
fn connection_cap_sheds_and_recovers_end_to_end() {
    let dir = tmpdir("cap");
    let daemon = Daemon::boot(
        &dir,
        &[("MBU_HTTP_CONN_MAX", "1"), ("MBU_HTTP_TIMEOUT_SECS", "2")],
    );
    // Hold the single slot with a half-sent request.
    let mut holder = std::net::TcpStream::connect(&daemon.addr).unwrap();
    std::io::Write::write_all(&mut holder, b"GET /healthz HT").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let (status, body) = http::request(&daemon.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(v.get("error").is_some(), "{v:?}");

    // Release the slot; within the 2 s loris budget the daemon recovers.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http::request(&daemon.addr, "GET", "/healthz", None).unwrap();
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "connection slot never reclaimed");
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `repro chaos-http` CLI verb — the CI scenario's driver — fires the
/// whole fault family at a live daemon and exits 0 with its verdict.
#[test]
fn chaos_http_cli_verb_passes_against_live_daemon() {
    let dir = tmpdir("cli");
    let daemon = Daemon::boot(&dir, &[("MBU_HTTP_TIMEOUT_SECS", "2")]);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("chaos-http")
        .arg("--to")
        .arg(&daemon.addr)
        .env_remove("MBU_CHAOS_HTTP")
        .env("MBU_HTTP_TIMEOUT_SECS", "2")
        .output()
        .expect("chaos-http runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "chaos-http failed:\n{stderr}");
    assert!(
        stderr.contains("chaos-http: every fault answered typed"),
        "missing verdict line:\n{stderr}"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
