//! Graceful-drain integration: SIGTERM mid-sweep must park in-flight jobs
//! with their durable shard rows, refuse new admissions with a typed 503,
//! and exit 0 inside the drain budget — and a restart on the same state
//! directory must resume every drained job and finish with a merged CSV
//! **byte-identical** to a single-process `repro sweep`. Zero lost runs.
//!
//! The second test runs the acceptance combo: disk-watermark breach,
//! a scripted worker death, and a slow-loris client all at once, then
//! SIGTERMs the daemon under that load.

use mbu_bench::{Experiments, Json, ResultStore};
use mbu_cpu::HwComponent;
use mbu_serve::http;
use mbu_workloads::Workload;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const WORKLOAD: Workload = Workload::Qsort;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-drain-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Single-process reference bytes for `components` at `runs` injections.
fn reference_for(components: &[HwComponent], runs: usize) -> String {
    let e = Experiments {
        runs,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    };
    let dir = tmpdir(&format!("ref-{}-{runs}", components.len()));
    let path = dir.join("measured.csv");
    let mut store = ResultStore::new();
    for &c in components {
        let report = e.run_sweep(&[c], &mut store, None).unwrap();
        assert!(report.failed.is_empty(), "reference: {:?}", report.failed);
    }
    store.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// A running `repro daemon` child with its stderr captured for assertions
/// (typed drain lines in, panics out).
struct Daemon {
    child: Child,
    addr: String,
    stderr: Arc<Mutex<String>>,
}

impl Daemon {
    fn boot(state: &Path, env: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.arg("daemon")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--state")
            .arg(state)
            .env_remove("MBU_CHAOS_WORKER")
            .env_remove("MBU_CHAOS_FAULT")
            .env_remove("MBU_CHAOS_DISK_FILE")
            .env("MBU_WORKLOADS", WORKLOAD.name())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("daemon spawns");
        let pipe = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(pipe);
        let mut line = String::new();
        reader.read_line(&mut line).expect("daemon stderr line");
        let addr = line
            .strip_prefix("mbu-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
            .trim()
            .to_string();
        let log = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&log);
        std::thread::spawn(move || {
            let mut buf = String::new();
            while matches!(reader.read_line(&mut buf), Ok(n) if n > 0) {
                sink.lock().unwrap().push_str(&buf);
                buf.clear();
            }
        });
        Daemon {
            child,
            addr,
            stderr: log,
        }
    }

    /// Sends SIGTERM — the graceful-drain signal, not the SIGKILL that
    /// `Drop` falls back to.
    fn sigterm(&self) {
        let status = Command::new("kill")
            .arg("-TERM")
            .arg(self.child.id().to_string())
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM failed");
    }

    /// Waits for the child to exit on its own, bounded by `budget`.
    fn wait_exit(&mut self, budget: Duration) -> ExitStatus {
        let deadline = Instant::now() + budget;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within {budget:?} of SIGTERM"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn stderr_log(&self) -> String {
        self.stderr.lock().unwrap().clone()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn get_json(addr: &str, path: &str) -> (u16, Json) {
    let (status, body) = http::request(addr, "GET", path, None).unwrap();
    let v = Json::parse(std::str::from_utf8(&body).unwrap())
        .unwrap_or_else(|e| panic!("GET {path}: bad JSON ({e}): {body:?}"));
    (status, v)
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, body) = http::request(addr, "POST", "/sweeps", Some(spec.as_bytes())).unwrap();
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(status, 201, "submit rejected: {v:?}");
    v.get("id").unwrap().as_str().unwrap().to_string()
}

fn wait_terminal(addr: &str, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, v) = get_json(addr, &format!("/sweeps/{id}"));
        assert_eq!(status, 200, "status poll: {v:?}");
        if v.get("outcome").is_some() {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {v:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn state_of(status: &Json) -> String {
    status.get("state").unwrap().as_str().unwrap().to_string()
}

/// Collects the job's full event stream (replay from seq 0 to terminal).
fn events_of(addr: &str, id: &str) -> String {
    let mut chunks = Vec::new();
    let status = http::request_stream(addr, "GET", &format!("/sweeps/{id}/events?from=0"), |c| {
        chunks.push(String::from_utf8(c.to_vec()).unwrap());
        true
    })
    .unwrap();
    assert_eq!(status, 200);
    chunks.concat()
}

/// Blocks until the job has at least one durably completed unit.
fn wait_first_unit(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, v) = get_json(addr, &format!("/sweeps/{id}"));
        let done = v
            .get("progress")
            .and_then(|p| p.get("done"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if done >= 1 {
            return;
        }
        assert!(Instant::now() < deadline, "no unit ever completed: {v:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Blocks until `/healthz` reports `draining: true` (the SIGTERM watcher
/// tick is 50 ms; this races only the whole drain, which holds an
/// in-flight unit for seconds).
fn wait_draining(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, v) = get_json(addr, "/healthz");
        assert_eq!(status, 200);
        if v.get("draining") == Some(&Json::Bool(true)) {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never reported draining");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// SIGTERM mid-sweep: admission turns into typed 503s, the in-flight unit
/// persists, the daemon exits 0 inside the drain budget, and a restart
/// resumes the parked job to a byte-identical merged CSV.
#[test]
fn sigterm_drains_parks_and_restart_finishes_byte_identical() {
    const COMPONENTS: [HwComponent; 2] = [HwComponent::L1D, HwComponent::RegFile];
    let dir = tmpdir("drain");
    let env = [
        ("MBU_HTTP_MAX_JOBS", "1"),
        ("MBU_WORKERS", "1"),
        ("MBU_RUNS", "6"),
        ("MBU_DRAIN_TIMEOUT_SECS", "120"),
    ];
    let mut daemon = Daemon::boot(&dir, &env);
    let id = submit(&daemon.addr, r#"{"components":["l1d","regfile"],"runs":6}"#);
    wait_first_unit(&daemon.addr, &id);

    daemon.sigterm();
    wait_draining(&daemon.addr);

    // Admission is closed with a typed 503 naming the drain, not a hang
    // or a dropped connection.
    let (status, body) =
        http::request(&daemon.addr, "POST", "/sweeps", Some(br#"{"runs":6}"#)).unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let msg = v.get("error").unwrap().as_str().unwrap();
    assert!(msg.contains("draining"), "503 must name the drain: {msg}");

    // Clean exit inside the budget, with the typed drain lines logged.
    let status = daemon.wait_exit(Duration::from_secs(120));
    assert_eq!(status.code(), Some(0), "drain must exit 0: {status:?}");
    let log = daemon.stderr_log();
    assert!(
        log.contains("term signal received") && log.contains("drain complete"),
        "drain must be narrated in stderr:\n{log}"
    );
    assert!(!log.contains("panic"), "no panics in daemon stderr:\n{log}");
    drop(daemon);

    // Restart on the same state: the parked job is re-queued, resumes from
    // its shards, and finishes with single-process bytes — zero lost runs.
    let daemon = Daemon::boot(&dir, &env);
    let final_status = wait_terminal(&daemon.addr, &id);
    assert_eq!(state_of(&final_status), "done", "{final_status:?}");
    // The event ring is in-memory (the `drained` event died with the old
    // process — jobs.rs unit tests cover it); the durable drain record is
    // the absence of an outcome, which the restart must read as "resume".
    let events = events_of(&daemon.addr, &id);
    assert!(
        events.contains("\"kind\":\"resumed\""),
        "restart must log the re-queue: {events}"
    );
    let (code, csv) =
        http::request(&daemon.addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        reference_for(&COMPONENTS, 6),
        "drained-and-resumed store differs from the single-process sweep"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance combo: a breached disk watermark (faked free-space
/// probe), a scripted worker death, and a slow-loris client — all live
/// when the SIGTERM lands. The daemon still drains inside the budget,
/// and the restart (chaos lifted) finishes byte-identically.
#[test]
fn drain_under_combined_chaos_loses_nothing() {
    const COMPONENTS: [HwComponent; 1] = [HwComponent::L1D];
    let dir = tmpdir("combo");
    let disk_file = dir.join("fake-free-mb");
    std::fs::write(&disk_file, "100000").unwrap();
    let disk_file_str = disk_file.to_str().unwrap().to_string();
    let chaos_env = [
        ("MBU_HTTP_MAX_JOBS", "1"),
        ("MBU_WORKERS", "1"),
        ("MBU_RUNS", "6"),
        ("MBU_DRAIN_TIMEOUT_SECS", "120"),
        ("MBU_HTTP_TIMEOUT_SECS", "3"),
        ("MBU_DISK_WATERMARK_MB", "500"),
        ("MBU_CHAOS_DISK_FILE", disk_file_str.as_str()),
        // Worker 0 dies after persisting one unit without acking it; the
        // respawned replacement recovers the row from the shard.
        ("MBU_CHAOS_WORKER", "0:die-after-persist:1"),
    ];
    let mut daemon = Daemon::boot(&dir, &chaos_env);
    let id = submit(&daemon.addr, r#"{"components":["l1d"],"runs":6}"#);
    wait_first_unit(&daemon.addr, &id);

    // Breach the watermark: the governor must pause dispatch with a typed
    // disk-pressure narration instead of running into ENOSPC. (The event
    // stream blocks until the job is terminal, so watch stderr instead.)
    std::fs::write(&disk_file, "100").unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if daemon.stderr_log().contains("disk pressure") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watermark breach never surfaced as typed disk pressure: {}",
            daemon.stderr_log()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // A slow-loris holds a socket open across the drain.
    let mut loris = std::net::TcpStream::connect(&daemon.addr).unwrap();
    std::io::Write::write_all(&mut loris, b"GET /healthz HT").unwrap();

    daemon.sigterm();
    let status = daemon.wait_exit(Duration::from_secs(120));
    assert_eq!(
        status.code(),
        Some(0),
        "drain under chaos must still exit 0: {status:?}"
    );
    let log = daemon.stderr_log();
    assert!(!log.contains("panic"), "no panics in daemon stderr:\n{log}");
    drop(daemon);
    drop(loris);

    // Restart with the chaos lifted: the drained job resumes and its
    // store is byte-identical to an undisturbed single-process sweep.
    let clean_env = [
        ("MBU_HTTP_MAX_JOBS", "1"),
        ("MBU_WORKERS", "1"),
        ("MBU_RUNS", "6"),
    ];
    let daemon = Daemon::boot(&dir, &clean_env);
    let final_status = wait_terminal(&daemon.addr, &id);
    assert_eq!(state_of(&final_status), "done", "{final_status:?}");
    let events = events_of(&daemon.addr, &id);
    assert!(
        events.contains("\"kind\":\"resumed\""),
        "restart must log the re-queue: {events}"
    );
    let (code, csv) =
        http::request(&daemon.addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        reference_for(&COMPONENTS, 6),
        "chaos-drained store differs from the single-process sweep"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
