//! Property tests for checkpoint-store corruption: whatever happens to the
//! bytes — truncation, bit flips, interleaved garbage — loading never
//! panics, never invents rows, and never returns wrong values. Corruption
//! is either quarantined ([`ResultStore::from_csv_lossy`]) or a typed
//! [`StoreError`].

use mbu_bench::{ResultStore, StoreError};
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{AnomalyLog, CampaignResult};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::integrity::GoldenFingerprint;
use mbu_workloads::Workload;
use proptest::prelude::*;

/// A fixed nine-campaign store mixing stamped/unstamped fingerprints and
/// present/absent margins, so corruption can land on every field kind.
fn seeded_store() -> ResultStore {
    let mut s = ResultStore::new();
    let combos = [
        (HwComponent::L1D, Workload::Sha),
        (HwComponent::RegFile, Workload::Qsort),
        (HwComponent::DTlb, Workload::Stringsearch),
    ];
    for (i, (c, w)) in combos.into_iter().enumerate() {
        for faults in 1..=3usize {
            let r = CampaignResult {
                component: c,
                workload: w,
                faults,
                counts: ClassCounts {
                    masked: 900 + (i * 37 + faults) as u64,
                    sdc: 40 + i as u64,
                    crash: 30,
                    timeout: 5,
                    assert_: 2,
                },
                fault_free_cycles: 10_000 + i as u64 * 777,
                fault_free_instructions: 9_000 + faults as u64,
                details: None,
                anomalies: AnomalyLog::new(),
                oracle_skips: 0,
                snapshot_stats: None,
                achieved_margin: match faults {
                    2 => None,
                    _ => Some(0.021 + 0.001 * faults as f64),
                },
            };
            let fp = match faults {
                3 => None,
                _ => Some(GoldenFingerprint(
                    0x1234_5678_9ABC_DEF0 ^ ((i as u64) << 8) ^ faults as u64,
                )),
            };
            s.insert_with_fingerprint(r, fp);
        }
    }
    s
}

/// Every row of `loaded` must be byte-for-byte one of `original`'s rows:
/// same key, same counts, same margin, same fingerprint. Corruption may
/// *lose* rows, never alter them.
fn assert_subset(
    loaded: &ResultStore,
    original: &ResultStore,
) -> Result<(), proptest::TestCaseError> {
    for r in loaded.iter() {
        let orig = original.get(r.component, r.workload, r.faults);
        prop_assert!(
            orig == Some(r),
            "row {:?}/{:?}/{} loaded with wrong values: {r:?} vs {orig:?}",
            r.component,
            r.workload,
            r.faults
        );
        prop_assert_eq!(
            loaded.fingerprint(r.component, r.workload, r.faults),
            original.fingerprint(r.component, r.workload, r.faults)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_loads_a_prefix_or_fails_typed(cut in any::<prop::sample::Index>()) {
        let original = seeded_store();
        let csv = original.to_csv();
        let cut = cut.index(csv.len() + 1);
        let truncated = &csv[..cut];
        match ResultStore::from_csv_lossy(truncated) {
            // A torn version line means nothing can be trusted; that must
            // surface as the typed refusal, never as guessed rows.
            Err(e) => prop_assert!(
                matches!(e, StoreError::UnsupportedVersion { .. }),
                "unexpected error kind: {e}"
            ),
            Ok((loaded, audit)) => {
                prop_assert!(loaded.len() <= original.len());
                prop_assert!(
                    audit.quarantined.len() <= 1,
                    "truncation tears at most the final row: {:?}",
                    audit.quarantined
                );
                assert_subset(&loaded, &original)?;
                if cut >= csv.len() {
                    prop_assert_eq!(loaded.to_csv(), csv);
                }
            }
        }
    }

    #[test]
    fn single_bit_flips_never_load_wrong_values(
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let original = seeded_store();
        let mut bytes = original.to_csv().into_bytes();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        // A non-UTF-8 flip cannot even reach the parser.
        prop_assume!(std::str::from_utf8(&bytes).is_ok());
        let flipped = String::from_utf8(bytes).unwrap();
        match ResultStore::from_csv_lossy(&flipped) {
            Err(e) => prop_assert!(
                matches!(e, StoreError::UnsupportedVersion { .. }),
                "unexpected error kind: {e}"
            ),
            // The flipped row is either quarantined (CRC / syntax) or the
            // flip landed in the version/header framing — in every case no
            // surviving row may differ from the original.
            Ok((loaded, _audit)) => assert_subset(&loaded, &original)?,
        }
        // The strict loader agrees: typed error or unaltered values.
        if let Ok(loaded) = ResultStore::from_csv(&flipped) {
            assert_subset(&loaded, &original)?;
        }
    }

    #[test]
    fn garbage_lines_are_quarantined_with_survivors_intact(
        garbage in prop::collection::vec(
            (
                any::<prop::sample::Index>(),
                prop_oneof![
                    Just("!!! not a row at all"),
                    Just("l1d,sha,not,a,valid,row"),
                    // Well-formed body, forged checksum.
                    Just("l1d,sha,1,90,5,3,1,1,12345,6789,0.02,0123456789abcdef,00000000"),
                    Just(",,,,"),
                    Just("l1d,sha,1,90"),
                ],
            ),
            1..4,
        ),
    ) {
        let original = seeded_store();
        let csv = original.to_csv();
        let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
        for (pos, junk) in &garbage {
            // Only past the version + header framing (lines 0 and 1).
            let at = 2 + pos.index(lines.len() - 1);
            lines.insert(at, (*junk).to_string());
        }
        let corrupted = lines.join("\n");
        let (loaded, audit) = ResultStore::from_csv_lossy(&corrupted).unwrap();
        prop_assert_eq!(audit.quarantined.len(), garbage.len());
        prop_assert_eq!(audit.rows_loaded, original.len());
        prop_assert_eq!(
            loaded.to_csv(),
            csv.clone(),
            "survivors reload bit-identically around the garbage"
        );
        // The strict loader refuses the same file with a typed error.
        let strict = ResultStore::from_csv(&corrupted);
        prop_assert!(
            matches!(
                strict,
                Err(StoreError::Syntax { .. } | StoreError::CrcMismatch { .. })
            ),
            "strict load must fail typed: {strict:?}"
        );
    }

    #[test]
    fn arbitrary_stores_roundtrip_bit_identically(
        counts in (0u64..1_000_000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
        meta in (1usize..=3, 1u64..10_000_000, 1u64..10_000_000),
        margin in prop_oneof![
            Just(Option::<f64>::None),
            (0.0f64..=1.0).prop_map(Some),
        ],
        fp in prop_oneof![
            Just(Option::<u64>::None),
            any::<u64>().prop_map(Some),
        ],
    ) {
        let (masked, sdc, crash, timeout, assert_) = counts;
        let (faults, cycles, instructions) = meta;
        let mut store = ResultStore::new();
        store.insert_with_fingerprint(
            CampaignResult {
                component: HwComponent::L2,
                workload: Workload::Sha,
                faults,
                counts: ClassCounts { masked, sdc, crash, timeout, assert_ },
                fault_free_cycles: cycles,
                fault_free_instructions: instructions,
                details: None,
                anomalies: AnomalyLog::new(),
                oracle_skips: 0,
                achieved_margin: margin,
                snapshot_stats: None,
            },
            fp.map(GoldenFingerprint),
        );
        let csv = store.to_csv();
        let reloaded = match ResultStore::from_csv(&csv) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::Fail(format!("reload failed: {e}"))),
        };
        prop_assert_eq!(reloaded.to_csv(), csv, "canonical serialization");
        assert_subset(&reloaded, &store)?;
        prop_assert_eq!(reloaded.len(), 1);
    }
}
