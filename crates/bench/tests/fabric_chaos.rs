//! Worker-level chaos for the distributed sweep fabric, driving the real
//! `repro` binary end to end.
//!
//! The invariant mirrors the store-level chaos suite, one level up:
//!
//! > A sharded sweep either completes with a final CSV **bit-identical**
//! > to a single-process sweep, or fails with a **typed error** — it is
//! > never silently short, whatever happens to the workers.
//!
//! Faults are injected with `MBU_CHAOS_WORKER=<index>:<spec>`: the
//! supervisor arms the spec on that worker's first spawn only, so
//! replacements run clean and every fault is recoverable.

use mbu_bench::Experiments;
use mbu_cpu::HwComponent;
use mbu_workloads::Workload;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const RUNS: usize = 6;
const WORKLOAD: Workload = Workload::Qsort;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-fabric-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The single-process reference: the same campaigns run in-process, saved
/// through the same store, read back as bytes. Computed once; campaigns
/// are deterministic, so every sharded sweep must reproduce these bytes.
fn reference() -> &'static str {
    static REFERENCE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(compute_reference)
}

fn compute_reference() -> String {
    let e = Experiments {
        runs: RUNS,
        workloads: vec![WORKLOAD],
        ..Experiments::default()
    };
    let dir = tmpdir("reference");
    let path = dir.join("measured.csv");
    let mut store = mbu_bench::ResultStore::new();
    for c in HwComponent::ALL {
        let report = e.run_sweep(&[c], &mut store, None).unwrap();
        assert!(
            report.failed.is_empty(),
            "reference sweep failed: {:?}",
            report.failed
        );
    }
    store.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// Runs `repro sweep` with 3 workers and the given chaos target plus any
/// extra env, returning (success, stderr, final CSV bytes if written).
fn run_sweep(
    dir: &Path,
    chaos: Option<&str>,
    extra_env: &[(&str, &str)],
) -> (bool, String, Option<String>) {
    let out = dir.join("measured.csv");
    let shards = dir.join("shards");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("sweep")
        .arg("--workers")
        .arg("3")
        .arg("--out")
        .arg(&out)
        .arg("--shards")
        .arg(&shards)
        .env_remove("MBU_CHAOS_WORKER")
        .env_remove("MBU_CHAOS_FAULT")
        .env("MBU_RUNS", RUNS.to_string())
        .env("MBU_WORKLOADS", WORKLOAD.name());
    if let Some(spec) = chaos {
        cmd.env("MBU_CHAOS_WORKER", spec);
    }
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("repro sweep spawns");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    let csv = std::fs::read_to_string(&out).ok();
    (output.status.success(), stderr, csv)
}

/// The acceptance test: a 3-worker sharded sweep with one worker
/// SIGKILLed mid-unit completes — the unit is retried on a replacement —
/// and the merged store is byte-identical to the single-process sweep.
#[test]
fn killed_worker_retries_and_merge_is_bit_identical() {
    let want = reference();
    let dir = tmpdir("kill");
    let (ok, stderr, csv) = run_sweep(&dir, Some("1:kill-mid-unit:2"), &[]);
    assert!(ok, "sweep failed:\n{stderr}");
    assert!(
        stderr.contains("worker-lost"),
        "the crash must surface as a typed worker-lost anomaly:\n{stderr}"
    );
    assert_eq!(
        csv.as_deref(),
        Some(want),
        "merged store differs from the single-process sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hung worker (alive, heartbeats muted, unit frozen) is detected by
/// stall supervision, killed, and its unit re-run — same bit-identical
/// outcome.
#[test]
fn hung_worker_is_reclaimed_by_stall_detection() {
    let want = reference();
    let dir = tmpdir("hang");
    let (ok, stderr, csv) = run_sweep(&dir, Some("0:hang-mid-unit:2"), &[("MBU_STALL_SECS", "2")]);
    assert!(ok, "sweep failed:\n{stderr}");
    assert!(
        stderr.contains("worker-stall"),
        "the hang must surface as a typed worker-stall anomaly:\n{stderr}"
    );
    assert_eq!(csv.as_deref(), Some(want));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker emitting garbage instead of protocol frames is dropped with a
/// typed anomaly; its rows never reach the merge as anything but valid
/// checksummed shard entries.
#[test]
fn garbage_frames_drop_the_worker_not_the_results() {
    let want = reference();
    let dir = tmpdir("garbage");
    let (ok, stderr, csv) = run_sweep(&dir, Some("2:garbage-frames"), &[]);
    assert!(ok, "sweep failed:\n{stderr}");
    assert!(
        stderr.contains("protocol-garbage"),
        "garbage must surface as a typed protocol-garbage anomaly:\n{stderr}"
    );
    assert_eq!(csv.as_deref(), Some(want));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervisor crash-consistency: SIGKILL the supervisor mid-sweep, then
/// re-run. The final store either never existed (the crash preceded the
/// merge) or is already complete; the resume merges the surviving shard
/// rows without re-running them and finishes bit-identical. Never
/// silently short.
#[test]
fn supervisor_crash_resumes_without_losing_completed_runs() {
    let want = reference();
    let dir = tmpdir("resume");
    let out = dir.join("measured.csv");
    let shards = dir.join("shards");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("sweep")
        .arg("--workers")
        .arg("3")
        .arg("--out")
        .arg(&out)
        .arg("--shards")
        .arg(&shards)
        .env_remove("MBU_CHAOS_WORKER")
        .env_remove("MBU_CHAOS_FAULT")
        .env("MBU_RUNS", RUNS.to_string())
        .env("MBU_WORKLOADS", WORKLOAD.name())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("repro sweep spawns");
    // Kill as soon as at least one completed unit is durably sharded.
    let deadline = Instant::now() + Duration::from_secs(60);
    let some_rows = loop {
        if let Ok(entries) = std::fs::read_dir(&shards) {
            if entries
                .flatten()
                .any(|e| e.metadata().map(|m| m.len() > 0).unwrap_or(false))
            {
                break true;
            }
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = child.kill();
    let _ = child.wait();
    assert!(
        some_rows,
        "no shard rows appeared before the sweep finished"
    );
    match std::fs::read_to_string(&out) {
        // The final store is written once, at the end: a mid-sweep crash
        // must leave either nothing or the complete result.
        Err(_) => {}
        Ok(text) => assert_eq!(text.as_str(), want, "a partial final store was written"),
    }
    let (ok, stderr, csv) = run_sweep(&dir, None, &[]);
    assert!(ok, "resume failed:\n{stderr}");
    assert_eq!(
        csv.as_deref(),
        Some(want),
        "resumed sweep differs from the single-process sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Invalid fabric and sweep env vars are rejected with a typed error
/// naming the variable — never a silent fallback to defaults.
#[test]
fn invalid_env_is_a_typed_error_not_a_silent_fallback() {
    for (var, value) in [
        ("MBU_WORKERS", "banana"),
        ("MBU_WORKERS", "0"),
        ("MBU_THREADS", "many"),
        ("MBU_RUNS", "-3"),
        ("MBU_STALL_SECS", "soon"),
        ("MBU_UNIT_RETRIES", "0"),
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .arg("sweep")
            .env_remove("MBU_CHAOS_WORKER")
            .env("MBU_RUNS", "2")
            .env(var, value)
            .output()
            .expect("repro spawns");
        assert!(!output.status.success(), "{var}={value} must be rejected");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains(var), "error must name {var}:\n{stderr}");
    }
}
