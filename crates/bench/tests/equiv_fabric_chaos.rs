//! Worker-level chaos for *distributed exhaustive* sweeps, driving the
//! real `repro` binary end to end — the class-range mirror of the
//! `fabric_chaos` suite:
//!
//! > A class-range sharded sweep either completes with a merged
//! > `exhaustive.csv` **bit-identical** to single-process
//! > `repro exhaustive`, or fails with a **typed error** — it is never
//! > silently short, whatever happens to the workers.
//!
//! A full exhaustive campaign cannot be shrunk the way `MBU_RUNS` shrinks
//! a sampled sweep — the live-class census is a property of the workload
//! and structure (DTLB/stringsearch, the smallest, is ~545 k class sims)
//! — so this suite is `#[ignore]`d release-scale, like the wide
//! equivalence differential:
//!
//! ```text
//! cargo test -p mbu-bench --release --test equiv_fabric_chaos -- --ignored
//! ```
//!
//! The CI `equiv` job exercises the same invariant more cheaply by
//! diffing a 3-worker chaos-kill sweep against the single-process
//! reference it already computes.

use std::path::{Path, PathBuf};
use std::process::Command;

const WORKLOAD: &str = "stringsearch";
const COMPONENT: &str = "dtlb";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbu-equiv-fab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `repro exhaustive` (distributed when `workers > 0`) and returns
/// (success, stderr, merged exhaustive.csv bytes if written).
fn run_exhaustive(
    dir: &Path,
    workers: usize,
    chaos: Option<&str>,
    extra_env: &[(&str, &str)],
) -> (bool, String, Option<String>) {
    let out = dir.join("measured.csv");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("exhaustive")
        .arg("--components")
        .arg(COMPONENT)
        .arg("--out")
        .arg(&out);
    if workers > 0 {
        cmd.arg("--workers").arg(workers.to_string());
    }
    cmd.env_remove("MBU_CHAOS_WORKER")
        .env_remove("MBU_CHAOS_FAULT")
        .env_remove("MBU_EQUIV")
        .env("MBU_WORKLOADS", WORKLOAD)
        .env("MBU_SNAPSHOTS", "on");
    if let Some(spec) = chaos {
        cmd.env("MBU_CHAOS_WORKER", spec);
    }
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("repro exhaustive spawns");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    let csv = std::fs::read_to_string(dir.join("exhaustive.csv")).ok();
    (output.status.success(), stderr, csv)
}

/// The single-process reference, computed once: deterministic class
/// outcomes mean every sharded variant must reproduce these bytes.
fn reference() -> &'static str {
    static REFERENCE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let dir = tmpdir("reference");
        let (ok, stderr, csv) = run_exhaustive(&dir, 0, None, &[]);
        assert!(ok, "single-process reference failed:\n{stderr}");
        let text = csv.expect("reference exhaustive.csv");
        let _ = std::fs::remove_dir_all(&dir);
        text
    })
}

/// SIGKILL, hang, and protocol garbage mid-class-range: each fault
/// surfaces as its typed anomaly, the unit is recovered on another
/// worker, and the merged store is byte-identical to the single-process
/// exhaustive sweep.
#[test]
#[ignore = "release-scale: cargo test -p mbu-bench --release --test equiv_fabric_chaos -- --ignored"]
fn chaos_workers_mid_class_range_merge_bit_identical() {
    type Case = (
        &'static str,
        &'static str,
        &'static str,
        &'static [(&'static str, &'static str)],
    );
    let want = reference();
    let cases: [Case; 3] = [
        ("kill", "1:kill-mid-unit:3", "worker-lost", &[]),
        (
            "hang",
            "0:hang-mid-unit:3",
            "worker-stall",
            &[("MBU_STALL_SECS", "5")],
        ),
        ("garbage", "2:garbage-frames", "protocol-garbage", &[]),
    ];
    for (tag, spec, needle, extra_env) in cases {
        let dir = tmpdir(tag);
        let (ok, stderr, csv) = run_exhaustive(&dir, 3, Some(spec), extra_env);
        assert!(ok, "{tag}: distributed exhaustive sweep failed:\n{stderr}");
        assert!(
            stderr.contains(needle),
            "{tag}: the fault must surface as a typed {needle} anomaly:\n{stderr}"
        );
        assert_eq!(
            csv.as_deref(),
            Some(want),
            "{tag}: merged exhaustive store differs from single-process"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
