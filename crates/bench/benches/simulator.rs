//! Simulator-throughput benches: how fast the substrate executes the
//! paper's workloads, on the scaled experimental configuration and on the
//! full Table I configuration (capacity ablation).

use mbu_bench::tinybench;
use mbu_cpu::{CoreConfig, RunEnd, Simulator};
use mbu_isa::interp::ArchInterpreter;
use mbu_mem::MemorySystemConfig;
use mbu_workloads::Workload;

fn bench_workload_simulation() {
    let mut group = tinybench::group("ooo_simulator");
    group.sample_size(10);
    for w in [Workload::Stringsearch, Workload::SusanE, Workload::Sha] {
        let program = w.program();
        let cycles = {
            let r = Simulator::new(CoreConfig::cortex_a9_like(), &program).run(u64::MAX / 8);
            assert_eq!(r.end, RunEnd::Exited { code: 0 });
            r.cycles
        };
        group.throughput_elements(cycles);
        group.bench_function(&format!("cycles/{}", w.name()), |b| {
            b.iter(|| Simulator::new(CoreConfig::cortex_a9_like(), &program).run(u64::MAX / 8));
        });
    }
    group.finish();
}

fn bench_interpreter_vs_ooo() {
    let program = Workload::Stringsearch.program();
    let mut group = tinybench::group("interpreter_vs_ooo");
    group.sample_size(10);
    group.bench_function("arch_interpreter", |b| {
        b.iter(|| ArchInterpreter::new(&program).run(10_000_000).unwrap());
    });
    group.bench_function("ooo_core", |b| {
        b.iter(|| Simulator::new(CoreConfig::cortex_a9_like(), &program).run(u64::MAX / 8));
    });
    group.finish();
}

/// Ablation: scaled experimental memory vs the full Table I capacities.
fn bench_capacity_ablation() {
    let program = Workload::SusanC.program();
    let mut group = tinybench::group("capacity_ablation");
    group.sample_size(10);
    for (name, mem) in [
        ("scaled", MemorySystemConfig::scaled()),
        ("table1", MemorySystemConfig::table1()),
    ] {
        let cfg = CoreConfig {
            mem,
            ..CoreConfig::cortex_a9_like()
        };
        group.bench_function(name, |b| {
            b.iter(|| Simulator::new(cfg, &program).run(u64::MAX / 8));
        });
    }
    group.finish();
}

fn bench_program_build_and_load() {
    let mut group = tinybench::group("program_setup");
    group.bench_function("assemble_sha", |b| {
        b.iter(|| Workload::Sha.program());
    });
    let program = Workload::Sha.program();
    group.bench_function("simulator_construction", |b| {
        b.iter(|| Simulator::new(CoreConfig::cortex_a9_like(), &program));
    });
    group.finish();
}

fn main() {
    bench_workload_simulation();
    bench_interpreter_vs_ooo();
    bench_capacity_ablation();
    bench_program_build_and_load();
}
