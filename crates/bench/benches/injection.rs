//! Fault-injection benches: mask-generation throughput, per-run injection
//! cost per component, and the cluster-size ablation called out in
//! DESIGN.md (2×2 vs 3×3 vs 4×4 windows).

use mbu_bench::tinybench;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_sram::Geometry;
use mbu_workloads::Workload;

fn bench_mask_generation() {
    let mut group = tinybench::group("mask_generation");
    let geometry = Geometry::new(256, 256); // an L1-like array
    group.throughput_elements(1);
    for faults in 1..=3usize {
        group.bench_function(&format!("cardinality/{faults}"), |b| {
            let mut gen = MaskGenerator::seeded(1, ClusterSpec::DEFAULT);
            b.iter(|| gen.generate(geometry, faults));
        });
    }
    group.finish();
}

fn bench_injection_runs_per_component() {
    let mut group = tinybench::group("campaign_per_component");
    group.sample_size(10);
    for component in HwComponent::ALL {
        group.bench_function(&format!("runs8/{}", component.name()), |b| {
            b.iter(|| {
                Campaign::new(
                    CampaignConfig::new(Workload::Stringsearch, component, 2)
                        .runs(8)
                        .seed(3)
                        .threads(1),
                )
                .run()
            });
        });
    }
    group.finish();
}

/// Ablation: how the cluster window size changes campaign results/cost.
/// The paper fixes 3×3 (quadruple-and-larger rates are ~0); this measures
/// the alternative windows.
fn bench_cluster_size_ablation() {
    let mut group = tinybench::group("cluster_size_ablation");
    group.sample_size(10);
    for (name, cluster) in [
        ("2x2", ClusterSpec::new(2, 2)),
        ("3x3", ClusterSpec::new(3, 3)),
        ("4x4", ClusterSpec::new(4, 4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Campaign::new(
                    CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 3)
                        .runs(8)
                        .seed(9)
                        .threads(1)
                        .cluster(cluster),
                )
                .run()
            });
        });
    }
    group.finish();
}

fn main() {
    bench_mask_generation();
    bench_injection_runs_per_component();
    bench_cluster_size_ablation();
}
