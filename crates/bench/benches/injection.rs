//! Fault-injection benches: mask-generation throughput, per-run injection
//! cost per component, and the cluster-size ablation called out in
//! DESIGN.md (2×2 vs 3×3 vs 4×4 windows).

use mbu_bench::tinybench;
use mbu_cpu::HwComponent;
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_sram::Geometry;
use mbu_workloads::Workload;

fn bench_mask_generation() {
    let mut group = tinybench::group("mask_generation");
    let geometry = Geometry::new(256, 256); // an L1-like array
    group.throughput_elements(1);
    for faults in 1..=3usize {
        group.bench_function(&format!("cardinality/{faults}"), |b| {
            let mut gen = MaskGenerator::seeded(1, ClusterSpec::DEFAULT);
            b.iter(|| gen.generate(geometry, faults));
        });
    }
    group.finish();
}

fn bench_injection_runs_per_component() {
    let mut group = tinybench::group("campaign_per_component");
    group.sample_size(10);
    for component in HwComponent::ALL {
        group.bench_function(&format!("runs8/{}", component.name()), |b| {
            b.iter(|| {
                Campaign::new(
                    CampaignConfig::new(Workload::Stringsearch, component, 2)
                        .runs(8)
                        .seed(3)
                        .threads(1),
                )
                .run()
            });
        });
    }
    group.finish();
}

/// Ablation: how the cluster window size changes campaign results/cost.
/// The paper fixes 3×3 (quadruple-and-larger rates are ~0); this measures
/// the alternative windows.
fn bench_cluster_size_ablation() {
    let mut group = tinybench::group("cluster_size_ablation");
    group.sample_size(10);
    for (name, cluster) in [
        ("2x2", ClusterSpec::new(2, 2)),
        ("3x3", ClusterSpec::new(3, 3)),
        ("4x4", ClusterSpec::new(4, 4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Campaign::new(
                    CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 3)
                        .runs(8)
                        .seed(9)
                        .threads(1)
                        .cluster(cluster),
                )
                .run()
            });
        });
    }
    group.finish();
}

/// Tentpole speedup measurement: the same campaign with and without the
/// provably-masked liveness oracle. Reports wall-clock for both paths plus
/// the skip rate, and cross-checks that the classifications are identical.
fn bench_liveness_oracle_fast_path() {
    let mut group = tinybench::group("liveness_oracle");
    group.sample_size(10);
    // Watchdog off: its shutdown poll (~100 ms) would dwarf the
    // millisecond-scale runs and hide the fast path we are measuring.
    let config = |on: bool| {
        CampaignConfig::new(Workload::Stringsearch, HwComponent::L2, 1)
            .runs(32)
            .seed(17)
            .threads(1)
            .run_wall_budget(None)
            .use_liveness_oracle(on)
    };
    for (name, on) in [("oracle_off", false), ("oracle_on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| Campaign::new(config(on)).run());
        });
    }
    group.finish();
    // One timed pair outside the harness for the headline numbers.
    let t0 = std::time::Instant::now();
    let plain = Campaign::new(config(false)).run();
    let plain_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let fast = Campaign::new(config(true)).run();
    let fast_wall = t1.elapsed();
    assert_eq!(
        plain.counts, fast.counts,
        "oracle must not change classifications"
    );
    eprintln!(
        "liveness oracle: skipped {}/{} runs ({:.0}%), wall {:?} -> {:?} ({:.2}x)",
        fast.oracle_skips,
        fast.counts.total(),
        100.0 * fast.oracle_skips as f64 / fast.counts.total() as f64,
        plain_wall,
        fast_wall,
        plain_wall.as_secs_f64() / fast_wall.as_secs_f64().max(1e-9),
    );
}

fn main() {
    bench_mask_generation();
    bench_injection_runs_per_component();
    bench_cluster_size_ablation();
    bench_liveness_oracle_fast_path();
}
