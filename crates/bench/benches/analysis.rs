//! Analysis-pipeline benches: Eq. 2/3/4 math and result-store CSV handling.

use mbu_bench::tinybench;
use mbu_bench::ResultStore;
use mbu_cpu::HwComponent;
use mbu_gefin::avf::weighted_avf;
use mbu_gefin::campaign::{AnomalyLog, CampaignResult};
use mbu_gefin::classify::ClassCounts;
use mbu_gefin::fit::cpu_fit;
use mbu_gefin::paper;
use mbu_gefin::tech::{node_avf, TechNode};
use mbu_workloads::Workload;

fn full_store() -> ResultStore {
    let mut s = ResultStore::new();
    for (i, c) in HwComponent::ALL.into_iter().enumerate() {
        for (j, w) in Workload::ALL.into_iter().enumerate() {
            for faults in 1..=3usize {
                s.insert(CampaignResult {
                    component: c,
                    workload: w,
                    faults,
                    counts: ClassCounts {
                        masked: 1500 + (i * 31 + j * 7 + faults) as u64,
                        sdc: 200 + (i * 13) as u64,
                        crash: 150 + (j * 5) as u64,
                        timeout: 100,
                        assert_: 50,
                    },
                    fault_free_cycles: 10_000 + (j as u64) * 7_000,
                    fault_free_instructions: 9_000,
                    details: None,
                    anomalies: AnomalyLog::new(),
                    oracle_skips: 0,
                    achieved_margin: Some(0.0251),
                    snapshot_stats: None,
                });
            }
        }
    }
    s
}

fn bench_weighted_avf() {
    let samples: Vec<(f64, u64)> = (0..15).map(|i| (0.01 * i as f64, 1000 + i * 997)).collect();
    let mut group = tinybench::group("analysis");
    group.throughput_elements(samples.len() as u64);
    group.bench_function("weighted_avf_eq2", |b| {
        b.iter(|| weighted_avf(&samples));
    });
    group.finish();
}

fn bench_node_aggregation() {
    let avfs = paper::table5_avfs();
    let mut group = tinybench::group("analysis");
    group.bench_function("node_avf_eq3_all_nodes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for node in TechNode::ALL {
                for a in avfs.values() {
                    acc += node_avf(a, node);
                }
            }
            acc
        });
    });
    group.bench_function("cpu_fit_eq4_all_nodes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for node in TechNode::ALL {
                acc += cpu_fit(&avfs, node).total;
            }
            acc
        });
    });
    group.finish();
}

fn bench_store_roundtrip() {
    let store = full_store();
    let csv = store.to_csv();
    let mut group = tinybench::group("result_store");
    group.throughput_elements(store.len() as u64);
    group.bench_function("to_csv", |b| b.iter(|| store.to_csv()));
    group.bench_function("from_csv", |b| {
        b.iter(|| ResultStore::from_csv(&csv).unwrap())
    });
    group.finish();
}

fn main() {
    bench_weighted_avf();
    bench_node_aggregation();
    bench_store_roundtrip();
}
