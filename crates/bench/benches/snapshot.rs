//! Snapshot fast-path benches: checkpoint recording cost, single-run
//! fast-forward vs from-zero simulation, and the campaign-level off/on
//! pairs behind `repro snapbench` / `BENCH_snapshot.json`.

use mbu_bench::tinybench;
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::{SnapshotSpec, SnapshotStore};
use mbu_sram::{Restorable, Snapshot};
use mbu_workloads::Workload;

fn golden_cycles(core: CoreConfig, w: Workload) -> u64 {
    let r = Simulator::new(core, &w.program()).run(u64::MAX / 8);
    assert_eq!(r.end, RunEnd::Exited { code: 0 });
    r.cycles
}

/// Cost of recording a full golden-run snapshot store (the one-off price
/// every fast-forwarded campaign pays up front).
fn bench_store_recording() {
    let mut group = tinybench::group("snapshot_store");
    group.sample_size(10);
    let core = CoreConfig::cortex_a9_like();
    let w = Workload::Stringsearch;
    let t_ff = golden_cycles(core, w);
    let program = w.program();
    group.bench_function("record_golden/auto_interval", |b| {
        b.iter(|| SnapshotStore::record_golden(core, &program, t_ff, SnapshotSpec::default()));
    });
    group.bench_function("capture_one_snapshot", |b| {
        let mut sim = Simulator::new(core, &program);
        sim.run_until_cycle(t_ff / 2);
        b.iter(|| sim.snapshot());
    });
    group.finish();
}

/// A single mid-run state materialization: restore from the nearest
/// checkpoint vs re-simulating the whole prefix from cycle 0.
fn bench_fast_forward_vs_prefix() {
    let mut group = tinybench::group("fast_forward");
    group.sample_size(10);
    let core = CoreConfig::cortex_a9_like();
    let w = Workload::Stringsearch;
    let t_ff = golden_cycles(core, w);
    let program = w.program();
    let store = SnapshotStore::record_golden(core, &program, t_ff, SnapshotSpec::default());
    let target = t_ff / 2;
    group.bench_function("simulate_prefix_from_zero", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(core, &program);
            sim.run_until_cycle(target);
            sim.cycle()
        });
    });
    group.bench_function("restore_nearest_checkpoint", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(core, &program);
            sim.restore(store.nearest_at_or_before(target));
            sim.run_until_cycle(target);
            sim.cycle()
        });
    });
    group.finish();
}

/// Campaign wall-clock with snapshots off vs on — the pairs `repro
/// snapbench` reports in `BENCH_snapshot.json` — with a classification
/// cross-check so a speedup can never come from classifying differently.
fn bench_campaign_off_vs_on() {
    let mut group = tinybench::group("snapshot_campaign");
    group.sample_size(10);
    // Watchdog off: its shutdown poll (~100 ms) would floor the fast path.
    let config = |component: HwComponent, on: bool| {
        CampaignConfig::new(Workload::Stringsearch, component, 2)
            .runs(32)
            .seed(23)
            .threads(1)
            .run_wall_budget(None)
            .use_snapshots(on)
    };
    for component in [HwComponent::L2, HwComponent::RegFile] {
        for (name, on) in [("snapshots_off", false), ("snapshots_on", true)] {
            group.bench_function(&format!("{}/{name}", component.name()), |b| {
                b.iter(|| Campaign::new(config(component, on)).run());
            });
        }
        let plain = Campaign::new(config(component, false)).run();
        let fast = Campaign::new(config(component, true)).run();
        assert_eq!(
            plain.counts, fast.counts,
            "snapshots must not change classifications"
        );
        let stats = fast.snapshot_stats.expect("fast path records a store");
        eprintln!(
            "{}: {} restores, {}/{} early-masked, {} checkpoints ({} bytes) at {}-cycle interval",
            component.name(),
            stats.restores,
            stats.early_masked,
            fast.counts.total(),
            stats.snapshots,
            stats.retained_bytes,
            stats.interval,
        );
    }
    group.finish();
}

fn main() {
    bench_store_recording();
    bench_fast_forward_vs_prefix();
    bench_campaign_off_vs_on();
}
