//! The generic job manager behind the daemon: bounded concurrent
//! execution, durable per-job state directories, live event streams, and
//! crash-safe restart adoption.
//!
//! The manager knows nothing about what a job *does* — a [`JobBackend`]
//! validates submissions, executes jobs, and serves their artifacts. Each
//! job owns a directory under `<state>/jobs/<id>/` holding `job.json` (the
//! canonical validated spec, written before the submission is
//! acknowledged) and `outcome.json` (written atomically when the job
//! reaches a terminal state). A restarted manager re-adopts terminal jobs
//! as served results and re-queues jobs that never wrote an outcome — the
//! backend's own checkpointing (the fabric's shard stores) makes the
//! re-run a resume, not a restart.

use mbu_gefin::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Retained live events per job; older events are dropped from memory
/// (their sequence numbers stay burned).
const MAX_EVENTS: usize = 10_000;

/// A structured API error: HTTP status + message, rendered as
/// `{"error": …}` by the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
}

impl ApiError {
    /// 400.
    pub fn bad_request(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: msg.into(),
        }
    }

    /// 404.
    pub fn not_found(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: msg.into(),
        }
    }

    /// 409.
    pub fn conflict(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            message: msg.into(),
        }
    }

    /// 429.
    pub fn too_many(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 429,
            message: msg.into(),
        }
    }

    /// 500.
    pub fn internal(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            message: msg.into(),
        }
    }

    /// 503 — the service is up but refusing new work (draining).
    pub fn unavailable(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 503,
            message: msg.into(),
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner slot.
    Queued,
    /// Executing.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled (possibly with partial, resumable results).
    Cancelled,
}

impl JobState {
    /// Kebab-case label used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One live progress event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic per-job sequence number (1-based).
    pub seq: u64,
    /// Kebab-case event kind.
    pub kind: String,
    /// Structured payload.
    pub data: Json,
}

impl Event {
    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::u64(self.seq)),
            ("kind".into(), Json::str(&self.kind)),
            ("data".into(), self.data.clone()),
        ])
    }
}

/// A validated submission: a display title plus the canonical (fully
/// resolved) spec that is persisted and later handed back to
/// [`JobBackend::execute`].
#[derive(Debug, Clone)]
pub struct Submission {
    /// Human-readable description of the job.
    pub title: String,
    /// The canonical spec (every knob resolved to an explicit value).
    pub spec: Json,
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Success, with a summary value.
    Done(Json),
    /// Cooperatively cancelled, with a summary of the partial results.
    Cancelled(Json),
    /// Failure, with an error message.
    Failed(String),
    /// Interrupted by a graceful drain: every in-flight unit persisted its
    /// shard rows, but the job is *not* finished. No `outcome.json` is
    /// written, so a restarted manager re-queues (resumes) the job with
    /// zero lost runs.
    Drained,
}

impl JobOutcome {
    fn state(&self) -> JobState {
        match self {
            JobOutcome::Done(_) => JobState::Done,
            JobOutcome::Cancelled(_) => JobState::Cancelled,
            JobOutcome::Failed(_) => JobState::Failed,
            // Drained jobs go back to the queue; they never reach the
            // terminal-outcome path.
            JobOutcome::Drained => JobState::Queued,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            JobOutcome::Done(v) => Json::Obj(vec![
                ("state".into(), Json::str("done")),
                ("summary".into(), v.clone()),
            ]),
            JobOutcome::Cancelled(v) => Json::Obj(vec![
                ("state".into(), Json::str("cancelled")),
                ("summary".into(), v.clone()),
            ]),
            JobOutcome::Failed(e) => Json::Obj(vec![
                ("state".into(), Json::str("failed")),
                ("error".into(), Json::str(e)),
            ]),
            JobOutcome::Drained => Json::Obj(vec![("state".into(), Json::str("drained"))]),
        }
    }

    fn from_json(v: &Json) -> Option<JobOutcome> {
        match v.get("state")?.as_str()? {
            "done" => Some(JobOutcome::Done(v.get("summary")?.clone())),
            "cancelled" => Some(JobOutcome::Cancelled(v.get("summary")?.clone())),
            "failed" => Some(JobOutcome::Failed(v.get("error")?.as_str()?.to_string())),
            _ => None,
        }
    }
}

/// A result artifact served over HTTP.
#[derive(Debug)]
pub struct Artifact {
    /// `Content-Type` of the body.
    pub content_type: String,
    /// The bytes.
    pub body: Vec<u8>,
}

/// What the manager delegates to the domain layer.
pub trait JobBackend: Send + Sync {
    /// Validates a submission body into a canonical [`Submission`].
    ///
    /// # Errors
    ///
    /// [`ApiError`] (typically 400) describing the defect.
    fn validate(&self, body: &Json) -> Result<Submission, ApiError>;

    /// Runs the job to completion (or cooperative cancellation). The
    /// job's directory, spec, cancellation token and event sink are on
    /// the context.
    fn execute(&self, ctx: &JobContext) -> JobOutcome;

    /// Serves a result artifact for a finished job; `tail` is the path
    /// below `/sweeps/{id}/` (e.g. `["store"]`, `["figures", "3"]`).
    ///
    /// # Errors
    ///
    /// [`ApiError`] for unknown artifacts or rendering failures.
    fn artifact(
        &self,
        ctx: &JobContext,
        tail: &[&str],
        query: &[(String, String)],
    ) -> Result<Artifact, ApiError>;
}

struct JobRecord {
    title: String,
    spec: Json,
    dir: PathBuf,
    state: JobState,
    events: VecDeque<Event>,
    next_seq: u64,
    progress: Option<(usize, usize)>,
    cancel: Arc<AtomicBool>,
    outcome: Option<JobOutcome>,
}

impl JobRecord {
    fn status_json(&self, id: &str) -> Json {
        let mut fields = vec![
            ("id".into(), Json::str(id)),
            ("title".into(), Json::str(&self.title)),
            ("state".into(), Json::str(self.state.as_str())),
            ("spec".into(), self.spec.clone()),
            ("events".into(), Json::u64(self.next_seq)),
        ];
        if let Some((done, total)) = self.progress {
            fields.push((
                "progress".into(),
                Json::Obj(vec![
                    ("done".into(), Json::usize(done)),
                    ("total".into(), Json::usize(total)),
                ]),
            ));
        }
        if let Some(outcome) = &self.outcome {
            fields.push(("outcome".into(), outcome.to_json()));
        }
        Json::Obj(fields)
    }
}

struct Inner {
    jobs: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    running: usize,
    next_id: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Graceful-drain latch: set once, never cleared in-process. While
    /// set, submissions are refused (503), queued jobs stay queued, and
    /// running jobs are asked to stop at the next unit boundary.
    drain: AtomicBool,
}

/// Execution context handed to [`JobBackend::execute`] and
/// [`JobBackend::artifact`].
#[derive(Clone)]
pub struct JobContext {
    /// The job id (`j0001`, …).
    pub id: String,
    /// The job's private state directory.
    pub dir: PathBuf,
    /// The canonical validated spec.
    pub spec: Json,
    cancel: Arc<AtomicBool>,
    shared: Arc<Shared>,
}

impl JobContext {
    /// The cooperative cancellation flag (share it with the fabric).
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Whether cancellation was requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Whether the manager is draining: the job should stop at the next
    /// clean checkpoint and return [`JobOutcome::Drained`].
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }

    /// Appends a live event to the job's stream and wakes event waiters.
    pub fn emit(&self, kind: &str, data: Json) {
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        if let Some(job) = inner.jobs.get_mut(&self.id) {
            push_event(job, kind, data);
        }
        self.shared.cond.notify_all();
    }

    /// Updates the job's `done/total` progress counters.
    pub fn set_progress(&self, done: usize, total: usize) {
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        if let Some(job) = inner.jobs.get_mut(&self.id) {
            job.progress = Some((done, total));
        }
        self.shared.cond.notify_all();
    }
}

fn push_event(job: &mut JobRecord, kind: &str, data: Json) {
    job.next_seq += 1;
    job.events.push_back(Event {
        seq: job.next_seq,
        kind: kind.to_string(),
        data,
    });
    while job.events.len() > MAX_EVENTS {
        job.events.pop_front();
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// The job manager: submission, bounded concurrent execution, events,
/// cancellation, restart adoption.
pub struct JobManager {
    dir: PathBuf,
    backend: Arc<dyn JobBackend>,
    max_jobs: usize,
    queue_limit: usize,
    shared: Arc<Shared>,
}

impl JobManager {
    /// Opens (or creates) the state directory, re-adopts every persisted
    /// job — terminal jobs serve their results, interrupted jobs are
    /// re-queued — and starts runners.
    ///
    /// # Errors
    ///
    /// State-directory I/O failures.
    pub fn new(
        dir: &Path,
        backend: Arc<dyn JobBackend>,
        max_jobs: usize,
        queue_limit: usize,
    ) -> std::io::Result<Arc<JobManager>> {
        let jobs_dir = dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;
        let mut inner = Inner {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            running: 0,
            next_id: 1,
        };
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&jobs_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for job_dir in entries {
            let Some(id) = job_dir
                .file_name()
                .and_then(|n| n.to_str())
                .map(String::from)
            else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(job_dir.join("job.json")) else {
                continue;
            };
            let Ok(meta) = Json::parse(&text) else {
                continue;
            };
            let title = meta
                .get("title")
                .and_then(|t| t.as_str())
                .unwrap_or("untitled")
                .to_string();
            let spec = meta.get("spec").cloned().unwrap_or(Json::Null);
            let outcome = std::fs::read_to_string(job_dir.join("outcome.json"))
                .ok()
                .and_then(|t| Json::parse(&t).ok())
                .and_then(|v| JobOutcome::from_json(&v));
            if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
                inner.next_id = inner.next_id.max(n + 1);
            }
            let mut job = JobRecord {
                title,
                spec,
                dir: job_dir,
                state: JobState::Queued,
                events: VecDeque::new(),
                next_seq: 0,
                progress: None,
                cancel: Arc::new(AtomicBool::new(false)),
                outcome: None,
            };
            match outcome {
                Some(outcome) => {
                    // Finished before the restart: serve its results.
                    job.state = outcome.state();
                    job.outcome = Some(outcome);
                }
                None => {
                    // Interrupted mid-flight: re-queue. The backend's own
                    // checkpointing turns the re-run into a resume.
                    push_event(&mut job, "resumed", Json::Null);
                    inner.queue.push_back(id.clone());
                }
            }
            inner.jobs.insert(id, job);
        }
        let mgr = Arc::new(JobManager {
            dir: dir.to_path_buf(),
            backend,
            max_jobs,
            queue_limit,
            shared: Arc::new(Shared {
                inner: Mutex::new(inner),
                cond: Condvar::new(),
                drain: AtomicBool::new(false),
            }),
        });
        mgr.pump();
        Ok(mgr)
    }

    fn context(&self, id: &str, job: &JobRecord) -> JobContext {
        JobContext {
            id: id.to_string(),
            dir: job.dir.clone(),
            spec: job.spec.clone(),
            cancel: Arc::clone(&job.cancel),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Starts queued jobs while runner slots are free.
    fn pump(self: &Arc<Self>) {
        if self.draining() {
            // Queued jobs stay queued; a restarted manager picks them up.
            return;
        }
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        while inner.running < self.max_jobs {
            let Some(id) = inner.queue.pop_front() else {
                break;
            };
            let Some(job) = inner.jobs.get_mut(&id) else {
                continue;
            };
            job.state = JobState::Running;
            push_event(job, "state", Json::str("running"));
            let ctx = self.context(&id, job);
            inner.running += 1;
            self.shared.cond.notify_all();
            let mgr = Arc::clone(self);
            std::thread::spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    mgr.backend.execute(&ctx)
                }))
                .unwrap_or_else(|_| JobOutcome::Failed("job panicked".into()));
                mgr.complete(&id, outcome);
            });
        }
    }

    /// Records a terminal outcome (durably, then in memory) and frees the
    /// runner slot.
    fn complete(self: &Arc<Self>, id: &str, outcome: JobOutcome) {
        if matches!(outcome, JobOutcome::Drained) {
            // Not terminal: no outcome.json, so both this process and a
            // restarted one see the job as interrupted-and-resumable.
            self.park_drained(id);
            return;
        }
        let dir = {
            let inner = self.shared.inner.lock().expect("jobs lock");
            inner.jobs.get(id).map(|j| j.dir.clone())
        };
        if let Some(dir) = dir {
            // Durable before visible: a crash between these writes leaves
            // no outcome.json, so a restart re-queues (resumes) the job.
            let _ = write_atomic(
                &dir.join("outcome.json"),
                outcome.to_json().encode().as_bytes(),
            );
        }
        {
            let mut inner = self.shared.inner.lock().expect("jobs lock");
            // A queued job cancelled before start never held a runner slot.
            let was_running = inner
                .jobs
                .get(id)
                .is_some_and(|j| j.state == JobState::Running);
            if was_running {
                inner.running = inner.running.saturating_sub(1);
            }
            if let Some(job) = inner.jobs.get_mut(id) {
                job.state = outcome.state();
                push_event(job, "state", Json::str(outcome.state().as_str()));
                job.outcome = Some(outcome);
            }
            self.shared.cond.notify_all();
        }
        self.pump();
    }

    /// Parks a drained job: frees the runner slot, re-queues the job in
    /// memory, and wakes [`JobManager::await_drained`] waiters. Nothing is
    /// written — the absence of `outcome.json` is the durable record.
    fn park_drained(self: &Arc<Self>, id: &str) {
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        let was_running = inner
            .jobs
            .get(id)
            .is_some_and(|j| j.state == JobState::Running);
        if was_running {
            inner.running = inner.running.saturating_sub(1);
        }
        if let Some(job) = inner.jobs.get_mut(id) {
            job.state = JobState::Queued;
            push_event(job, "drained", Json::Null);
        }
        inner.queue.push_front(id.to_string());
        self.shared.cond.notify_all();
    }

    /// Begins a graceful drain: refuses new submissions (503), stops
    /// starting queued jobs, and asks running jobs to stop at their next
    /// clean checkpoint. Irreversible for this process — the intent is to
    /// exit and restart.
    pub fn begin_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
    }

    /// Whether [`JobManager::begin_drain`] was called.
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }

    /// Blocks until every running job has parked or finished, or until
    /// `timeout` passes; returns whether the drain completed in time.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        while inner.running > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(inner, deadline - now)
                .expect("jobs lock");
            inner = guard;
        }
        true
    }

    /// `(running, queued)` job counts, for health reporting.
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.shared.inner.lock().expect("jobs lock");
        (inner.running, inner.queue.len())
    }

    /// Validates and enqueues a submission, returning the new job id.
    ///
    /// # Errors
    ///
    /// 400 from the backend's validation; 429 when the queue is full; 503
    /// while the manager is draining.
    pub fn submit(self: &Arc<Self>, body: &Json) -> Result<String, ApiError> {
        if self.draining() {
            return Err(ApiError::unavailable(
                "draining: not accepting new sweeps; retry after restart",
            ));
        }
        let submission = self.backend.validate(body)?;
        let (id, dir, meta) = {
            let mut inner = self.shared.inner.lock().expect("jobs lock");
            if inner.running >= self.max_jobs && inner.queue.len() >= self.queue_limit {
                return Err(ApiError::too_many(format!(
                    "queue full: {} running, {} queued",
                    inner.running,
                    inner.queue.len()
                )));
            }
            let id = format!("j{:04}", inner.next_id);
            inner.next_id += 1;
            let dir = self.dir.join("jobs").join(&id);
            let meta = Json::Obj(vec![
                ("title".into(), Json::str(&submission.title)),
                ("spec".into(), submission.spec.clone()),
            ]);
            let mut job = JobRecord {
                title: submission.title.clone(),
                spec: submission.spec.clone(),
                dir: dir.clone(),
                state: JobState::Queued,
                events: VecDeque::new(),
                next_seq: 0,
                progress: None,
                cancel: Arc::new(AtomicBool::new(false)),
                outcome: None,
            };
            push_event(&mut job, "submitted", Json::str(&submission.title));
            inner.jobs.insert(id.clone(), job);
            inner.queue.push_back(id.clone());
            (id, dir, meta)
        };
        // Persist the canonical spec before acknowledging: a daemon crash
        // right after the 201 must still know about the job.
        std::fs::create_dir_all(&dir)
            .and_then(|()| write_atomic(&dir.join("job.json"), meta.encode().as_bytes()))
            .map_err(|e| {
                let mut inner = self.shared.inner.lock().expect("jobs lock");
                inner.jobs.remove(&id);
                inner.queue.retain(|q| q != &id);
                ApiError::internal(format!("could not persist job: {e}"))
            })?;
        self.pump();
        Ok(id)
    }

    /// Requests cancellation. Queued jobs cancel immediately; running
    /// jobs drain cooperatively (the fabric finishes in-flight units and
    /// merges partial results).
    ///
    /// # Errors
    ///
    /// 404 for unknown ids, 409 for already-terminal jobs.
    pub fn cancel(self: &Arc<Self>, id: &str) -> Result<JobState, ApiError> {
        let queued_outcome = {
            let mut inner = self.shared.inner.lock().expect("jobs lock");
            let job = inner
                .jobs
                .get_mut(id)
                .ok_or_else(|| ApiError::not_found(format!("no job `{id}`")))?;
            if job.state.is_terminal() {
                return Err(ApiError::conflict(format!(
                    "job `{id}` already {}",
                    job.state.as_str()
                )));
            }
            job.cancel.store(true, Ordering::Relaxed);
            push_event(job, "cancel-requested", Json::Null);
            if job.state == JobState::Queued {
                inner.queue.retain(|q| q != id);
                true
            } else {
                false
            }
        };
        if queued_outcome {
            self.complete(
                id,
                JobOutcome::Cancelled(Json::Obj(vec![(
                    "note".into(),
                    Json::str("cancelled before start"),
                )])),
            );
            Ok(JobState::Cancelled)
        } else {
            self.shared.cond.notify_all();
            Ok(JobState::Running)
        }
    }

    /// The job's status document.
    ///
    /// # Errors
    ///
    /// 404 for unknown ids.
    pub fn status(&self, id: &str) -> Result<Json, ApiError> {
        let inner = self.shared.inner.lock().expect("jobs lock");
        inner
            .jobs
            .get(id)
            .map(|j| j.status_json(id))
            .ok_or_else(|| ApiError::not_found(format!("no job `{id}`")))
    }

    /// All jobs, id-ordered.
    pub fn list(&self) -> Json {
        let inner = self.shared.inner.lock().expect("jobs lock");
        let jobs = inner
            .jobs
            .iter()
            .map(|(id, j)| {
                Json::Obj(vec![
                    ("id".into(), Json::str(id)),
                    ("title".into(), Json::str(&j.title)),
                    ("state".into(), Json::str(j.state.as_str())),
                ])
            })
            .collect();
        Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
    }

    /// Events with `seq > after`, blocking up to `timeout` for new ones.
    /// Returns `(events, terminal)`; an empty batch with `terminal ==
    /// true` means the stream is finished.
    ///
    /// # Errors
    ///
    /// 404 for unknown ids.
    pub fn events_after(
        &self,
        id: &str,
        after: u64,
        timeout: Duration,
    ) -> Result<(Vec<Event>, bool), ApiError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("jobs lock");
        loop {
            let job = inner
                .jobs
                .get(id)
                .ok_or_else(|| ApiError::not_found(format!("no job `{id}`")))?;
            let fresh: Vec<Event> = job
                .events
                .iter()
                .filter(|e| e.seq > after)
                .cloned()
                .collect();
            let terminal = job.state.is_terminal();
            if !fresh.is_empty() || terminal {
                return Ok((fresh, terminal));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok((Vec::new(), false));
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(inner, deadline - now)
                .expect("jobs lock");
            inner = guard;
        }
    }

    /// Serves an artifact of a *finished* job via the backend.
    ///
    /// # Errors
    ///
    /// 404 for unknown ids, 409 while the job is still queued or running,
    /// plus whatever the backend reports.
    pub fn artifact(
        &self,
        id: &str,
        tail: &[&str],
        query: &[(String, String)],
    ) -> Result<Artifact, ApiError> {
        let ctx = {
            let inner = self.shared.inner.lock().expect("jobs lock");
            let job = inner
                .jobs
                .get(id)
                .ok_or_else(|| ApiError::not_found(format!("no job `{id}`")))?;
            if !job.state.is_terminal() {
                return Err(ApiError::conflict(format!(
                    "job `{id}` is still {}; results are served once it finishes",
                    job.state.as_str()
                )));
            }
            self.context(id, job)
        };
        self.backend.artifact(&ctx, tail, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A backend that echoes its spec and waits for cancellation when the
    /// spec says `{"hang": true}`.
    struct EchoBackend;

    impl JobBackend for EchoBackend {
        fn validate(&self, body: &Json) -> Result<Submission, ApiError> {
            if body.get("bad").is_some() {
                return Err(ApiError::bad_request("bad field"));
            }
            Ok(Submission {
                title: "echo".into(),
                spec: body.clone(),
            })
        }

        fn execute(&self, ctx: &JobContext) -> JobOutcome {
            ctx.emit("working", Json::Null);
            if ctx.spec.get("hang").and_then(Json::as_bool) == Some(true) {
                loop {
                    if ctx.cancelled() {
                        return JobOutcome::Cancelled(Json::Null);
                    }
                    if ctx.draining() {
                        return JobOutcome::Drained;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            if ctx.spec.get("panic").is_some() {
                panic!("boom");
            }
            JobOutcome::Done(ctx.spec.clone())
        }

        fn artifact(
            &self,
            ctx: &JobContext,
            tail: &[&str],
            _query: &[(String, String)],
        ) -> Result<Artifact, ApiError> {
            match tail {
                ["spec"] => Ok(Artifact {
                    content_type: "application/json".into(),
                    body: ctx.spec.encode().into_bytes(),
                }),
                _ => Err(ApiError::not_found("no such artifact")),
            }
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbu-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_terminal(mgr: &Arc<JobManager>, id: &str) -> Json {
        for _ in 0..500 {
            let s = mgr.status(id).unwrap();
            if s.get("outcome").is_some() {
                return s;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn submit_execute_and_fetch_artifact() {
        let dir = tmpdir("basic");
        let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        let body = Json::Obj(vec![("x".into(), Json::u64(7))]);
        let id = mgr.submit(&body).unwrap();
        assert_eq!(id, "j0001");
        let status = wait_terminal(&mgr, &id);
        assert_eq!(status.get("state").unwrap().as_str(), Some("done"));
        let art = mgr.artifact(&id, &["spec"], &[]).unwrap();
        assert_eq!(art.body, body.encode().into_bytes());
        let (events, terminal) = mgr.events_after(&id, 0, Duration::from_millis(10)).unwrap();
        assert!(terminal);
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["submitted", "state", "working", "state"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_queue_and_cancel_errors() {
        let dir = tmpdir("errors");
        let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 1, 1).unwrap();
        let bad = mgr.submit(&Json::Obj(vec![("bad".into(), Json::Null)]));
        assert_eq!(bad.unwrap_err().status, 400);
        let hang = Json::Obj(vec![("hang".into(), Json::Bool(true))]);
        let running = mgr.submit(&hang).unwrap();
        let queued = mgr.submit(&hang).unwrap();
        let full = mgr.submit(&hang);
        assert_eq!(full.unwrap_err().status, 429);
        assert_eq!(mgr.cancel("j9999").unwrap_err().status, 404);
        // Results are 409 while running.
        assert_eq!(
            mgr.artifact(&running, &["spec"], &[]).unwrap_err().status,
            409
        );
        // Queued cancels immediately; running drains cooperatively.
        mgr.cancel(&queued).unwrap();
        assert_eq!(
            wait_terminal(&mgr, &queued).get("state").unwrap().as_str(),
            Some("cancelled")
        );
        mgr.cancel(&running).unwrap();
        assert_eq!(
            wait_terminal(&mgr, &running).get("state").unwrap().as_str(),
            Some("cancelled")
        );
        assert_eq!(mgr.cancel(&running).unwrap_err().status, 409);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_job_fails_cleanly() {
        let dir = tmpdir("panic");
        let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 1, 4).unwrap();
        let id = mgr
            .submit(&Json::Obj(vec![("panic".into(), Json::Bool(true))]))
            .unwrap();
        let status = wait_terminal(&mgr, &id);
        assert_eq!(status.get("state").unwrap().as_str(), Some("failed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_parks_running_jobs_and_refuses_new_work() {
        let dir = tmpdir("drain");
        let hang = Json::Obj(vec![("hang".into(), Json::Bool(true))]);
        let (running, queued);
        {
            let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 1, 4).unwrap();
            running = mgr.submit(&hang).unwrap();
            queued = mgr.submit(&hang).unwrap();
            for _ in 0..500 {
                let s = mgr.status(&running).unwrap();
                if s.get("state").unwrap().as_str() == Some("running") {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            mgr.begin_drain();
            assert!(mgr.draining());
            // Admission is refused with a typed 503.
            assert_eq!(mgr.submit(&hang).unwrap_err().status, 503);
            // The running job parks within the timeout…
            assert!(mgr.await_drained(Duration::from_secs(30)));
            // …back to queued, with a drained event and no outcome.json.
            let s = mgr.status(&running).unwrap();
            assert_eq!(s.get("state").unwrap().as_str(), Some("queued"));
            assert!(s.get("outcome").is_none());
            let (events, _) = mgr.events_after(&running, 0, Duration::ZERO).unwrap();
            assert!(events.iter().any(|e| e.kind == "drained"));
            assert!(!dir
                .join("jobs")
                .join(&running)
                .join("outcome.json")
                .exists());
            assert!(!dir.join("jobs").join(&queued).join("outcome.json").exists());
            // The queued job never started.
            let s = mgr.status(&queued).unwrap();
            assert_eq!(s.get("state").unwrap().as_str(), Some("queued"));
        }
        // A restarted manager re-adopts both jobs as resumable work.
        let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 1, 4).unwrap();
        for id in [&running, &queued] {
            let (events, _) = mgr.events_after(id, 0, Duration::ZERO).unwrap();
            assert!(events.iter().any(|e| e.kind == "resumed"), "{id}");
            mgr.cancel(id).unwrap();
            assert_eq!(
                wait_terminal(&mgr, id).get("state").unwrap().as_str(),
                Some("cancelled")
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_adopts_finished_and_requeues_interrupted_jobs() {
        let dir = tmpdir("restart");
        let finished_id;
        {
            let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
            finished_id = mgr
                .submit(&Json::Obj(vec![("x".into(), Json::u64(1))]))
                .unwrap();
            wait_terminal(&mgr, &finished_id);
        }
        // Simulate a job that died mid-flight: job.json without outcome.
        let crashed = dir.join("jobs").join("j0002");
        std::fs::create_dir_all(&crashed).unwrap();
        std::fs::write(
            crashed.join("job.json"),
            Json::Obj(vec![
                ("title".into(), Json::str("echo")),
                ("spec".into(), Json::Obj(vec![("y".into(), Json::u64(2))])),
            ])
            .encode(),
        )
        .unwrap();
        let mgr = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        // The finished job still serves its artifact…
        let art = mgr.artifact(&finished_id, &["spec"], &[]).unwrap();
        assert_eq!(art.body, b"{\"x\":1}");
        // …the interrupted one re-ran to completion…
        let status = wait_terminal(&mgr, "j0002");
        assert_eq!(status.get("state").unwrap().as_str(), Some("done"));
        // …and new ids continue after the adopted ones.
        let next = mgr.submit(&Json::Obj(vec![])).unwrap();
        assert_eq!(next, "j0003");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
