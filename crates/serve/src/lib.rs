//! `mbu-serve` — the long-running injection service substrate.
//!
//! A hand-rolled HTTP/1.1 server (the workspace build must resolve fully
//! offline, so no hyper/axum/tokio), a generic [`jobs::JobManager`] that
//! runs submitted jobs over a bounded worker pool with durable per-job
//! state directories, and a [`daemon`] that routes HTTP requests onto the
//! manager:
//!
//! * `POST /sweeps` — submit a job (validated by the [`jobs::JobBackend`])
//! * `GET /sweeps` / `GET /sweeps/{id}` — queue listing and job status
//! * `GET /sweeps/{id}/events` — live chunked event stream
//! * `POST /sweeps/{id}/cancel` — cooperative cancellation
//! * `GET /sweeps/{id}/{results,store,figures/N}` — backend artifacts
//!
//! The crate is deliberately generic: it knows nothing about fault
//! injection. The experiment harness (`mbu-bench`) plugs in a
//! [`jobs::JobBackend`] that validates sweep specs, drives the distributed
//! fabric, and serves merged result artifacts. Job state (spec, outcome)
//! is persisted under the manager's state directory, so a restarted daemon
//! re-adopts finished jobs and re-queues interrupted ones.

// `deny` (not `forbid`) so the one tiny, documented exception — the
// SIGTERM latch in [`signal`] — can opt in with a scoped `allow`.
#![deny(unsafe_code)]

pub mod daemon;
pub mod http;
pub mod jobs;
#[allow(unsafe_code)]
pub mod signal;

pub use daemon::{serve, serve_with, HealthFn, ServeOptions};
pub use http::{Request, Response};
pub use jobs::{
    ApiError, Artifact, JobBackend, JobContext, JobManager, JobOutcome, JobState, Submission,
};
