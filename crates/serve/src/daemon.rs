//! The HTTP daemon: accepts connections and routes requests onto a
//! [`JobManager`]. Thread-per-connection — the daemon is a control plane
//! for a handful of clients, not a public web server.

use crate::http::{ChunkedWriter, DeadlineStream, ReadError, Request, Response};
use crate::jobs::{ApiError, JobManager, JobState};
use mbu_gefin::json::Json;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one event-stream poll blocks before emitting nothing and
/// re-checking the connection.
const EVENT_POLL: Duration = Duration::from_millis(250);

/// Extra `/healthz` fields supplied by the embedding service (governor
/// state, drain state, …).
pub type HealthFn = Box<dyn Fn() -> Vec<(String, Json)> + Send + Sync>;

/// Operational limits for the accept loop.
pub struct ServeOptions {
    /// Maximum concurrent connections; one past the cap gets an immediate
    /// 503 with `Retry-After` instead of a thread.
    pub conn_max: usize,
    /// Whole-connection wall-clock budget for reading the request and
    /// writing the response. A slow-loris peer trickling bytes cannot hold
    /// a thread past this. Event streams are exempt from the whole-stream
    /// budget but bound each chunk write by it.
    pub io_budget: Duration,
    /// Extra `/healthz` fields.
    pub health: Option<HealthFn>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            conn_max: 64,
            io_budget: Duration::from_secs(30),
            health: None,
        }
    }
}

/// Accepts and serves connections forever with default [`ServeOptions`].
///
/// # Errors
///
/// The listener's terminal `accept` error.
pub fn serve(listener: TcpListener, manager: Arc<JobManager>) -> std::io::Result<()> {
    serve_with(listener, manager, ServeOptions::default())
}

/// Decrements the live-connection count when a handler thread finishes,
/// however it finishes.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Accepts and serves connections forever (until `accept` fails), honoring
/// the connection cap and I/O deadlines in `opts`.
///
/// # Errors
///
/// The listener's terminal `accept` error.
pub fn serve_with(
    listener: TcpListener,
    manager: Arc<JobManager>,
    opts: ServeOptions,
) -> std::io::Result<()> {
    let opts = Arc::new(opts);
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        let (stream, _) = listener.accept()?;
        if live.fetch_add(1, Ordering::SeqCst) >= opts.conn_max {
            live.fetch_sub(1, Ordering::SeqCst);
            // Shed load without spawning: a capped write of the 503.
            let budget = opts.io_budget.min(Duration::from_secs(2));
            std::thread::spawn(move || {
                use std::io::Read;
                let mut writer = DeadlineStream::new(stream, budget);
                let _ = Response::error(503, "connection limit reached")
                    .with_header("Retry-After", "1")
                    .write(&mut writer);
                // Drain what the peer already sent before closing: a close
                // with unread bytes in the receive buffer turns into a
                // reset that can tear the 503 out from under the client.
                let mut sink = [0u8; 1024];
                while matches!(writer.read(&mut sink), Ok(n) if n > 0) {}
            });
            continue;
        }
        let manager = Arc::clone(&manager);
        let opts = Arc::clone(&opts);
        let guard = ConnGuard(Arc::clone(&live));
        std::thread::spawn(move || {
            let _guard = guard;
            handle_connection(stream, &manager, &opts);
        });
    }
}

fn handle_connection(stream: TcpStream, manager: &Arc<JobManager>, opts: &ServeOptions) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(DeadlineStream::new(read_half, opts.io_budget));
    let req = match Request::read(&mut reader) {
        Ok(req) => req,
        Err(err) => {
            let response = match &err {
                ReadError::Eof => return,
                // Torn body: the client promised more bytes than it sent.
                // The read side is gone but the reply side may well be
                // open (a half-close), so answer with a typed 400.
                ReadError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    Response::error(400, "request truncated mid-body")
                }
                ReadError::Io(e) if e.kind() != std::io::ErrorKind::TimedOut => return,
                ReadError::TooLarge => Response::error(413, "request body too large"),
                ReadError::HeadersTooLarge => Response::error(431, "request headers too large"),
                ReadError::Malformed(m) => Response::error(400, &format!("malformed request: {m}")),
                // Slow-loris or torn body: the read deadline expired first.
                ReadError::Io(_) => Response::error(408, "request read timed out"),
            };
            respond(stream, &response, opts);
            return;
        }
    };
    // Event streams write their own (chunked) response. They outlive the
    // connection deadline — a sweep can run for hours — but every chunk
    // write is still bounded so a stalled reader cannot pin the thread.
    let segments = req.path_segments();
    if req.method == "GET"
        && segments.len() == 3
        && segments[0] == "sweeps"
        && segments[2] == "events"
    {
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(Some(opts.io_budget));
        stream_events(&req, segments[1], stream, manager);
        return;
    }
    let response = route(&req, manager, opts);
    respond(stream, &response, opts);
}

/// Writes a fixed response under a fresh write deadline — fresh because
/// the read may have consumed the whole connection budget (a slow-loris
/// 408 must still make it out).
fn respond(stream: TcpStream, response: &Response, opts: &ServeOptions) {
    let mut writer = DeadlineStream::new(stream, opts.io_budget);
    let _ = response.write(&mut writer);
}

fn api_error(e: &ApiError) -> Response {
    let response = Response::error(e.status, &e.message);
    if e.status == 503 {
        // Draining: the daemon is about to restart; clients should retry.
        response.with_header("Retry-After", "5")
    } else {
        response
    }
}

fn route(req: &Request, manager: &Arc<JobManager>, opts: &ServeOptions) -> Response {
    let segments = req.path_segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (running, queued) = manager.counts();
            let mut fields = vec![
                ("ok".into(), Json::Bool(true)),
                ("draining".into(), Json::Bool(manager.draining())),
                ("running".into(), Json::usize(running)),
                ("queued".into(), Json::usize(queued)),
            ];
            if let Some(health) = &opts.health {
                fields.extend(health());
            }
            Response::json(200, &Json::Obj(fields))
        }
        ("GET", ["sweeps"]) => Response::json(200, &manager.list()),
        ("POST", ["sweeps"]) => {
            let body = match std::str::from_utf8(&req.body)
                .map_err(|_| "body is not UTF-8".to_string())
                .and_then(|t| Json::parse(t).map_err(|e| e.to_string()))
            {
                Ok(v) => v,
                Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
            };
            match manager.submit(&body) {
                Ok(id) => Response::json(
                    201,
                    &Json::Obj(vec![
                        ("id".into(), Json::str(&id)),
                        ("state".into(), Json::str("queued")),
                    ]),
                ),
                Err(e) => api_error(&e),
            }
        }
        ("GET", ["sweeps", id]) => match manager.status(id) {
            Ok(status) => Response::json(200, &status),
            Err(e) => api_error(&e),
        },
        ("POST", ["sweeps", id, "cancel"]) => match manager.cancel(id) {
            Ok(state) => Response::json(
                202,
                &Json::Obj(vec![
                    ("id".into(), Json::str(*id)),
                    (
                        "state".into(),
                        Json::str(match state {
                            JobState::Cancelled => "cancelled",
                            _ => "cancelling",
                        }),
                    ),
                ]),
            ),
            Err(e) => api_error(&e),
        },
        ("GET", ["sweeps", id, tail @ ..]) if !tail.is_empty() => {
            match manager.artifact(id, tail, &req.query) {
                Ok(artifact) => Response::bytes(200, &artifact.content_type, artifact.body),
                Err(e) => api_error(&e),
            }
        }
        (_, ["healthz"]) | (_, ["sweeps"]) | (_, ["sweeps", ..]) => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        _ => Response::error(404, &format!("no route for {}", req.path)),
    }
}

/// Streams `{id}`'s events as one JSON object per line, each line its own
/// chunk, until the job reaches a terminal state (or the client leaves).
fn stream_events(req: &Request, id: &str, writer: TcpStream, manager: &Arc<JobManager>) {
    let mut writer = writer;
    let mut seq = req
        .query_param("from")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    // 404 before committing to a chunked response.
    if let Err(e) = manager.status(id) {
        let _ = api_error(&e).write(&mut writer);
        return;
    }
    let Ok(mut out) = ChunkedWriter::new(&mut writer, 200, "application/x-ndjson") else {
        return;
    };
    while let Ok((events, terminal)) = manager.events_after(id, seq, EVENT_POLL) {
        for event in &events {
            seq = seq.max(event.seq);
            let mut line = event.to_json().encode();
            line.push('\n');
            if out.chunk(line.as_bytes()).is_err() {
                // Client went away.
                return;
            }
        }
        if terminal && events.is_empty() {
            break;
        }
    }
    let _ = out.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use crate::jobs::{Artifact, JobBackend, JobContext, JobOutcome, Submission};
    use std::path::PathBuf;

    struct EchoBackend;

    impl JobBackend for EchoBackend {
        fn validate(&self, body: &Json) -> Result<Submission, ApiError> {
            if body.get("bad").is_some() {
                return Err(ApiError::bad_request("bad field"));
            }
            Ok(Submission {
                title: "echo".into(),
                spec: body.clone(),
            })
        }

        fn execute(&self, ctx: &JobContext) -> JobOutcome {
            ctx.emit("tick", Json::u64(1));
            JobOutcome::Done(ctx.spec.clone())
        }

        fn artifact(
            &self,
            ctx: &JobContext,
            tail: &[&str],
            _query: &[(String, String)],
        ) -> Result<Artifact, ApiError> {
            match tail {
                ["store"] => Ok(Artifact {
                    content_type: "text/csv".into(),
                    body: ctx.spec.encode().into_bytes(),
                }),
                _ => Err(ApiError::not_found("no such artifact")),
            }
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbu-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn boot(tag: &str) -> (String, PathBuf, Arc<JobManager>) {
        let dir = tmpdir(tag);
        let manager = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::clone(&manager);
        std::thread::spawn(move || {
            let _ = serve(listener, served);
        });
        (addr, dir, manager)
    }

    #[test]
    fn routes_health_submit_status_and_artifacts() {
        let (addr, dir, _mgr) = boot("routes");
        let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));
        assert!(health.get("running").is_some());
        assert!(health.get("queued").is_some());

        let (status, body) =
            http::request(&addr, "POST", "/sweeps", Some(b"{\"runs\":5}")).unwrap();
        assert_eq!(status, 201);
        let id = Json::parse(std::str::from_utf8(&body).unwrap())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();

        // Poll until terminal, then fetch the artifact.
        for _ in 0..500 {
            let (_, body) = http::request(&addr, "GET", &format!("/sweeps/{id}"), None).unwrap();
            let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            if v.get("outcome").is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (status, body) =
            http::request(&addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"runs\":5}");

        // The event stream replays to terminal and closes.
        let mut lines = Vec::new();
        let status = http::request_stream(
            &addr,
            "GET",
            &format!("/sweeps/{id}/events?from=0"),
            |chunk| {
                lines.push(String::from_utf8(chunk.to_vec()).unwrap());
                true
            },
        )
        .unwrap();
        assert_eq!(status, 200);
        let joined = lines.concat();
        assert!(joined.contains("\"kind\":\"tick\""), "stream: {joined}");
        assert!(joined.contains("\"kind\":\"state\""), "stream: {joined}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn structured_errors_not_connection_drops() {
        let (addr, dir, _mgr) = boot("errors");
        let cases = [
            ("GET", "/nope", None, 404),
            ("DELETE", "/sweeps", None, 405),
            ("POST", "/sweeps", Some(&b"not json"[..]), 400),
            ("POST", "/sweeps", Some(&b"{\"bad\":1}"[..]), 400),
            ("GET", "/sweeps/j9999", None, 404),
            ("POST", "/sweeps/j9999/cancel", None, 404),
            ("GET", "/sweeps/j9999/store", None, 404),
        ];
        for (method, path, body, want) in cases {
            let (status, body) = http::request(&addr, method, path, body).unwrap();
            assert_eq!(status, want, "{method} {path}");
            let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            assert!(
                v.get("error").is_some(),
                "{method} {path} body not structured"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_refuses_submissions_with_retry_after() {
        use std::io::{Read, Write};
        let (addr, dir, mgr) = boot("drain503");
        mgr.begin_drain();
        // Raw socket so the Retry-After header is visible.
        let mut sock = TcpStream::connect(&addr).unwrap();
        write!(
            sock,
            "POST /sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\
             Connection: close\r\n\r\n{{}}"
        )
        .unwrap();
        let mut reply = String::new();
        sock.read_to_string(&mut reply).unwrap();
        assert!(
            reply.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{reply}"
        );
        assert!(reply.contains("Retry-After: 5"), "{reply}");
        // The daemon still answers reads, and healthz reports the drain.
        let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(health.get("draining").and_then(Json::as_bool), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connection_cap_sheds_load_with_503() {
        let dir = tmpdir("cap");
        let manager = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_with(
                listener,
                manager,
                ServeOptions {
                    conn_max: 0,
                    ..ServeOptions::default()
                },
            );
        });
        let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 503);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("error").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_loris_gets_typed_408() {
        use std::io::{Read, Write};
        let dir = tmpdir("loris");
        let manager = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_with(
                listener,
                manager,
                ServeOptions {
                    io_budget: Duration::from_millis(300),
                    ..ServeOptions::default()
                },
            );
        });
        // Send a partial request line and stall past the deadline.
        let mut sock = TcpStream::connect(&addr).unwrap();
        sock.write_all(b"GET /healthz HT").unwrap();
        sock.flush().unwrap();
        let mut reply = String::new();
        let _ = sock.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 408 Request Timeout"), "{reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
