//! The HTTP daemon: accepts connections and routes requests onto a
//! [`JobManager`]. Thread-per-connection — the daemon is a control plane
//! for a handful of clients, not a public web server.

use crate::http::{ChunkedWriter, ReadError, Request, Response};
use crate::jobs::{ApiError, JobManager, JobState};
use mbu_gefin::json::Json;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How long one event-stream poll blocks before emitting nothing and
/// re-checking the connection.
const EVENT_POLL: Duration = Duration::from_millis(250);

/// Accepts and serves connections forever (until `accept` fails).
///
/// # Errors
///
/// The listener's terminal `accept` error.
pub fn serve(listener: TcpListener, manager: Arc<JobManager>) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let manager = Arc::clone(&manager);
        std::thread::spawn(move || handle_connection(stream, &manager));
    }
}

fn handle_connection(stream: TcpStream, manager: &Arc<JobManager>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let req = match Request::read(&mut reader) {
        Ok(req) => req,
        Err(ReadError::Eof) => return,
        Err(ReadError::TooLarge) => {
            let _ = Response::error(413, "request body too large").write(&mut writer);
            return;
        }
        Err(ReadError::Malformed(m)) => {
            let _ = Response::error(400, &format!("malformed request: {m}")).write(&mut writer);
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    // Event streams write their own (chunked) response.
    let segments = req.path_segments();
    if req.method == "GET"
        && segments.len() == 3
        && segments[0] == "sweeps"
        && segments[2] == "events"
    {
        stream_events(&req, segments[1], writer, manager);
        return;
    }
    let response = route(&req, manager);
    let _ = response.write(&mut writer);
}

fn api_error(e: &ApiError) -> Response {
    Response::error(e.status, &e.message)
}

fn route(req: &Request, manager: &Arc<JobManager>) -> Response {
    let segments = req.path_segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            Response::json(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
        }
        ("GET", ["sweeps"]) => Response::json(200, &manager.list()),
        ("POST", ["sweeps"]) => {
            let body = match std::str::from_utf8(&req.body)
                .map_err(|_| "body is not UTF-8".to_string())
                .and_then(|t| Json::parse(t).map_err(|e| e.to_string()))
            {
                Ok(v) => v,
                Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
            };
            match manager.submit(&body) {
                Ok(id) => Response::json(
                    201,
                    &Json::Obj(vec![
                        ("id".into(), Json::str(&id)),
                        ("state".into(), Json::str("queued")),
                    ]),
                ),
                Err(e) => api_error(&e),
            }
        }
        ("GET", ["sweeps", id]) => match manager.status(id) {
            Ok(status) => Response::json(200, &status),
            Err(e) => api_error(&e),
        },
        ("POST", ["sweeps", id, "cancel"]) => match manager.cancel(id) {
            Ok(state) => Response::json(
                202,
                &Json::Obj(vec![
                    ("id".into(), Json::str(*id)),
                    (
                        "state".into(),
                        Json::str(match state {
                            JobState::Cancelled => "cancelled",
                            _ => "cancelling",
                        }),
                    ),
                ]),
            ),
            Err(e) => api_error(&e),
        },
        ("GET", ["sweeps", id, tail @ ..]) if !tail.is_empty() => {
            match manager.artifact(id, tail, &req.query) {
                Ok(artifact) => Response::bytes(200, &artifact.content_type, artifact.body),
                Err(e) => api_error(&e),
            }
        }
        (_, ["healthz"]) | (_, ["sweeps"]) | (_, ["sweeps", ..]) => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        _ => Response::error(404, &format!("no route for {}", req.path)),
    }
}

/// Streams `{id}`'s events as one JSON object per line, each line its own
/// chunk, until the job reaches a terminal state (or the client leaves).
fn stream_events(req: &Request, id: &str, writer: TcpStream, manager: &Arc<JobManager>) {
    let mut writer = writer;
    let mut seq = req
        .query_param("from")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    // 404 before committing to a chunked response.
    if let Err(e) = manager.status(id) {
        let _ = api_error(&e).write(&mut writer);
        return;
    }
    let Ok(mut out) = ChunkedWriter::new(&mut writer, 200, "application/x-ndjson") else {
        return;
    };
    while let Ok((events, terminal)) = manager.events_after(id, seq, EVENT_POLL) {
        for event in &events {
            seq = seq.max(event.seq);
            let mut line = event.to_json().encode();
            line.push('\n');
            if out.chunk(line.as_bytes()).is_err() {
                // Client went away.
                return;
            }
        }
        if terminal && events.is_empty() {
            break;
        }
    }
    let _ = out.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use crate::jobs::{Artifact, JobBackend, JobContext, JobOutcome, Submission};
    use std::path::PathBuf;

    struct EchoBackend;

    impl JobBackend for EchoBackend {
        fn validate(&self, body: &Json) -> Result<Submission, ApiError> {
            if body.get("bad").is_some() {
                return Err(ApiError::bad_request("bad field"));
            }
            Ok(Submission {
                title: "echo".into(),
                spec: body.clone(),
            })
        }

        fn execute(&self, ctx: &JobContext) -> JobOutcome {
            ctx.emit("tick", Json::u64(1));
            JobOutcome::Done(ctx.spec.clone())
        }

        fn artifact(
            &self,
            ctx: &JobContext,
            tail: &[&str],
            _query: &[(String, String)],
        ) -> Result<Artifact, ApiError> {
            match tail {
                ["store"] => Ok(Artifact {
                    content_type: "text/csv".into(),
                    body: ctx.spec.encode().into_bytes(),
                }),
                _ => Err(ApiError::not_found("no such artifact")),
            }
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbu-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn boot(tag: &str) -> (String, PathBuf) {
        let dir = tmpdir(tag);
        let manager = JobManager::new(&dir, Arc::new(EchoBackend), 2, 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve(listener, manager);
        });
        (addr, dir)
    }

    #[test]
    fn routes_health_submit_status_and_artifacts() {
        let (addr, dir) = boot("routes");
        let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_slice()), (200, &b"{\"ok\":true}"[..]));

        let (status, body) =
            http::request(&addr, "POST", "/sweeps", Some(b"{\"runs\":5}")).unwrap();
        assert_eq!(status, 201);
        let id = Json::parse(std::str::from_utf8(&body).unwrap())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();

        // Poll until terminal, then fetch the artifact.
        for _ in 0..500 {
            let (_, body) = http::request(&addr, "GET", &format!("/sweeps/{id}"), None).unwrap();
            let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            if v.get("outcome").is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (status, body) =
            http::request(&addr, "GET", &format!("/sweeps/{id}/store"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"runs\":5}");

        // The event stream replays to terminal and closes.
        let mut lines = Vec::new();
        let status = http::request_stream(
            &addr,
            "GET",
            &format!("/sweeps/{id}/events?from=0"),
            |chunk| {
                lines.push(String::from_utf8(chunk.to_vec()).unwrap());
                true
            },
        )
        .unwrap();
        assert_eq!(status, 200);
        let joined = lines.concat();
        assert!(joined.contains("\"kind\":\"tick\""), "stream: {joined}");
        assert!(joined.contains("\"kind\":\"state\""), "stream: {joined}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn structured_errors_not_connection_drops() {
        let (addr, dir) = boot("errors");
        let cases = [
            ("GET", "/nope", None, 404),
            ("DELETE", "/sweeps", None, 405),
            ("POST", "/sweeps", Some(&b"not json"[..]), 400),
            ("POST", "/sweeps", Some(&b"{\"bad\":1}"[..]), 400),
            ("GET", "/sweeps/j9999", None, 404),
            ("POST", "/sweeps/j9999/cancel", None, 404),
            ("GET", "/sweeps/j9999/store", None, 404),
        ];
        for (method, path, body, want) in cases {
            let (status, body) = http::request(&addr, method, path, body).unwrap();
            assert_eq!(status, want, "{method} {path}");
            let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            assert!(
                v.get("error").is_some(),
                "{method} {path} body not structured"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
