//! A minimal hand-rolled HTTP/1.1 implementation.
//!
//! Server side: request parsing ([`Request::read`]), fixed-body responses
//! ([`Response`]) and chunked event streams ([`ChunkedWriter`]). Client
//! side: [`request`] and [`request_stream`] for the `repro`
//! submit/status/fetch verbs and the integration tests. Every connection
//! is request → response → close (`Connection: close`): the daemon is a
//! low-rate control plane, not a web server, and one-shot connections keep
//! the state machine trivial.

use mbu_gefin::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on request bodies and response bodies read by the client.
pub const MAX_BODY: usize = 1 << 20;

/// Hard cap on one request-line or header line, bytes including CRLF.
pub const MAX_HEADER_LINE: usize = 8192;

/// Hard cap on the number of request headers (header-flood defence).
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line.
    Eof,
    /// The request body exceeded [`MAX_BODY`].
    TooLarge,
    /// A header line exceeded [`MAX_HEADER_LINE`] or the header count
    /// exceeded [`MAX_HEADERS`] (slow-loris / header-flood defence).
    HeadersTooLarge,
    /// The bytes were not parseable HTTP/1.1.
    Malformed(String),
    /// Transport failure.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// A [`TcpStream`] wrapper enforcing one absolute wall-clock deadline
/// across every read and write on the connection. Per-call socket
/// timeouts alone do not stop a slow-loris peer that trickles one byte
/// per timeout window; the deadline is fixed when the connection is
/// accepted and each operation re-arms the socket timeout with whatever
/// budget is left.
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Wraps `stream` with a deadline `budget` from now.
    pub fn new(stream: TcpStream, budget: Duration) -> DeadlineStream {
        DeadlineStream {
            stream,
            deadline: Instant::now() + budget,
        }
    }

    /// Unwraps the stream (for long-lived event streams that outlive the
    /// connection deadline). Socket timeouts armed by previous operations
    /// stay armed; the caller re-arms or clears them.
    pub fn into_inner(self) -> TcpStream {
        self.stream
    }

    fn remaining(&self) -> io::Result<Duration> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "connection deadline exceeded",
            ));
        }
        Ok(self.deadline - now)
    }
}

fn timeout_kind(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.remaining()?;
        self.stream.set_read_timeout(Some(left))?;
        self.stream.read(buf).map_err(|e| {
            if timeout_kind(e.kind()) {
                io::Error::new(io::ErrorKind::TimedOut, "read deadline exceeded")
            } else {
                e
            }
        })
    }
}

impl Write for DeadlineStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let left = self.remaining()?;
        self.stream.set_write_timeout(Some(left))?;
        self.stream.write(buf).map_err(|e| {
            if timeout_kind(e.kind()) {
                io::Error::new(io::ErrorKind::TimedOut, "write deadline exceeded")
            } else {
                e
            }
        })
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// Reads one `\n`-terminated line into `line`, refusing to buffer more
/// than `cap` bytes. `read_line` without a cap lets a header-flood peer
/// grow the buffer without bound; this is the bounded replacement.
fn read_line_capped(
    stream: &mut impl BufRead,
    line: &mut String,
    cap: usize,
) -> Result<usize, ReadError> {
    let mut buf = Vec::new();
    loop {
        let (done, used) = {
            let available = match stream.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(e)),
            };
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..=i]);
                    (true, i + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        stream.consume(used);
        if buf.len() > cap {
            return Err(ReadError::HeadersTooLarge);
        }
        if done || used == 0 {
            break;
        }
    }
    let text = std::str::from_utf8(&buf)
        .map_err(|_| ReadError::Malformed("non-utf8 bytes in headers".into()))?;
    line.push_str(text);
    Ok(buf.len())
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, query string stripped (`/sweeps/j0001`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from the stream.
    ///
    /// # Errors
    ///
    /// [`ReadError::Eof`] on a cleanly closed idle connection, otherwise
    /// the defect that stopped parsing.
    pub fn read(stream: &mut impl BufRead) -> Result<Request, ReadError> {
        let mut line = String::new();
        if read_line_capped(stream, &mut line, MAX_HEADER_LINE)? == 0 {
            return Err(ReadError::Eof);
        }
        let line = line.trim_end();
        let mut parts = line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => return Err(ReadError::Malformed(format!("bad request line `{line}`"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ReadError::Malformed(format!("bad version `{version}`")));
        }
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if read_line_capped(stream, &mut line, MAX_HEADER_LINE)? == 0 {
                return Err(ReadError::Malformed("eof inside headers".into()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Malformed(format!("bad header `{line}`")));
            };
            if headers.len() >= MAX_HEADERS {
                return Err(ReadError::HeadersTooLarge);
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length `{v}`")))
            })
            .transpose()?
            .unwrap_or(0);
        if len > MAX_BODY {
            return Err(ReadError::TooLarge);
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        Ok(Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            headers,
            body,
        })
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Non-empty path segments (`/sweeps/j1/events` → `["sweeps", "j1",
    /// "events"]`).
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One fixed-body HTTP response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra response headers (e.g. `Retry-After` on a 503).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: value.encode().into_bytes(),
        }
    }

    /// A structured JSON error (`{"error": message}`) — the service never
    /// drops connections on bad input.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &Json::Obj(vec![("error".into(), Json::str(message))]),
        )
    }

    /// A raw-bytes response with an explicit content type.
    pub fn bytes(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra response header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Writes the response (with `Content-Length` and `Connection: close`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write(&self, stream: &mut impl Write) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A chunked (`Transfer-Encoding: chunked`) response writer for live event
/// streams: each [`ChunkedWriter::chunk`] is flushed immediately so a
/// polling client sees events as they happen.
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn new(mut stream: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes.
    ///
    /// # Errors
    ///
    /// Transport failures (typically: the client went away).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            // An empty chunk would terminate the stream.
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero chunk.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Reads a chunked body from `stream` until the zero chunk, feeding each
/// chunk to `on_chunk`; returning `false` from the callback stops early.
///
/// # Errors
///
/// Malformed chunk framing or transport failures.
pub fn read_chunked(
    stream: &mut impl BufRead,
    mut on_chunk: impl FnMut(&[u8]) -> bool,
) -> io::Result<()> {
    loop {
        let mut line = String::new();
        if stream.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside chunked body",
            ));
        }
        let len = usize::from_str_radix(line.trim_end(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        let mut chunk = vec![0u8; len + 2];
        stream.read_exact(&mut chunk)?;
        if chunk[len..] != *b"\r\n" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad chunk terminator",
            ));
        }
        if len == 0 {
            return Ok(());
        }
        chunk.truncate(len);
        if !on_chunk(&chunk) {
            return Ok(());
        }
    }
}

fn read_response_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "empty response",
        ));
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside response headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn send_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<BufReader<TcpStream>> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(BufReader::new(stream))
}

/// A one-shot HTTP client request; returns `(status, body)`.
///
/// # Errors
///
/// Connection, transport or framing failures. Non-2xx statuses are *not*
/// errors — the caller inspects the status.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<(u16, Vec<u8>)> {
    let mut reader = send_request(addr, method, path, body)?;
    let (status, headers) = read_response_head(&mut reader)?;
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut out = Vec::new();
    if chunked {
        read_chunked(&mut reader, |c| {
            out.extend_from_slice(c);
            true
        })?;
    } else if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if len > MAX_BODY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response too large",
            ));
        }
        out = vec![0u8; len];
        reader.read_exact(&mut out)?;
    } else {
        reader.read_to_end(&mut out)?;
    }
    Ok((status, out))
}

/// A streaming client request: each chunk of a chunked response is passed
/// to `on_chunk` as it arrives (return `false` to stop). Returns the
/// status code.
///
/// # Errors
///
/// Connection, transport or framing failures.
pub fn request_stream(
    addr: &str,
    method: &str,
    path: &str,
    on_chunk: impl FnMut(&[u8]) -> bool,
) -> io::Result<u16> {
    let mut reader = send_request(addr, method, path, None)?;
    let (status, headers) = read_response_head(&mut reader)?;
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if chunked {
        read_chunked(&mut reader, on_chunk)?;
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw = b"POST /sweeps/j1/events?from=3&x HTTP/1.1\r\n\
                    Host: test\r\nContent-Length: 4\r\n\r\nbody";
        let req = Request::read(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweeps/j1/events");
        assert_eq!(req.path_segments(), vec!["sweeps", "j1", "events"]);
        assert_eq!(req.query_param("from"), Some("3"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.header("HOST"), Some("test"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        let eof = Request::read(&mut Cursor::new(&b""[..]));
        assert!(matches!(eof, Err(ReadError::Eof)));
        let bad = Request::read(&mut Cursor::new(&b"NONSENSE\r\n\r\n"[..]));
        assert!(matches!(bad, Err(ReadError::Malformed(_))));
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let too_large = Request::read(&mut Cursor::new(big.as_bytes()));
        assert!(matches!(too_large, Err(ReadError::TooLarge)));
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full").write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn chunked_roundtrip() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut wire, 200, "application/json").unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"").unwrap();
            w.chunk(b"{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(wire.clone()).unwrap();
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let mut got = Vec::new();
        read_chunked(&mut Cursor::new(&wire[body_at..]), |c| {
            got.push(String::from_utf8(c.to_vec()).unwrap());
            true
        })
        .unwrap();
        assert_eq!(got, vec!["{\"a\":1}\n", "{\"b\":2}\n"]);
    }

    #[test]
    fn header_floods_and_oversized_lines_are_typed() {
        // One header line longer than the cap.
        let long = format!("GET / HTTP/1.1\r\nx-filler: {}\r\n\r\n", "a".repeat(9000));
        let err = Request::read(&mut Cursor::new(long.as_bytes()));
        assert!(matches!(err, Err(ReadError::HeadersTooLarge)), "{err:?}");
        // An oversized request line hits the same cap.
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "p".repeat(9000));
        let err = Request::read(&mut Cursor::new(long_line.as_bytes()));
        assert!(matches!(err, Err(ReadError::HeadersTooLarge)), "{err:?}");
        // Too many individually-small headers.
        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for n in 0..100 {
            flood.push_str(&format!("x-{n}: v\r\n"));
        }
        flood.push_str("\r\n");
        let err = Request::read(&mut Cursor::new(flood.as_bytes()));
        assert!(matches!(err, Err(ReadError::HeadersTooLarge)), "{err:?}");
        // At the boundary everything still parses.
        let mut ok = String::from("GET / HTTP/1.1\r\n");
        for n in 0..MAX_HEADERS {
            ok.push_str(&format!("x-{n}: v\r\n"));
        }
        ok.push_str("\r\n");
        let req = Request::read(&mut Cursor::new(ok.as_bytes())).unwrap();
        assert_eq!(req.headers.len(), MAX_HEADERS);
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        Response::error(503, "draining")
            .with_header("Retry-After", "5")
            .write(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 5\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"draining\"}"));
    }

    #[test]
    fn chunked_reader_rejects_bad_framing() {
        let err = read_chunked(&mut Cursor::new(&b"zz\r\n"[..]), |_| true);
        assert!(err.is_err());
        let err = read_chunked(&mut Cursor::new(&b"2\r\nabXX"[..]), |_| true);
        assert!(err.is_err());
    }
}
