//! Minimal SIGTERM/SIGINT latch for graceful drains.
//!
//! The workspace builds fully offline (no `libc`/`signal-hook`), so the
//! handler is registered through the C library's `signal(2)` directly.
//! This is the only unsafe code in the workspace, and it is deliberately
//! tiny: the handler does exactly one async-signal-safe thing — store to
//! a static atomic — and everything else (stopping admission, parking
//! jobs, exiting) happens on an ordinary watcher thread that polls
//! [`term_requested`]. glibc's `signal` installs with `SA_RESTART`, so
//! blocking accepts and reads continue undisturbed; the watcher thread is
//! what actually drives the drain.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_term(_sig: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handler. Idempotent; call once at daemon
/// start, before accepting connections.
pub fn install_term_handler() {
    let handler = on_term as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a termination signal has arrived since
/// [`install_term_handler`].
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}

/// Test hook: raise the flag as if a signal had arrived.
pub fn request_term() {
    TERM_FLAG.store(true, Ordering::SeqCst);
}
