//! A minimal, dependency-free shim of the [proptest](https://docs.rs/proptest)
//! API surface used by this workspace.
//!
//! The build must resolve fully offline (no registry access), so the real
//! proptest cannot be a dependency. This crate re-implements the subset the
//! property tests actually use — the `proptest!` macro, `Strategy` with
//! `prop_map`, `any::<T>()`, ranges, tuples, `Just`, `prop_oneof!`,
//! `collection::vec`, `sample::Index`, and the `prop_assert*` macros — with
//! deterministic case generation and **no shrinking**: a failing case
//! reports its generated inputs, which are reproducible because the
//! per-case RNG is seeded from the test name and case index.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Why a single generated case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// Runner configuration (`cases` = generated inputs per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic xoshiro256** generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds via SplitMix64 so any `u64` gives a well-mixed state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, bound)` (Lemire multiply-shift; `bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking: `Value`s
/// are produced directly from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
/// The alternatives are shared behind an `Rc`, so the strategy itself is
/// cheaply `Clone` (tests reuse one `prop_oneof!` in several tuples).
pub struct OneOf<T> {
    options: std::rc::Rc<Vec<Box<dyn Strategy<Value = T>>>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        Self {
            options: std::rc::Rc::clone(&self.options),
        }
    }
}

impl<T: fmt::Debug> OneOf<T> {
    /// Builds from the (non-empty) alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self {
            options: std::rc::Rc::new(options),
        }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types (`any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

pub mod sample {
    //! `prop::sample` subset: [`Index`].

    use super::{Arbitrary, TestRng};

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw onto `[0, size)`; `size` must be nonzero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            ((self.0 as u128 * size as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! `proptest::collection` subset: [`vec`].

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod runner {
    //! The per-property case loop behind the `proptest!` macro.

    use super::{ProptestConfig, TestCaseError, TestRng};

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, so each property gets an independent stream.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `config.cases` generated cases of one property. `f` returns the
    /// rendered inputs plus the case verdict; failures panic with both.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let seed = name_seed(name);
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = config.cases as u64 * 16 + 64;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "property `{name}`: too many rejected cases ({attempts} attempts)"
            );
            let mut rng =
                TestRng::seed_from_u64(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (inputs, verdict) = f(&mut rng);
            match verdict {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` failed at case {accepted} (attempt {attempts}):\n  {msg}\n  inputs: {inputs}"
                ),
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::runner::run(&($config), stringify!($name), |__proptest_rng| {
                $(let $param = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                let __proptest_inputs = format!(
                    concat!($(stringify!($param), " = {:?}; "),+),
                    $(&$param),+
                );
                let __proptest_verdict: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__proptest_inputs, __proptest_verdict)
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Asserts inside a property body (fails the case, reporting inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::seed_from_u64(1);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, y in 0usize..=3, f in 0.25f64..=0.75) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(prop_oneof![Just(1u32), Just(2)], 1..8),
            idx in any::<prop::sample::Index>(),
            pair in (1u8..4, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e == 1 || e == 2));
            prop_assert!(idx.index(v.len()) < v.len());
            prop_assert!(pair.0 >= 2 && pair.0 <= 6);
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }
}
