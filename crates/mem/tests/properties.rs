//! Property-based tests of the memory hierarchy: with no injected faults,
//! the cache hierarchy is observationally equivalent to flat memory, and
//! the TLB agrees with the page table.

use mbu_isa::asm::assemble;
use mbu_isa::DATA_BASE;
use mbu_mem::{MemorySystem, MemorySystemConfig, PagePerms, Tlb, TlbConfig, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

/// One generated memory operation inside the data segment.
#[derive(Debug, Clone)]
enum Op {
    Read { offset: u32, width: u32 },
    Write { offset: u32, width: u32, value: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let width = prop_oneof![Just(1u32), Just(2), Just(4)];
    (any::<bool>(), 0u32..16 * 1024, width, any::<u32>()).prop_map(
        |(is_read, raw, width, value)| {
            let offset = raw & !(width - 1); // align
            if is_read {
                Op::Read { offset, width }
            } else {
                Op::Write {
                    offset,
                    width,
                    value,
                }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache hierarchy ≡ flat memory for arbitrary access sequences.
    #[test]
    fn hierarchy_is_observationally_flat(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let program = assemble(".text\nmain: nop\n.data\nbuf: .space 16384\n").unwrap();
        let mut ms = MemorySystem::for_program(MemorySystemConfig::scaled(), &program);
        let mut flat: HashMap<u32, u8> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write { offset, width, value } => {
                    let va = DATA_BASE + offset;
                    ms.write(va, width, value).expect("data segment is mapped");
                    for i in 0..width {
                        flat.insert(va + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Read { offset, width } => {
                    let va = DATA_BASE + offset;
                    let got = ms.read(va, width).expect("data segment is mapped").value;
                    let mut want = 0u32;
                    for i in 0..width {
                        want |= (*flat.get(&(va + i)).unwrap_or(&0) as u32) << (8 * i);
                    }
                    prop_assert_eq!(got, want, "mismatch at va 0x{:08x} width {}", va, width);
                }
            }
        }
        // Draining dirty state to DRAM must preserve every byte.
        ms.flush_caches().expect("no faults in a fault-free run");
        for (&va, &byte) in &flat {
            let pte = ms.page_table().lookup(va / PAGE_SIZE).expect("mapped");
            let pa = pte.ppn * PAGE_SIZE + va % PAGE_SIZE;
            prop_assert_eq!(ms.phys().read_u8(pa).unwrap(), byte);
        }
    }

    /// TLB fill-then-lookup agrees with the installed translation for any
    /// in-range vpn/ppn pair, across arbitrary fill sequences that keep the
    /// entry resident.
    #[test]
    fn tlb_agrees_with_installed_translation(
        fills in proptest::collection::vec((0u32..(1 << 22), 0u32..(1 << 18)), 1..8)
    ) {
        let mut tlb = Tlb::new(TlbConfig { entries: 8, walk_latency: 20 });
        for &(vpn, ppn) in &fills {
            tlb.fill(vpn, ppn, PagePerms::RW);
        }
        // With at most 8 fills into 8 entries, the most recent fill per vpn
        // must be visible (first match wins; duplicates fill separate slots,
        // but the earliest-filled duplicate wins the scan — assert only on
        // vpns filled exactly once).
        let mut counts = HashMap::new();
        for &(vpn, _) in &fills {
            *counts.entry(vpn).or_insert(0u32) += 1;
        }
        for &(vpn, ppn) in &fills {
            if counts[&vpn] == 1 {
                let t = tlb.lookup(vpn).expect("entry resident");
                prop_assert_eq!(t.ppn, ppn);
                prop_assert_eq!(t.perms, PagePerms::RW);
            }
        }
    }

    /// Reading unwritten-but-mapped memory through the hierarchy is zero.
    #[test]
    fn unwritten_memory_reads_zero(offset in 0u32..16 * 1024) {
        let program = assemble(".text\nmain: nop\n.data\nbuf: .space 16384\n").unwrap();
        let mut ms = MemorySystem::for_program(MemorySystemConfig::scaled(), &program);
        let va = DATA_BASE + (offset & !3);
        prop_assert_eq!(ms.read(va, 4).unwrap().value, 0);
    }
}
