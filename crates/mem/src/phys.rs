//! Physical ("system map") memory.
//!
//! The modeled machine has a DRAM of `dram_frames × PAGE_SIZE` starting at
//! physical address 0. Frames are allocated lazily and read as zero until
//! first written. Physical addresses beyond the DRAM are **not part of the
//! system map**: accessing them is an impossible event in a fault-free run
//! and raises the simulator-assertion failure class, exactly like gem5 does
//! when a corrupted TLB or cache tag produces such an address (paper §IV.E).

use crate::PAGE_SIZE;
use mbu_sram::{Restorable, Snapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Error raised when a physical access leaves the system map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmappedPhysical {
    /// The offending physical address.
    pub pa: u32,
}

impl fmt::Display for UnmappedPhysical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical address 0x{:08x} is outside the system map",
            self.pa
        )
    }
}

impl std::error::Error for UnmappedPhysical {}

/// Lazily-allocated physical DRAM.
///
/// # Example
///
/// ```
/// let mut m = mbu_mem::PhysicalMemory::new(1024); // 256 KB of DRAM
/// m.write_line(64, &[7; 32])?;
/// assert_eq!(m.read_line(64)?[0], 7);
/// assert!(m.read_line(0x0400_0000).is_err()); // beyond DRAM
/// # Ok::<(), mbu_mem::phys::UnmappedPhysical>(())
/// ```
/// Frames are reference-counted so that cloning the memory (checkpointing)
/// is page-granular copy-on-write: a clone shares every frame with its
/// source, and a subsequent write to either side copies only the affected
/// page ([`Arc::make_mut`]). N snapshots therefore cost far less than N full
/// DRAM copies.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    dram_frames: u32,
    frames: BTreeMap<u32, Arc<[u8; PAGE_SIZE as usize]>>,
}

impl PhysicalMemory {
    /// Creates a DRAM of `dram_frames` page-sized frames (zero-filled, lazily
    /// allocated).
    ///
    /// # Panics
    ///
    /// Panics if `dram_frames` is zero.
    pub fn new(dram_frames: u32) -> Self {
        assert!(dram_frames > 0, "DRAM must have at least one frame");
        Self {
            dram_frames,
            frames: BTreeMap::new(),
        }
    }

    /// Number of DRAM frames in the system map.
    pub fn dram_frames(&self) -> u32 {
        self.dram_frames
    }

    /// Total DRAM bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_frames as u64 * PAGE_SIZE as u64
    }

    /// Whether `pa` lies inside the system map.
    pub fn contains(&self, pa: u32) -> bool {
        (pa / PAGE_SIZE) < self.dram_frames
    }

    fn check(&self, pa: u32, len: u32) -> Result<(), UnmappedPhysical> {
        let end = pa as u64 + len as u64 - 1;
        if end >= self.dram_bytes() {
            return Err(UnmappedPhysical { pa });
        }
        Ok(())
    }

    /// Reads one aligned 32-byte line.
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if the line is outside the system map.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 32-byte aligned.
    pub fn read_line(&self, pa: u32) -> Result<[u8; 32], UnmappedPhysical> {
        assert_eq!(pa % 32, 0, "line read must be 32-byte aligned");
        self.check(pa, 32)?;
        let mut line = [0u8; 32];
        if let Some(frame) = self.frames.get(&(pa / PAGE_SIZE)) {
            let off = (pa % PAGE_SIZE) as usize;
            line.copy_from_slice(&frame[off..off + 32]);
        }
        Ok(line)
    }

    /// Writes one aligned 32-byte line.
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if the line is outside the system map.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 32-byte aligned.
    pub fn write_line(&mut self, pa: u32, line: &[u8; 32]) -> Result<(), UnmappedPhysical> {
        assert_eq!(pa % 32, 0, "line write must be 32-byte aligned");
        self.check(pa, 32)?;
        let frame = self
            .frames
            .entry(pa / PAGE_SIZE)
            .or_insert_with(|| Arc::new([0; PAGE_SIZE as usize]));
        let off = (pa % PAGE_SIZE) as usize;
        Arc::make_mut(frame)[off..off + 32].copy_from_slice(line);
        Ok(())
    }

    /// Reads a single byte (test/loader convenience).
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if outside the system map.
    pub fn read_u8(&self, pa: u32) -> Result<u8, UnmappedPhysical> {
        self.check(pa, 1)?;
        Ok(self
            .frames
            .get(&(pa / PAGE_SIZE))
            .map(|f| f[(pa % PAGE_SIZE) as usize])
            .unwrap_or(0))
    }

    /// Writes a single byte (loader convenience).
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if outside the system map.
    pub fn write_u8(&mut self, pa: u32, value: u8) -> Result<(), UnmappedPhysical> {
        self.check(pa, 1)?;
        let frame = self
            .frames
            .entry(pa / PAGE_SIZE)
            .or_insert_with(|| Arc::new([0; PAGE_SIZE as usize]));
        Arc::make_mut(frame)[(pa % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Number of frames actually allocated (touched) so far.
    pub fn allocated_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames physically shared (same allocation) with `other` —
    /// the copy-on-write overlap between two checkpoints.
    pub fn frames_shared_with(&self, other: &Self) -> usize {
        self.frames
            .iter()
            .filter(|(pfn, frame)| other.frames.get(pfn).is_some_and(|o| Arc::ptr_eq(frame, o)))
            .count()
    }

    /// Approximate retained heap bytes of this memory image when `prev` is
    /// an already-retained checkpoint: only frames *not* shared with `prev`
    /// are charged. With `prev = None` every allocated frame is charged.
    pub fn retained_bytes(&self, prev: Option<&Self>) -> usize {
        let shared = prev.map_or(0, |p| self.frames_shared_with(p));
        (self.frames.len() - shared) * PAGE_SIZE as usize
    }
}

/// Semantic equality: two memories are equal when every physical byte reads
/// the same. A frame that was never allocated compares equal to an allocated
/// all-zero frame, and frames shared through copy-on-write compare by
/// pointer without touching their bytes.
impl PartialEq for PhysicalMemory {
    fn eq(&self, other: &Self) -> bool {
        const ZERO: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];
        if self.dram_frames != other.dram_frames {
            return false;
        }
        let mut a = self.frames.iter().peekable();
        let mut b = other.frames.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => return true,
                (Some((_, fa)), None) => {
                    if ***fa != ZERO {
                        return false;
                    }
                    a.next();
                }
                (None, Some((_, fb))) => {
                    if ***fb != ZERO {
                        return false;
                    }
                    b.next();
                }
                (Some((ka, fa)), Some((kb, fb))) => {
                    if ka < kb {
                        if ***fa != ZERO {
                            return false;
                        }
                        a.next();
                    } else if kb < ka {
                        if ***fb != ZERO {
                            return false;
                        }
                        b.next();
                    } else {
                        if !Arc::ptr_eq(fa, fb) && fa != fb {
                            return false;
                        }
                        a.next();
                        b.next();
                    }
                }
            }
        }
    }
}

impl Eq for PhysicalMemory {}

impl Snapshot for PhysicalMemory {
    type State = PhysicalMemory;

    fn snapshot(&self) -> PhysicalMemory {
        // Clone is copy-on-write: shares every frame with `self`.
        self.clone()
    }
}

impl Restorable for PhysicalMemory {
    fn restore(&mut self, state: &PhysicalMemory) {
        self.clone_from(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_zero_filled() {
        let m = PhysicalMemory::new(4);
        assert_eq!(m.read_line(0).unwrap(), [0u8; 32]);
        assert_eq!(m.allocated_frames(), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = PhysicalMemory::new(4);
        let mut line = [0u8; 32];
        line[5] = 0xAB;
        m.write_line(PAGE_SIZE + 32, &line).unwrap();
        assert_eq!(m.read_line(PAGE_SIZE + 32).unwrap()[5], 0xAB);
        assert_eq!(m.read_line(PAGE_SIZE).unwrap(), [0u8; 32]);
        assert_eq!(m.allocated_frames(), 1);
    }

    #[test]
    fn outside_system_map_errors() {
        let mut m = PhysicalMemory::new(2);
        assert_eq!(
            m.read_line(2 * PAGE_SIZE),
            Err(UnmappedPhysical { pa: 2 * PAGE_SIZE })
        );
        assert!(m.write_line(0x7FFF_FFE0, &[0; 32]).is_err());
        assert!(m.read_u8(2 * PAGE_SIZE).is_err());
    }

    #[test]
    fn byte_ops() {
        let mut m = PhysicalMemory::new(1);
        m.write_u8(100, 42).unwrap();
        assert_eq!(m.read_u8(100).unwrap(), 42);
        assert_eq!(m.read_u8(101).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_line_panics() {
        let m = PhysicalMemory::new(1);
        let _ = m.read_line(16);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut m = PhysicalMemory::new(8);
        for f in 0..4 {
            m.write_line(f * PAGE_SIZE, &[f as u8 + 1; 32]).unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.frames_shared_with(&m), 4);
        // Writing one page after the snapshot unshares only that page.
        m.write_u8(0, 0xEE).unwrap();
        assert_eq!(snap.frames_shared_with(&m), 3);
        assert_eq!(snap.read_u8(0).unwrap(), 1, "snapshot must be unaffected");
        assert_eq!(m.read_u8(0).unwrap(), 0xEE);
        assert_eq!(snap.retained_bytes(Some(&m)), PAGE_SIZE as usize);
    }

    #[test]
    fn restore_rewinds_contents() {
        let mut m = PhysicalMemory::new(4);
        m.write_line(0, &[9; 32]).unwrap();
        let snap = m.snapshot();
        m.write_line(0, &[1; 32]).unwrap();
        m.write_line(PAGE_SIZE, &[2; 32]).unwrap();
        m.restore(&snap);
        assert_eq!(m, snap);
        assert_eq!(m.read_line(0).unwrap(), [9; 32]);
        assert_eq!(m.read_line(PAGE_SIZE).unwrap(), [0; 32]);
    }

    #[test]
    fn equality_treats_zero_frames_as_absent() {
        let mut a = PhysicalMemory::new(4);
        let b = PhysicalMemory::new(4);
        a.write_line(PAGE_SIZE, &[0; 32]).unwrap(); // allocates a zero frame
        assert_eq!(a.allocated_frames(), 1);
        assert_eq!(a, b);
        a.write_u8(PAGE_SIZE, 1).unwrap();
        assert_ne!(a, b);
    }
}
