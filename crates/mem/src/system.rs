//! The assembled memory system: split L1s, unified L2, two TLBs, page table
//! and physical DRAM — the memory side of Table I.

use crate::cache::{Cache, CacheConfig, DramBacking, LineStore, LINE_BYTES};
use crate::paging::{PagePerms, PageTable};
use crate::phys::{PhysicalMemory, UnmappedPhysical};
use crate::probe::{record_cache_access, Demand, MemProbes};
use crate::tlb::{Tlb, TlbConfig, ENTRY_BITS, PPN_SHIFT, VPN_SHIFT};
use crate::{AddressSpace, PAGE_SIZE, PPN_BITS, VA_BITS, VPN_BITS};
use mbu_isa::program::{Program, DATA_BASE, STACK_SIZE, STACK_TOP, TEXT_BASE};
use mbu_sram::{Restorable, Snapshot};
use std::fmt;

/// A value annotated with the access latency that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// The accessed value.
    pub value: T,
    /// Total latency in cycles.
    pub latency: u32,
}

/// Kind of memory access, for permission checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (requires execute permission).
    Fetch,
    /// Data load (requires read permission).
    Read,
    /// Data store (requires write permission).
    Write,
}

/// A memory-system fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Unmapped virtual address — a process-level fault (segfault).
    PageFault {
        /// Offending virtual address.
        va: u32,
    },
    /// Permission violation — a process-level fault.
    Protection {
        /// Offending virtual address.
        va: u32,
        /// The attempted access kind.
        kind: AccessKind,
    },
    /// Physical address outside the system map — in gem5 terms a simulator
    /// assertion (§IV.E); only reachable through corrupted TLB/tag bits.
    OutsideSystemMap {
        /// Offending physical address.
        pa: u32,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemFault::PageFault { va } => write!(f, "page fault at va 0x{va:08x}"),
            MemFault::Protection { va, kind } => {
                write!(f, "protection fault ({kind:?}) at va 0x{va:08x}")
            }
            MemFault::OutsideSystemMap { pa } => {
                write!(f, "physical address 0x{pa:08x} outside system map")
            }
        }
    }
}

impl std::error::Error for MemFault {}

impl From<UnmappedPhysical> for MemFault {
    fn from(e: UnmappedPhysical) -> Self {
        MemFault::OutsideSystemMap { pa: e.pa }
    }
}

/// Configuration of the whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySystemConfig {
    /// L1 instruction cache shape.
    pub l1i: CacheConfig,
    /// L1 data cache shape.
    pub l1d: CacheConfig,
    /// Unified L2 shape.
    pub l2: CacheConfig,
    /// Instruction TLB shape.
    pub itlb: TlbConfig,
    /// Data TLB shape.
    pub dtlb: TlbConfig,
    /// DRAM frames in the system map.
    pub dram_frames: u32,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
}

impl MemorySystemConfig {
    /// The paper's full Table I memory configuration (32 KB L1s, 512 KB L2,
    /// 32-entry TLBs) over a 48 MB system map. Used for configuration
    /// fidelity tests and capacity-ablation benches; the injection
    /// experiments default to [`MemorySystemConfig::scaled`].
    pub fn table1() -> Self {
        Self {
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            itlb: TlbConfig::default(),
            dtlb: TlbConfig::default(),
            dram_frames: 196_608, // 48 MB of 256 B frames
            dram_latency: 50,
        }
    }

    /// The scaled experimental configuration: cache and TLB capacities
    /// scaled with the ~100×-scaled-down workloads so that *occupancy and
    /// pressure* (live bits / capacity, live TLB entries / entries) match
    /// the paper's full-system runs. 2 KB L1I, 2 KB L1D, 8 KB L2; TLB
    /// entry counts chosen so each TLB's *reach* matches its working set
    /// (hot code ≈ 1 KB → 4 ITLB entries; hot data ≈ 2 KB → 8 DTLB
    /// entries), reproducing the resident-and-live entry pattern that
    /// drives the paper's TLB AVFs. (8 DTLB entries measured best against
    /// the paper's per-benchmark DTLB profiles; see EXPERIMENTS.md.)
    pub fn scaled() -> Self {
        Self {
            l1i: CacheConfig::l1i_scaled(),
            l1d: CacheConfig::l1d_scaled(),
            l2: CacheConfig::l2_scaled(),
            itlb: TlbConfig {
                entries: 4,
                walk_latency: 20,
            },
            dtlb: TlbConfig {
                entries: 8,
                walk_latency: 20,
            },
            dram_frames: 196_608,
            dram_latency: 50,
        }
    }
}

impl Default for MemorySystemConfig {
    /// The scaled experimental configuration ([`MemorySystemConfig::scaled`]).
    fn default() -> Self {
        Self::scaled()
    }
}

/// L2 + DRAM as the backing store for an L1.
struct L2Backing<'a> {
    l2: &'a mut Cache,
    mem: &'a mut PhysicalMemory,
    dram_latency: u32,
    probes: Option<&'a mut MemProbes>,
    now: u64,
}

impl LineStore for L2Backing<'_> {
    fn load_line(&mut self, pa_line: u32) -> Result<([u8; 32], u32), UnmappedPhysical> {
        let before = self.l2.stats();
        let (line, lat) = {
            let mut dram = DramBacking {
                mem: self.mem,
                latency: self.dram_latency,
            };
            self.l2.access(pa_line, false, &mut dram)?
        };
        if let Some(p) = self.probes.as_deref_mut() {
            record_cache_access(
                self.l2,
                &mut p.l2_data,
                &mut p.l2_tag,
                self.now,
                pa_line,
                line,
                before,
                Demand::Read {
                    offset: 0,
                    width: LINE_BYTES,
                },
            );
        }
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&self.l2.read_bytes(line, 0, LINE_BYTES));
        Ok((bytes, lat))
    }

    fn store_line(&mut self, pa_line: u32, line_bytes: &[u8; 32]) -> Result<u32, UnmappedPhysical> {
        let before = self.l2.stats();
        let (line, lat) = {
            let mut dram = DramBacking {
                mem: self.mem,
                latency: self.dram_latency,
            };
            self.l2.access(pa_line, true, &mut dram)?
        };
        if let Some(p) = self.probes.as_deref_mut() {
            record_cache_access(
                self.l2,
                &mut p.l2_data,
                &mut p.l2_tag,
                self.now,
                pa_line,
                line,
                before,
                Demand::Write {
                    offset: 0,
                    width: LINE_BYTES,
                },
            );
        }
        self.l2.write_bytes(line, 0, line_bytes);
        Ok(lat)
    }
}

/// The full memory hierarchy of the modeled CPU.
///
/// # Example
///
/// ```
/// use mbu_isa::asm::assemble;
/// use mbu_mem::{MemorySystem, MemorySystemConfig};
///
/// let p = assemble(".text\nmain: nop\n.data\nv: .word 7\n")?;
/// let mut ms = MemorySystem::for_program(MemorySystemConfig::default(), &p);
/// let word = ms.read(p.symbol("v").unwrap(), 4)?;
/// assert_eq!(word.value, 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MemorySystem {
    config: MemorySystemConfig,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2 cache.
    pub l2: Cache,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    page_table: PageTable,
    phys: PhysicalMemory,
    probes: Option<Box<MemProbes>>,
    probe_cycle: u64,
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Creates a memory system over an existing page table and DRAM image.
    pub fn new(config: MemorySystemConfig, page_table: PageTable, phys: PhysicalMemory) -> Self {
        Self {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            page_table,
            phys,
            probes: None,
            probe_cycle: 0,
        }
    }

    /// Builds the address space for `program` (text RX, data + 64 KB heap RW,
    /// stack RW), loads the segments into DRAM and returns the ready system.
    pub fn for_program(config: MemorySystemConfig, program: &Program) -> Self {
        let mut aspace = AddressSpace::new(config.dram_frames);
        aspace.map_segment(
            TEXT_BASE,
            (program.text.len().max(1) * 4) as u32,
            PagePerms::RX,
        );
        aspace.map_segment(
            DATA_BASE,
            program.data.len() as u32 + 64 * 1024,
            PagePerms::RW,
        );
        aspace.map_segment(STACK_TOP - STACK_SIZE, STACK_SIZE, PagePerms::RW);
        let mut phys = PhysicalMemory::new(config.dram_frames);
        for (i, word) in program.text.iter().enumerate() {
            let va = TEXT_BASE + (i * 4) as u32;
            let pa = aspace.translate(va).expect("text page mapped");
            for (b, byte) in word.to_le_bytes().iter().enumerate() {
                phys.write_u8(pa + b as u32, *byte)
                    .expect("text inside system map");
            }
        }
        for (i, byte) in program.data.iter().enumerate() {
            let pa = aspace
                .translate(DATA_BASE + i as u32)
                .expect("data page mapped");
            phys.write_u8(pa, *byte).expect("data inside system map");
        }
        Self::new(config, aspace.page_table(), phys)
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> MemorySystemConfig {
        self.config
    }

    /// The underlying page table (read-only; not an injection target).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The physical DRAM (test introspection).
    pub fn phys(&self) -> &PhysicalMemory {
        &self.phys
    }

    /// Attaches liveness probes; subsequent accesses report their SRAM
    /// events at the cycle last given to [`MemorySystem::set_probe_cycle`].
    pub fn attach_probes(&mut self, probes: MemProbes) {
        self.probes = Some(Box::new(probes));
    }

    /// Detaches and returns the probes, if any were attached.
    pub fn detach_probes(&mut self) -> Option<MemProbes> {
        self.probes.take().map(|b| *b)
    }

    /// Whether any probe bundle is attached.
    pub fn probes_attached(&self) -> bool {
        self.probes.is_some()
    }

    /// Sets the cycle stamp attached to subsequent probe events. The owning
    /// core calls this once per simulated cycle while probes are attached.
    pub fn set_probe_cycle(&mut self, cycle: u64) {
        self.probe_cycle = cycle;
    }

    fn translate(&mut self, va: u32, kind: AccessKind) -> Result<Timed<u32>, MemFault> {
        if (va as u64) >= (1u64 << VA_BITS) {
            return Err(MemFault::PageFault { va });
        }
        let vpn = va / PAGE_SIZE;
        let now = self.probe_cycle;
        let is_fetch = matches!(kind, AccessKind::Fetch);
        let tlb = if is_fetch {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        let mut probe = self.probes.as_deref_mut().and_then(|p| {
            if is_fetch {
                p.itlb.as_mut()
            } else {
                p.dtlb.as_mut()
            }
        });
        if let Some(p) = probe.as_mut() {
            // The fully-associative lookup compares valid + VPN of every
            // entry (conservative superset of the early-exit scan).
            for row in 0..tlb.config().entries {
                p.on_read(now, row, VPN_SHIFT as usize, (VPN_BITS + 1) as usize);
            }
        }
        let (ppn, perms, latency) = match tlb.lookup_indexed(vpn) {
            Some((row, t)) => {
                if let Some(p) = probe.as_mut() {
                    p.on_read(now, row, 0, (PPN_SHIFT + PPN_BITS) as usize);
                }
                (t.ppn, t.perms, 0)
            }
            None => {
                let walk = tlb.config().walk_latency;
                let pte = self
                    .page_table
                    .lookup(vpn)
                    .ok_or(MemFault::PageFault { va })?;
                let victim = tlb.victim_index();
                tlb.fill(vpn, pte.ppn, pte.perms);
                if let Some(p) = probe.as_mut() {
                    p.on_overwrite(now, victim, 0, ENTRY_BITS as usize);
                }
                (pte.ppn, pte.perms, walk)
            }
        };
        let allowed = match kind {
            AccessKind::Fetch => perms.exec,
            AccessKind::Read => perms.read,
            AccessKind::Write => perms.write,
        };
        if !allowed {
            return Err(MemFault::Protection { va, kind });
        }
        Ok(Timed {
            value: ppn * PAGE_SIZE + va % PAGE_SIZE,
            latency,
        })
    }

    /// Fetches an aligned instruction word through the ITLB and L1I.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] along the translation and cache path.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not 4-byte aligned (the core checks alignment).
    pub fn fetch(&mut self, va: u32) -> Result<Timed<u32>, MemFault> {
        assert_eq!(va % 4, 0, "fetch must be word-aligned");
        let t = self.translate(va, AccessKind::Fetch)?;
        let now = self.probe_cycle;
        let before = self.l1i.stats();
        let (line, lat) = {
            let mut next = L2Backing {
                l2: &mut self.l2,
                mem: &mut self.phys,
                dram_latency: self.config.dram_latency,
                probes: self.probes.as_deref_mut(),
                now,
            };
            self.l1i.access(t.value, false, &mut next)?
        };
        if let Some(p) = self.probes.as_deref_mut() {
            record_cache_access(
                &self.l1i,
                &mut p.l1i_data,
                &mut p.l1i_tag,
                now,
                t.value,
                line,
                before,
                Demand::Read {
                    offset: t.value % LINE_BYTES,
                    width: 4,
                },
            );
        }
        let bytes = self.l1i.read_bytes(line, t.value % LINE_BYTES, 4);
        let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        Ok(Timed {
            value: word,
            latency: t.latency + lat,
        })
    }

    /// Loads `width` (1, 2 or 4) bytes through the DTLB and L1D.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] along the translation and cache path.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not `width`-aligned or `width` is not 1, 2 or 4.
    pub fn read(&mut self, va: u32, width: u32) -> Result<Timed<u32>, MemFault> {
        assert!(matches!(width, 1 | 2 | 4), "width must be 1, 2 or 4");
        assert_eq!(va % width, 0, "read must be width-aligned");
        let t = self.translate(va, AccessKind::Read)?;
        let now = self.probe_cycle;
        let before = self.l1d.stats();
        let (line, lat) = {
            let mut next = L2Backing {
                l2: &mut self.l2,
                mem: &mut self.phys,
                dram_latency: self.config.dram_latency,
                probes: self.probes.as_deref_mut(),
                now,
            };
            self.l1d.access(t.value, false, &mut next)?
        };
        if let Some(p) = self.probes.as_deref_mut() {
            record_cache_access(
                &self.l1d,
                &mut p.l1d_data,
                &mut p.l1d_tag,
                now,
                t.value,
                line,
                before,
                Demand::Read {
                    offset: t.value % LINE_BYTES,
                    width,
                },
            );
        }
        let bytes = self.l1d.read_bytes(line, t.value % LINE_BYTES, width);
        let mut value = 0u32;
        for (i, b) in bytes.iter().enumerate() {
            value |= (*b as u32) << (8 * i);
        }
        Ok(Timed {
            value,
            latency: t.latency + lat,
        })
    }

    /// Stores the low `width` bytes of `value` through the DTLB and L1D.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] along the translation and cache path.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not `width`-aligned or `width` is not 1, 2 or 4.
    pub fn write(&mut self, va: u32, width: u32, value: u32) -> Result<Timed<()>, MemFault> {
        assert!(matches!(width, 1 | 2 | 4), "width must be 1, 2 or 4");
        assert_eq!(va % width, 0, "write must be width-aligned");
        let t = self.translate(va, AccessKind::Write)?;
        let now = self.probe_cycle;
        let before = self.l1d.stats();
        let (line, lat) = {
            let mut next = L2Backing {
                l2: &mut self.l2,
                mem: &mut self.phys,
                dram_latency: self.config.dram_latency,
                probes: self.probes.as_deref_mut(),
                now,
            };
            self.l1d.access(t.value, true, &mut next)?
        };
        if let Some(p) = self.probes.as_deref_mut() {
            record_cache_access(
                &self.l1d,
                &mut p.l1d_data,
                &mut p.l1d_tag,
                now,
                t.value,
                line,
                before,
                Demand::Write {
                    offset: t.value % LINE_BYTES,
                    width,
                },
            );
        }
        let bytes: Vec<u8> = (0..width).map(|i| (value >> (8 * i)) as u8).collect();
        self.l1d.write_bytes(line, t.value % LINE_BYTES, &bytes);
        Ok(Timed {
            value: (),
            latency: t.latency + lat,
        })
    }

    /// Liveness-aware comparison against a golden checkpoint: every
    /// reachable bit of every cache, both TLBs and DRAM must match. The page
    /// table is immutable after construction and is not compared; probe
    /// attachments are non-architectural and ignored.
    pub fn converged_with(&self, golden: &MemSnapshot) -> bool {
        self.l1i.converged_with(&golden.l1i)
            && self.l1d.converged_with(&golden.l1d)
            && self.l2.converged_with(&golden.l2)
            && self.itlb.converged_with(&golden.itlb)
            && self.dtlb.converged_with(&golden.dtlb)
            && self.phys == golden.phys
    }

    /// Drains all dirty cache state to DRAM (verification helper).
    ///
    /// # Errors
    ///
    /// Propagates faults from corrupted tags.
    pub fn flush_caches(&mut self) -> Result<(), MemFault> {
        {
            let mut next = L2Backing {
                l2: &mut self.l2,
                mem: &mut self.phys,
                dram_latency: self.config.dram_latency,
                probes: self.probes.as_deref_mut(),
                now: self.probe_cycle,
            };
            self.l1d.flush_dirty(&mut next)?;
        }
        let mut dram = DramBacking {
            mem: &mut self.phys,
            latency: self.config.dram_latency,
        };
        self.l2.flush_dirty(&mut dram)?;
        Ok(())
    }
}

/// A bit-exact checkpoint of all mutable memory-hierarchy state: both L1s,
/// the L2, both TLBs (arrays, replacement metadata and counters) and the
/// physical DRAM (shared page-granular copy-on-write, so holding many
/// checkpoints costs only the pages that differ between them).
///
/// The page table is deliberately absent: it is immutable after
/// [`MemorySystem::for_program`] and is re-created identically by
/// constructing a fresh system for the same program. Probe attachments are
/// non-architectural and are likewise excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSnapshot {
    pub(crate) l1i: Cache,
    pub(crate) l1d: Cache,
    pub(crate) l2: Cache,
    pub(crate) itlb: Tlb,
    pub(crate) dtlb: Tlb,
    pub(crate) phys: PhysicalMemory,
}

impl MemSnapshot {
    /// Approximate retained heap bytes of this checkpoint. DRAM pages and
    /// copy-on-write cache arrays shared with `prev` (an already-retained
    /// checkpoint) are not charged again.
    pub fn retained_bytes(&self, prev: Option<&Self>) -> usize {
        self.l1i.retained_bytes(prev.map(|p| &p.l1i))
            + self.l1d.retained_bytes(prev.map(|p| &p.l1d))
            + self.l2.retained_bytes(prev.map(|p| &p.l2))
            + self.itlb.snapshot_bytes()
            + self.dtlb.snapshot_bytes()
            + self.phys.retained_bytes(prev.map(|p| &p.phys))
    }
}

impl Snapshot for MemorySystem {
    type State = MemSnapshot;

    fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            l1i: self.l1i.snapshot(),
            l1d: self.l1d.snapshot(),
            l2: self.l2.snapshot(),
            itlb: self.itlb.snapshot(),
            dtlb: self.dtlb.snapshot(),
            phys: self.phys.snapshot(),
        }
    }
}

impl Restorable for MemorySystem {
    fn restore(&mut self, state: &MemSnapshot) {
        self.l1i.restore(&state.l1i);
        self.l1d.restore(&state.l1d);
        self.l2.restore(&state.l2);
        self.itlb.restore(&state.itlb);
        self.dtlb.restore(&state.dtlb);
        self.phys.restore(&state.phys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_isa::asm::assemble;
    use mbu_sram::{BitCoord, Injectable};

    fn system_for(src: &str) -> (MemorySystem, Program) {
        let p = assemble(src).unwrap();
        (
            MemorySystem::for_program(MemorySystemConfig::default(), &p),
            p,
        )
    }

    #[test]
    fn program_image_visible_through_hierarchy() {
        let (mut ms, p) = system_for(".text\nmain: nop\nsyscall\n.data\nv: .word 0xDEADBEEF\n");
        let f = ms.fetch(TEXT_BASE + 4).unwrap();
        assert_eq!(f.value, mbu_isa::encode(mbu_isa::Instruction::Syscall));
        let r = ms.read(p.symbol("v").unwrap(), 4).unwrap();
        assert_eq!(r.value, 0xDEADBEEF);
    }

    #[test]
    fn write_read_roundtrip_all_widths() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        let base = DATA_BASE + 0x100;
        ms.write(base, 4, 0x11223344).unwrap();
        ms.write(base + 4, 2, 0xBEEF).unwrap();
        ms.write(base + 6, 1, 0x7F).unwrap();
        assert_eq!(ms.read(base, 4).unwrap().value, 0x11223344);
        assert_eq!(ms.read(base + 4, 2).unwrap().value, 0xBEEF);
        assert_eq!(ms.read(base + 6, 1).unwrap().value, 0x7F);
    }

    #[test]
    fn first_access_pays_walk_and_misses() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        let t1 = ms.read(DATA_BASE, 4).unwrap();
        // Walk (20) + L1 miss (2) + L2 miss (8) + DRAM (50).
        assert_eq!(t1.latency, 80);
        let t2 = ms.read(DATA_BASE, 4).unwrap();
        assert_eq!(t2.latency, 2, "hot access is an L1 hit with TLB hit");
    }

    #[test]
    fn unmapped_va_page_faults() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        assert_eq!(
            ms.read(0x2000_0000, 4),
            Err(MemFault::PageFault { va: 0x2000_0000 })
        );
        assert_eq!(
            ms.read(0x7000_0000, 4),
            Err(MemFault::PageFault { va: 0x7000_0000 }),
            "va outside 1 GB space"
        );
    }

    #[test]
    fn store_to_text_is_protection_fault() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        match ms.write(TEXT_BASE, 4, 0) {
            Err(MemFault::Protection {
                kind: AccessKind::Write,
                ..
            }) => {}
            other => panic!("expected protection fault, got {other:?}"),
        }
    }

    #[test]
    fn fetch_from_data_is_protection_fault() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        match ms.fetch(DATA_BASE) {
            Err(MemFault::Protection {
                kind: AccessKind::Fetch,
                ..
            }) => {}
            other => panic!("expected protection fault, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_dtlb_ppn_can_leave_system_map() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        ms.read(DATA_BASE, 4).unwrap(); // fill DTLB entry 0
                                        // Flip the top PPN bit (col 3 + 13): likely leaves the 12288-frame map.
        ms.dtlb.inject_flip(BitCoord::new(0, 16));
        match ms.read(DATA_BASE, 4) {
            Err(MemFault::OutsideSystemMap { .. }) => {}
            Ok(t) => {
                // If the flipped frame stays in DRAM the access silently reads
                // wrong (zero) data instead.
                assert_eq!(t.value, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupted_l1i_bit_changes_fetched_word() {
        let (mut ms, _) = system_for(".text\nmain: nop\nsyscall\n");
        let before = ms.fetch(TEXT_BASE).unwrap().value;
        // The fetch filled one L1I line; find the flipped word by flipping
        // every row's bit 0 (only the resident line affects this fetch).
        let rows = ms.l1i.injectable_geometry().rows();
        for r in 0..rows {
            ms.l1i.inject_flip(BitCoord::new(r, 0));
        }
        let after = ms.fetch(TEXT_BASE).unwrap().value;
        assert_eq!(after, before ^ 1);
    }

    #[test]
    fn snapshot_restore_rewinds_whole_hierarchy() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        ms.write(DATA_BASE, 4, 0x1111).unwrap();
        let saved = ms.snapshot();
        assert!(ms.converged_with(&saved));
        ms.write(DATA_BASE, 4, 0x2222).unwrap();
        ms.write(DATA_BASE + 0x400, 4, 0x3333).unwrap(); // new TLB entry
        ms.flush_caches().unwrap();
        assert!(!ms.converged_with(&saved));
        ms.restore(&saved);
        assert!(ms.converged_with(&saved));
        assert_eq!(ms.snapshot(), saved);
        assert_eq!(ms.read(DATA_BASE, 4).unwrap().value, 0x1111);
    }

    #[test]
    fn flush_caches_persists_stores_to_dram() {
        let (mut ms, _) = system_for(".text\nmain: nop\n");
        ms.write(DATA_BASE + 8, 4, 0xABCD).unwrap();
        ms.flush_caches().unwrap();
        let pa = {
            let pte = ms.page_table().lookup(DATA_BASE / PAGE_SIZE).unwrap();
            pte.ppn * PAGE_SIZE + 8
        };
        let lo = ms.phys().read_u8(pa).unwrap();
        let hi = ms.phys().read_u8(pa + 1).unwrap();
        assert_eq!(u16::from_le_bytes([lo, hi]), 0xABCD);
    }
}
