//! Virtual memory: page tables and address-space construction.
//!
//! The page table is the OS-owned translation structure consulted on TLB
//! misses (a fixed-latency walk). It is *not* a fault-injection target — the
//! paper injects into the TLBs, which cache these translations.
//!
//! Address spaces scatter their physical frames across the DRAM with a
//! deterministic stride so that a corrupted TLB PPN rarely lands on another
//! mapped page of the same program — most corrupted translations hit
//! unrelated (zero) DRAM or leave the system map, reproducing the paper's
//! crash/assert-heavy TLB failure modes.

use crate::{PAGE_SIZE, VA_BITS};
use std::collections::BTreeMap;
use std::fmt;

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PagePerms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub exec: bool,
}

impl PagePerms {
    /// Read-only data.
    pub const R: PagePerms = PagePerms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: PagePerms = PagePerms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute (text).
    pub const RX: PagePerms = PagePerms {
        read: true,
        write: false,
        exec: true,
    };

    /// Packs into 3 bits (`exec<<2 | write<<1 | read`), the TLB entry format.
    pub fn to_bits(self) -> u32 {
        (self.read as u32) | (self.write as u32) << 1 | (self.exec as u32) << 2
    }

    /// Unpacks from 3 bits.
    pub fn from_bits(bits: u32) -> Self {
        Self {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            exec: bits & 4 != 0,
        }
    }
}

impl fmt::Display for PagePerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// A page-table entry: physical page number plus permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTableEntry {
    /// Physical page number.
    pub ppn: u32,
    /// Access permissions.
    pub perms: PagePerms,
}

/// A sparse single-level page table mapping VPN → PTE.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: BTreeMap<u32, PageTableEntry>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the entry for a virtual page number.
    pub fn lookup(&self, vpn: u32) -> Option<PageTableEntry> {
        self.entries.get(&vpn).copied()
    }

    /// Installs a mapping.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` exceeds the virtual address width.
    pub fn map(&mut self, vpn: u32, entry: PageTableEntry) {
        assert!(
            vpn < (1 << crate::VPN_BITS),
            "vpn out of virtual address space"
        );
        self.entries.insert(vpn, entry);
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(vpn, entry)` pairs in VPN order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, PageTableEntry)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }
}

/// Builder that lays out a program's address space, allocating scattered
/// physical frames.
///
/// # Example
///
/// ```
/// use mbu_mem::{AddressSpace, PagePerms};
/// let mut aspace = AddressSpace::new(12_288);
/// aspace.map_segment(0x0040_0000, 8192, PagePerms::RX);
/// let pt = aspace.page_table();
/// assert!(pt.lookup(0x0040_0000 / mbu_mem::PAGE_SIZE).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    table: PageTable,
    dram_frames: u32,
    used: BTreeMap<u32, ()>,
    cursor: u32,
}

/// Deterministic frame-scatter stride (co-prime with typical DRAM frame
/// counts so the probe sequence visits every frame).
const SCATTER_STRIDE: u32 = 2657;

impl AddressSpace {
    /// Creates an address-space builder for a DRAM of `dram_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `dram_frames` is zero.
    pub fn new(dram_frames: u32) -> Self {
        assert!(dram_frames > 0);
        Self {
            table: PageTable::new(),
            dram_frames,
            used: BTreeMap::new(),
            cursor: 17,
        }
    }

    fn alloc_frame(&mut self) -> u32 {
        // Deterministic scatter: stride around the DRAM, skipping frames
        // already handed out.
        for _ in 0..self.dram_frames {
            let ppn = self.cursor % self.dram_frames;
            self.cursor = self.cursor.wrapping_add(SCATTER_STRIDE);
            if let std::collections::btree_map::Entry::Vacant(e) = self.used.entry(ppn) {
                e.insert(());
                return ppn;
            }
        }
        panic!("physical memory exhausted ({} frames)", self.dram_frames);
    }

    /// Maps `[base, base+len)` (page-granular, idempotent per page) with the
    /// given permissions, allocating scattered physical frames.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the virtual address space.
    pub fn map_segment(&mut self, base: u32, len: u32, perms: PagePerms) {
        if len == 0 {
            return;
        }
        let first = base / PAGE_SIZE;
        let last64 = (base as u64 + len as u64 - 1) / PAGE_SIZE as u64;
        assert!(
            (last64 + 1) << crate::PAGE_BITS as u64 <= (1u64 << VA_BITS),
            "segment leaves the virtual address space"
        );
        let last = last64 as u32;
        for vpn in first..=last {
            if self.table.lookup(vpn).is_none() {
                let ppn = self.alloc_frame();
                self.table.map(vpn, PageTableEntry { ppn, perms });
            }
        }
    }

    /// The completed page table.
    pub fn page_table(&self) -> PageTable {
        self.table.clone()
    }

    /// Translates a virtual address through the table (loader use).
    pub fn translate(&self, va: u32) -> Option<u32> {
        let e = self.table.lookup(va / PAGE_SIZE)?;
        Some(e.ppn * PAGE_SIZE + va % PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_pack_roundtrip() {
        for bits in 0..8 {
            assert_eq!(PagePerms::from_bits(bits).to_bits(), bits);
        }
        assert_eq!(PagePerms::RX.to_bits(), 0b101);
        assert_eq!(format!("{}", PagePerms::RW), "rw-");
    }

    #[test]
    fn map_segment_allocates_distinct_scattered_frames() {
        let mut a = AddressSpace::new(1000);
        a.map_segment(0, 10 * PAGE_SIZE, PagePerms::RW);
        let pt = a.page_table();
        let mut ppns: Vec<u32> = pt.iter().map(|(_, e)| e.ppn).collect();
        assert_eq!(ppns.len(), 10);
        ppns.sort_unstable();
        ppns.dedup();
        assert_eq!(ppns.len(), 10, "frames must be distinct");
        // Scattered: not a contiguous run.
        let span = ppns.last().unwrap() - ppns.first().unwrap();
        assert!(span > 10, "frames should scatter across DRAM (span {span})");
    }

    #[test]
    fn map_segment_is_idempotent_per_page() {
        let mut a = AddressSpace::new(100);
        a.map_segment(0, PAGE_SIZE, PagePerms::RW);
        let first = a.page_table().lookup(0).unwrap();
        a.map_segment(0, PAGE_SIZE, PagePerms::RW);
        assert_eq!(a.page_table().lookup(0).unwrap(), first);
        assert_eq!(a.page_table().len(), 1);
    }

    #[test]
    fn translate_applies_offset() {
        let mut a = AddressSpace::new(100);
        a.map_segment(0x1000, PAGE_SIZE, PagePerms::RW);
        let pa = a.translate(0x1034).unwrap();
        assert_eq!(pa % PAGE_SIZE, 0x34);
        assert_eq!(a.translate(0x5000), None);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = AddressSpace::new(2);
        a.map_segment(0, 3 * PAGE_SIZE, PagePerms::RW);
    }

    #[test]
    #[should_panic(expected = "virtual address space")]
    fn oversized_va_panics() {
        let mut a = AddressSpace::new(10);
        a.map_segment(0xFFFF_F000, 2 * PAGE_SIZE, PagePerms::RW);
    }
}
