//! Set-associative, write-back, write-allocate caches with bit-accurate,
//! injectable data and tag arrays.
//!
//! Lines are 32 bytes. Replacement is true LRU per set. A cache talks to the
//! next hierarchy level through the [`LineStore`] trait (the unified L2, or
//! physical DRAM), which lets the L1 → L2 → DRAM chain be composed without
//! reference cycles.
//!
//! Fault behaviour:
//!
//! * **data-array** flips corrupt program data or instruction words — the
//!   default injection target (the paper's Table VIII counts are data bits);
//! * **tag-array** flips (extension target) make lines unreachable, create
//!   false hits on foreign addresses, or redirect dirty write-backs to wrong
//!   physical addresses — potentially outside the system map, which
//!   surfaces as the assert failure class.

use crate::phys::{PhysicalMemory, UnmappedPhysical};
use mbu_sram::{BitCoord, CowVec, Geometry, Injectable, Restorable, Snapshot};

/// Cache line size in bytes (Cortex-A9 L1/L2).
pub const LINE_BYTES: u32 = 32;

/// Geometry/latency configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes; must be a power of two multiple of
    /// `ways * LINE_BYTES`.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Physical column interleaving degree of the data array (1 = none).
    ///
    /// With interleaving `I`, each physical word line stores the bits of
    /// `I` logical lines interleaved column-by-column, the classic
    /// spatial-MBU protection (George et al., DSN 2010; the paper's
    /// refs \[39\]\[46\]): a multi-bit cluster then lands in *different*
    /// logical words, which turns one spatial multi-bit fault into several
    /// single-bit faults that per-word ECC could correct. Interleaving only
    /// changes the physical↔logical bit mapping seen by the injector; cache
    /// behaviour and timing are unchanged.
    pub interleave: u32,
}

impl CacheConfig {
    /// 32 KB, 4-way, 2-cycle L1 (Table I, full size).
    pub fn l1() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 4,
            hit_latency: 2,
            interleave: 1,
        }
    }

    /// 512 KB, 8-way, 8-cycle L2 (Table I, full size).
    pub fn l2() -> Self {
        Self {
            size_bytes: 512 * 1024,
            ways: 8,
            hit_latency: 8,
            interleave: 1,
        }
    }

    /// 2 KB, 4-way L1 data cache — the scaled experimental configuration
    /// (cache capacity scaled with the workload footprints so cache
    /// *occupancy and refill traffic* match the paper's full-system runs;
    /// see DESIGN.md §1).
    pub fn l1d_scaled() -> Self {
        Self {
            size_bytes: 2 * 1024,
            ways: 4,
            hit_latency: 2,
            interleave: 1,
        }
    }

    /// 2 KB, 4-way L1 instruction cache — the scaled experimental
    /// configuration.
    pub fn l1i_scaled() -> Self {
        Self {
            size_bytes: 2 * 1024,
            ways: 4,
            hit_latency: 2,
            interleave: 1,
        }
    }

    /// 8 KB, 8-way L2 — the scaled experimental configuration.
    pub fn l2_scaled() -> Self {
        Self {
            size_bytes: 8 * 1024,
            ways: 8,
            hit_latency: 8,
            interleave: 1,
        }
    }

    /// Returns the same configuration with the given data-array column
    /// interleaving degree.
    ///
    /// # Panics
    ///
    /// Panics (at `Cache::new`) unless the line count is divisible by the
    /// interleaving degree.
    pub fn with_interleave(mut self, interleave: u32) -> Self {
        assert!(interleave >= 1, "interleave degree must be >= 1");
        self.interleave = interleave;
        self
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.size_bytes / LINE_BYTES
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.lines() / self.ways
    }

    fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    fn offset_bits(&self) -> u32 {
        LINE_BYTES.trailing_zeros()
    }

    fn tag_bits(&self) -> u32 {
        32 - self.index_bits() - self.offset_bits()
    }
}

/// Which internal SRAM array of a cache to target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheArray {
    /// The line data array (default target; Table VIII bit counts).
    Data,
    /// The tag array (tag, valid and dirty bits) — ablation target.
    Tag,
}

/// Hit/miss/write-back counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

/// The next level of the hierarchy, at line granularity.
pub trait LineStore {
    /// Reads an aligned line; returns the bytes and the access latency.
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if the address leaves the system map.
    fn load_line(&mut self, pa_line: u32) -> Result<([u8; 32], u32), UnmappedPhysical>;

    /// Writes an aligned line; returns the access latency.
    ///
    /// # Errors
    ///
    /// [`UnmappedPhysical`] if the address leaves the system map.
    fn store_line(&mut self, pa_line: u32, line: &[u8; 32]) -> Result<u32, UnmappedPhysical>;
}

/// DRAM as a line store with a fixed access latency.
#[derive(Debug)]
pub struct DramBacking<'a> {
    /// The physical memory.
    pub mem: &'a mut PhysicalMemory,
    /// Access latency in cycles.
    pub latency: u32,
}

impl LineStore for DramBacking<'_> {
    fn load_line(&mut self, pa_line: u32) -> Result<([u8; 32], u32), UnmappedPhysical> {
        Ok((self.mem.read_line(pa_line)?, self.latency))
    }

    fn store_line(&mut self, pa_line: u32, line: &[u8; 32]) -> Result<u32, UnmappedPhysical> {
        self.mem.write_line(pa_line, line)?;
        Ok(self.latency)
    }
}

const VALID_BIT: u64 = 1 << 62;
const DIRTY_BIT: u64 = 1 << 63;

/// A set-associative write-back cache.
///
/// # Example
///
/// ```
/// use mbu_mem::{Cache, CacheConfig, PhysicalMemory};
/// use mbu_mem::cache::DramBacking;
///
/// let mut mem = PhysicalMemory::new(256);
/// let mut l1 = Cache::new(CacheConfig::l1());
/// let mut next = DramBacking { mem: &mut mem, latency: 50 };
/// let (line, miss_lat) = l1.access(0x40, true, &mut next)?;
/// l1.write_bytes(line, 0, &42u32.to_le_bytes());
/// let (line, hit_lat) = l1.access(0x40, false, &mut next)?;
/// assert_eq!(l1.read_bytes(line, 0, 4), vec![42, 0, 0, 0]);
/// assert!(hit_lat < miss_lat);
/// # Ok::<(), mbu_mem::phys::UnmappedPhysical>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    config: CacheConfig,
    /// Per line: `tag | VALID_BIT | DIRTY_BIT`. Copy-on-write: a snapshot
    /// shares the array until either side writes it.
    tags: CowVec<u64>,
    /// `lines × LINE_BYTES` bytes (copy-on-write).
    data: CowVec<u8>,
    /// LRU rank per line (0 = most recently used within its set;
    /// copy-on-write).
    lru: CowVec<u8>,
    stats: CacheStats,
}

/// Index of a resident line (opaque handle returned by [`Cache::access`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineIdx(u32);

impl LineIdx {
    /// The line's row index in the cache's logical geometry (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not a power-of-two geometry.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.size_bytes.is_multiple_of(config.ways * LINE_BYTES),
            "size must be a multiple of ways*line"
        );
        assert!(
            config.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(
            config.interleave >= 1 && config.lines().is_multiple_of(config.interleave),
            "line count must be divisible by the interleave degree"
        );
        let lines = config.lines() as usize;
        // LRU ranks form a permutation 0..ways within each set.
        let lru = (0..lines).map(|l| (l as u32 % config.ways) as u8).collect();
        Self {
            config,
            tags: CowVec::new(vec![0; lines]),
            data: CowVec::new(vec![0; lines * LINE_BYTES as usize]),
            lru: CowVec::new(lru),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The set index a physical address maps to.
    pub fn set_of(&self, pa: u32) -> u32 {
        self.set_and_tag(pa).0
    }

    fn set_and_tag(&self, pa: u32) -> (u32, u64) {
        let set = (pa >> self.config.offset_bits()) & (self.config.sets() - 1);
        let tag = (pa >> (self.config.offset_bits() + self.config.index_bits())) as u64;
        (set, tag)
    }

    fn promote(&mut self, set: u32, way: u32) {
        let base = (set * self.config.ways) as usize;
        let old = self.lru[base + way as usize];
        if old == 0 {
            // Already most recently used: the ranks are unchanged, so don't
            // unshare a snapshot-shared array for a no-op.
            return;
        }
        let lru = self.lru.make_mut();
        for w in 0..self.config.ways as usize {
            if lru[base + w] < old {
                lru[base + w] += 1;
            }
        }
        lru[base + way as usize] = 0;
    }

    /// Ensures the line containing `pa` is resident and returns its handle
    /// plus the access latency. `is_write` marks the line dirty.
    ///
    /// # Errors
    ///
    /// Propagates [`UnmappedPhysical`] from the next level — either for the
    /// demanded line or for a dirty victim whose (possibly corrupted) tag
    /// reconstructs to an address outside the system map.
    pub fn access(
        &mut self,
        pa: u32,
        is_write: bool,
        next: &mut dyn LineStore,
    ) -> Result<(LineIdx, u32), UnmappedPhysical> {
        let (set, tag) = self.set_and_tag(pa);
        let base = set * self.config.ways;
        // Hit check.
        for way in 0..self.config.ways {
            let line = (base + way) as usize;
            let t = self.tags[line];
            if t & VALID_BIT != 0 && (t & !(VALID_BIT | DIRTY_BIT)) == tag {
                if is_write && t & DIRTY_BIT == 0 {
                    self.tags.make_mut()[line] |= DIRTY_BIT;
                }
                self.promote(set, way);
                self.stats.hits += 1;
                return Ok((LineIdx(line as u32), self.config.hit_latency));
            }
        }
        self.stats.misses += 1;
        // Victim: first invalid way, else LRU-max.
        let victim = (0..self.config.ways)
            .find(|way| self.tags[(base + way) as usize] & VALID_BIT == 0)
            .unwrap_or_else(|| {
                (0..self.config.ways)
                    .max_by_key(|way| self.lru[(base + way) as usize])
                    .expect("cache has at least one way")
            });
        let line = (base + victim) as usize;
        let mut latency = self.config.hit_latency;
        // Write back a dirty victim.
        let t = self.tags[line];
        if t & VALID_BIT != 0 && t & DIRTY_BIT != 0 {
            let victim_tag = t & !(VALID_BIT | DIRTY_BIT);
            let victim_pa = ((victim_tag as u32)
                << (self.config.offset_bits() + self.config.index_bits()))
                | (set << self.config.offset_bits());
            let bytes: [u8; 32] = self.line_bytes(line);
            latency += next.store_line(victim_pa, &bytes)?;
            self.stats.writebacks += 1;
        }
        // Fetch the demanded line.
        let pa_line = pa & !(LINE_BYTES - 1);
        let (bytes, fetch_lat) = next.load_line(pa_line)?;
        latency += fetch_lat;
        let off = line * LINE_BYTES as usize;
        self.data.make_mut()[off..off + LINE_BYTES as usize].copy_from_slice(&bytes);
        self.tags.make_mut()[line] = tag | VALID_BIT | if is_write { DIRTY_BIT } else { 0 };
        self.promote(set, victim);
        Ok((LineIdx(line as u32), latency))
    }

    fn line_bytes(&self, line: usize) -> [u8; 32] {
        let off = line * LINE_BYTES as usize;
        let mut out = [0u8; 32];
        out.copy_from_slice(&self.data[off..off + LINE_BYTES as usize]);
        out
    }

    /// Reads `width` bytes at `offset` within a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the line.
    pub fn read_bytes(&self, line: LineIdx, offset: u32, width: u32) -> Vec<u8> {
        assert!(offset + width <= LINE_BYTES, "read crosses line boundary");
        let base = line.0 as usize * LINE_BYTES as usize + offset as usize;
        self.data[base..base + width as usize].to_vec()
    }

    /// Writes bytes at `offset` within a resident line (caller must have
    /// accessed with `is_write = true`).
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the line.
    pub fn write_bytes(&mut self, line: LineIdx, offset: u32, bytes: &[u8]) {
        assert!(
            offset as usize + bytes.len() <= LINE_BYTES as usize,
            "write crosses line boundary"
        );
        let base = line.0 as usize * LINE_BYTES as usize + offset as usize;
        self.data.make_mut()[base..base + bytes.len()].copy_from_slice(bytes);
    }

    /// Writes back every dirty line and marks it clean (drain at simulation
    /// boundaries or for verification).
    ///
    /// # Errors
    ///
    /// Propagates [`UnmappedPhysical`] from corrupted victim tags.
    pub fn flush_dirty(&mut self, next: &mut dyn LineStore) -> Result<(), UnmappedPhysical> {
        for line in 0..self.tags.len() {
            let t = self.tags[line];
            if t & VALID_BIT != 0 && t & DIRTY_BIT != 0 {
                let set = line as u32 / self.config.ways;
                let tag = t & !(VALID_BIT | DIRTY_BIT);
                let pa = ((tag as u32) << (self.config.offset_bits() + self.config.index_bits()))
                    | (set << self.config.offset_bits());
                let bytes = self.line_bytes(line);
                next.store_line(pa, &bytes)?;
                self.tags.make_mut()[line] &= !DIRTY_BIT;
            }
        }
        Ok(())
    }

    /// Geometry of the tag array (tag bits + valid + dirty per line).
    pub fn tag_geometry(&self) -> Geometry {
        Geometry::new(
            self.config.lines() as usize,
            self.config.tag_bits() as usize + 2,
        )
    }

    /// Flips one bit of the tag array. Columns `0..tag_bits` are tag bits,
    /// then valid, then dirty.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside [`Cache::tag_geometry`].
    pub fn inject_tag_flip(&mut self, coord: BitCoord) {
        let g = self.tag_geometry();
        assert!(
            g.contains(coord.row, coord.col),
            "tag injection out of bounds"
        );
        let tag_bits = self.config.tag_bits() as usize;
        let mask = if coord.col < tag_bits {
            1u64 << coord.col
        } else if coord.col == tag_bits {
            VALID_BIT
        } else {
            DIRTY_BIT
        };
        self.tags.make_mut()[coord.row] ^= mask;
    }

    /// Approximate heap bytes retained by one snapshot of this cache.
    pub fn snapshot_bytes(&self) -> usize {
        self.tags.len() * 8 + self.data.len() + self.lru.len()
    }

    /// Retained heap bytes of this cache image when `prev` is an
    /// already-retained checkpoint: arrays still sharing their allocation
    /// with `prev` (copy-on-write, untouched between the two checkpoints)
    /// are charged zero. With `prev = None` every array is charged.
    pub fn retained_bytes(&self, prev: Option<&Self>) -> usize {
        self.tags.retained_bytes(prev.map(|p| &p.tags))
            + self.data.retained_bytes(prev.map(|p| &p.data))
            + self.lru.retained_bytes(prev.map(|p| &p.lru))
    }

    /// Liveness-aware state comparison against a golden checkpoint: `true`
    /// when every *reachable* bit of this cache equals `golden`.
    ///
    /// Valid bits, tag words of valid lines, data of valid lines, LRU ranks
    /// and access counters must all match exactly. The data and tag-word
    /// remainder of an **invalid** line are skipped: a fill overwrites the
    /// entire 32-byte line and the whole tag word before setting the valid
    /// bit, so those bits can never influence future behaviour. This is what
    /// lets a run whose injected flip landed in a dead line be declared
    /// reconverged once all *live* state matches the fault-free machine.
    pub fn converged_with(&self, golden: &Self) -> bool {
        if self.config != golden.config || self.stats != golden.stats || self.lru != golden.lru {
            return false;
        }
        // Arrays still sharing their allocation with the golden checkpoint
        // (copy-on-write, never written since the restore) are identical by
        // construction: skip the per-line scan.
        if self.tags.is_shared_with(&golden.tags) && self.data.is_shared_with(&golden.data) {
            return true;
        }
        for (line, (&t, &g)) in self.tags.iter().zip(golden.tags.iter()).enumerate() {
            if (t & VALID_BIT) != (g & VALID_BIT) {
                return false;
            }
            if t & VALID_BIT != 0 {
                if t != g {
                    return false;
                }
                let off = line * LINE_BYTES as usize;
                let end = off + LINE_BYTES as usize;
                if self.data[off..end] != golden.data[off..end] {
                    return false;
                }
            }
        }
        true
    }

    /// Geometry of one internal array.
    pub fn array_geometry(&self, array: CacheArray) -> Geometry {
        match array {
            CacheArray::Data => self.injectable_geometry(),
            CacheArray::Tag => self.tag_geometry(),
        }
    }

    /// Flips one bit of the chosen internal array.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the array geometry.
    pub fn inject_array_flip(&mut self, array: CacheArray, coord: BitCoord) {
        match array {
            CacheArray::Data => self.inject_flip(coord),
            CacheArray::Tag => self.inject_tag_flip(coord),
        }
    }
}

impl Injectable for Cache {
    /// *Physical* geometry of the data array: with interleaving `I`, each
    /// physical word line holds `I` logical lines column-interleaved, so
    /// the surface is `lines/I` rows × `256·I` columns (same total bits).
    fn injectable_geometry(&self) -> Geometry {
        let i = self.config.interleave as usize;
        Geometry::new(
            self.config.lines() as usize / i,
            (LINE_BYTES * 8) as usize * i,
        )
    }

    /// Maps the physical strike coordinate through the interleaving to the
    /// logical (line, bit) cell and flips it.
    fn inject_flip(&mut self, coord: BitCoord) {
        let g = self.injectable_geometry();
        assert!(
            g.contains(coord.row, coord.col),
            "data injection out of bounds"
        );
        let i = self.config.interleave as usize;
        // Physical column c belongs to logical line (row*I + c mod I),
        // logical bit c / I.
        let line = coord.row * i + coord.col % i;
        let bit = coord.col / i;
        let byte = line * LINE_BYTES as usize + bit / 8;
        self.data.make_mut()[byte] ^= 1 << (bit % 8);
    }
}

impl Snapshot for Cache {
    type State = Cache;

    fn snapshot(&self) -> Cache {
        self.clone()
    }
}

impl Restorable for Cache {
    fn restore(&mut self, state: &Cache) {
        self.clone_from(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 8 lines, 2-way, 4 sets.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            hit_latency: 2,
            interleave: 1,
        })
    }

    fn mem() -> PhysicalMemory {
        PhysicalMemory::new(64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        let mut m = mem();
        m.write_line(0x40, &[9; 32]).unwrap();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        let (line, lat) = c.access(0x44, false, &mut next).unwrap();
        assert_eq!(lat, 52);
        assert_eq!(c.read_bytes(line, 4, 2), vec![9, 9]);
        let (_, lat2) = c.access(0x44, false, &mut next).unwrap();
        assert_eq!(lat2, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn writeback_on_eviction() {
        let mut c = small_cache();
        let mut m = mem();
        // 4 sets -> addresses 0x000, 0x080, 0x100 map to set 0 (stride = sets*32 = 128).
        {
            let mut next = DramBacking {
                mem: &mut m,
                latency: 50,
            };
            let (l, _) = c.access(0x000, true, &mut next).unwrap();
            c.write_bytes(l, 0, &[0xAA; 4]);
            c.access(0x080, false, &mut next).unwrap();
            // Third distinct line in set 0 evicts the dirty 0x000 line.
            c.access(0x100, false, &mut next).unwrap();
        }
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(m.read_line(0x000).unwrap()[0], 0xAA);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = small_cache();
        let mut m = mem();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        c.access(0x000, false, &mut next).unwrap(); // set 0 way A
        c.access(0x080, false, &mut next).unwrap(); // set 0 way B
        c.access(0x000, false, &mut next).unwrap(); // touch A -> MRU
        c.access(0x100, false, &mut next).unwrap(); // evicts B (LRU)
        let hits_before = c.stats().hits;
        c.access(0x000, false, &mut next).unwrap(); // must still hit
        assert_eq!(c.stats().hits, hits_before + 1);
    }

    #[test]
    fn data_flip_corrupts_read() {
        let mut c = small_cache();
        let mut m = mem();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        let (line, _) = c.access(0x00, false, &mut next).unwrap();
        assert_eq!(c.read_bytes(line, 0, 1), vec![0]);
        // The handle row equals the internal line index.
        c.inject_flip(BitCoord::new(0, 3));
        let (line, _) = c.access(0x00, false, &mut next).unwrap();
        assert_eq!(c.read_bytes(line, 0, 1), vec![8]);
    }

    #[test]
    fn tag_valid_flip_causes_miss_refetch() {
        let mut c = small_cache();
        let mut m = mem();
        m.write_line(0, &[7; 32]).unwrap();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        c.access(0x00, false, &mut next).unwrap();
        let tag_bits = c.config().tag_bits() as usize;
        // Find which line holds set 0 way 0 == line 0.
        c.inject_tag_flip(BitCoord::new(0, tag_bits)); // valid bit
        let (_, lat) = c.access(0x00, false, &mut next).unwrap();
        assert!(lat > 2, "must refetch after valid-bit flip");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn corrupted_dirty_tag_writeback_can_leave_system_map() {
        let mut c = small_cache();
        let mut m = PhysicalMemory::new(2); // tiny system map
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        let (l, _) = c.access(0x00, true, &mut next).unwrap();
        c.write_bytes(l, 0, &[1]);
        // Flip a high tag bit -> reconstructed write-back address far away.
        let tag_bits = c.config().tag_bits() as usize;
        c.inject_tag_flip(BitCoord::new(0, tag_bits - 1));
        // Force eviction of set 0 (two more lines in set 0).
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        c.access(0x080, false, &mut next).unwrap();
        let err = c.access(0x100, false, &mut next).unwrap_err();
        assert!(
            err.pa > 2 * 4096,
            "write-back must target the corrupted address"
        );
    }

    #[test]
    fn flush_dirty_writes_everything_back() {
        let mut c = small_cache();
        let mut m = mem();
        {
            let mut next = DramBacking {
                mem: &mut m,
                latency: 50,
            };
            let (l, _) = c.access(0x20, true, &mut next).unwrap();
            c.write_bytes(l, 0, &[5; 32]);
            c.flush_dirty(&mut next).unwrap();
        }
        assert_eq!(m.read_line(0x20).unwrap(), [5; 32]);
    }

    #[test]
    fn geometries_match_paper_sizes() {
        let l1 = Cache::new(CacheConfig::l1());
        assert_eq!(l1.injectable_geometry().total_bits(), 262_144);
        let l2 = Cache::new(CacheConfig::l2());
        assert_eq!(l2.injectable_geometry().total_bits(), 4_194_304);
    }

    #[test]
    fn snapshot_restore_roundtrip_mid_traffic() {
        let mut c = small_cache();
        let mut m = mem();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        let (l, _) = c.access(0x000, true, &mut next).unwrap();
        c.write_bytes(l, 0, &[0xAA; 4]);
        c.access(0x080, false, &mut next).unwrap();
        let saved = c.snapshot();
        c.access(0x100, false, &mut next).unwrap(); // evicts the dirty line
        assert_ne!(c, saved);
        c.restore(&saved);
        assert_eq!(c, saved);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn convergence_ignores_dead_line_flips_only() {
        let mut c = small_cache();
        let mut m = mem();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        c.access(0x000, false, &mut next).unwrap(); // line 0 valid
        let golden = c.snapshot();
        // A flip in a never-filled (invalid) line is unreachable state.
        c.inject_flip(BitCoord::new(7, 0));
        assert!(c.converged_with(&golden));
        // A flip in the valid line is live and must block convergence.
        c.inject_flip(BitCoord::new(0, 0));
        assert!(!c.converged_with(&golden));
        c.inject_flip(BitCoord::new(0, 0));
        assert!(c.converged_with(&golden));
        // A valid-bit flip changes reachability and must block convergence.
        let tag_bits = c.config().tag_bits() as usize;
        c.inject_tag_flip(BitCoord::new(0, tag_bits));
        assert!(!c.converged_with(&golden));
    }

    #[test]
    fn false_hit_after_tag_flip_serves_wrong_data() {
        let mut c = small_cache();
        let mut m = mem();
        m.write_line(0x000, &[1; 32]).unwrap();
        m.write_line(0x080, &[2; 32]).unwrap();
        let mut next = DramBacking {
            mem: &mut m,
            latency: 50,
        };
        c.access(0x000, false, &mut next).unwrap(); // tag 0 in set 0
                                                    // Flip tag bit 0 -> stored tag becomes 1, which matches PA 0x080.
        c.inject_tag_flip(BitCoord::new(0, 0));
        let (line, lat) = c.access(0x080, false, &mut next).unwrap();
        assert_eq!(lat, 2, "false hit");
        assert_eq!(c.read_bytes(line, 0, 1), vec![1], "serves stale wrong data");
    }
}

#[cfg(test)]
mod interleave_tests {
    use super::*;
    use mbu_sram::{BitCoord, Injectable};

    fn interleaved_cache(i: u32) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            hit_latency: 2,
            interleave: i,
        })
    }

    #[test]
    fn geometry_preserves_total_bits() {
        for i in [1, 2, 4, 8] {
            let c = interleaved_cache(i);
            assert_eq!(c.injectable_geometry().total_bits(), 256 * 8);
        }
    }

    #[test]
    fn interleave_1_is_identity_mapping() {
        let mut a = interleaved_cache(1);
        a.inject_flip(BitCoord::new(3, 17));
        let line = LineIdx(3);
        assert_eq!(a.read_bytes(line, 2, 1), vec![1 << 1]); // bit 17 = byte 2 bit 1
    }

    #[test]
    fn row_burst_spreads_across_logical_lines() {
        // With interleave 4, four horizontally adjacent physical cells land
        // in four *different* logical lines, at the same logical bit.
        let mut c = interleaved_cache(4);
        for col in 0..4 {
            c.inject_flip(BitCoord::new(0, col));
        }
        for line in 0..4u32 {
            assert_eq!(
                c.read_bytes(LineIdx(line), 0, 1),
                vec![1],
                "logical line {line} must hold exactly bit 0"
            );
        }
    }

    #[test]
    fn mapping_is_a_bijection() {
        // Flipping every physical cell once must flip every logical bit once.
        let mut c = interleaved_cache(4);
        let g = c.injectable_geometry();
        for r in 0..g.rows() {
            for col in 0..g.cols() {
                c.inject_flip(BitCoord::new(r, col));
            }
        }
        for line in 0..8u32 {
            assert_eq!(c.read_bytes(LineIdx(line), 0, 32), vec![0xFF; 32]);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_interleave_rejected() {
        let _ = interleaved_cache(3); // 8 lines not divisible by 3
    }
}
