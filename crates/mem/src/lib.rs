//! Memory-hierarchy substrate: physical memory, virtual memory (page tables),
//! TLBs and a two-level write-back cache hierarchy.
//!
//! This models the memory side of the paper's ARM Cortex-A9 configuration
//! (Table I):
//!
//! * 32 KB 4-way L1 instruction cache, 32 KB 4-way L1 data cache
//! * 512 KB 8-way unified L2 cache
//! * 32-entry instruction and data TLBs
//! * 32-byte lines, write-back + write-allocate, LRU replacement
//!
//! Every storage structure that the paper injects faults into is modeled
//! *bit-accurately* and implements [`mbu_sram::Injectable`]:
//!
//! * cache **data arrays** (the paper's Table VIII bit counts are the data
//!   arrays: 262,144 bits per L1, 4,194,304 bits for L2),
//! * cache **tag arrays** (tag + valid + dirty bits) — available as an
//!   extension/ablation target,
//! * **TLB entry arrays** (valid, VPN, PPN and permission bits packed into a
//!   36-bit entry, 32 entries).
//!
//! Fault propagation paths follow the paper's observations:
//!
//! * a corrupted cache *data* bit yields wrong data/instructions (SDC,
//!   crashes on decode),
//! * a corrupted cache *tag* can cause false hits/misses or write-backs to
//!   the wrong physical address,
//! * a corrupted TLB VPN/PPN redirects translations; if the resulting
//!   physical address falls outside the modeled DRAM ("not part of the
//!   system map"), the simulator raises an **assert-class** failure exactly
//!   like gem5 does in the paper (§IV.E).

#![forbid(unsafe_code)]

pub mod cache;
pub mod paging;
pub mod phys;
pub mod probe;
pub mod system;
pub mod tlb;

pub use cache::{Cache, CacheArray, CacheConfig, CacheStats};
pub use paging::{AddressSpace, PagePerms, PageTable};
pub use phys::PhysicalMemory;
pub use probe::MemProbes;
pub use system::{AccessKind, MemFault, MemSnapshot, MemorySystem, MemorySystemConfig, Timed};
pub use tlb::{Tlb, TlbConfig};

/// Virtual page size in bytes.
///
/// The paper's full-system stack uses 4 KB pages with workloads that touch
/// hundreds of kilobytes; our workloads are scaled ~100× down in footprint,
/// so the page size is scaled to 256 B to keep the *TLB pressure* (live
/// entries / capacity) representative. See DESIGN.md §1.
pub const PAGE_SIZE: u32 = 256;
/// log2 of the page size.
pub const PAGE_BITS: u32 = 8;
/// Width of the virtual address space in bits (1 GB).
pub const VA_BITS: u32 = 30;
/// Width of a virtual page number in bits.
pub const VPN_BITS: u32 = VA_BITS - PAGE_BITS;
/// Width of a physical page number in bits (64 MB physical address space).
pub const PPN_BITS: u32 = 18;
