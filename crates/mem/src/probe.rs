//! Liveness-probe attachment points for the memory hierarchy (ACE analysis).
//!
//! [`MemProbes`] bundles one optional [`LivenessProbe`] per injectable
//! storage array of the [`crate::MemorySystem`]: the three cache data
//! arrays, the three cache tag arrays and the two TLB entry arrays. The
//! system reconstructs SRAM-level events from each access — conservatively
//! where the model abstracts (tag compares read all ways of a set, a TLB
//! lookup compares every entry's valid + VPN fields, a dirty write-back
//! reads the whole victim line) — and forwards them to whichever probes are
//! attached. With no probe attached an access pays a single branch.
//!
//! Cache data events use the cache's *logical* geometry: one row per line,
//! 256 bit columns. Physical column interleaving only permutes the injector
//! coordinates; observers that answer physical-coordinate queries must map
//! through the same interleaving (see `Cache::injectable_geometry`).

use crate::cache::{Cache, CacheStats, LineIdx, LINE_BYTES};
use mbu_sram::LivenessProbe;
use std::fmt;

/// Optional probes for every memory-side storage array.
#[derive(Default)]
pub struct MemProbes {
    /// L1 instruction cache data array (rows = lines, 256 bit columns).
    pub l1i_data: Option<Box<dyn LivenessProbe>>,
    /// L1 data cache data array.
    pub l1d_data: Option<Box<dyn LivenessProbe>>,
    /// Unified L2 data array.
    pub l2_data: Option<Box<dyn LivenessProbe>>,
    /// L1 instruction cache tag array (rows = lines, tag + valid + dirty).
    pub l1i_tag: Option<Box<dyn LivenessProbe>>,
    /// L1 data cache tag array.
    pub l1d_tag: Option<Box<dyn LivenessProbe>>,
    /// Unified L2 tag array.
    pub l2_tag: Option<Box<dyn LivenessProbe>>,
    /// Instruction TLB entry array (rows = entries, 44 bit columns).
    pub itlb: Option<Box<dyn LivenessProbe>>,
    /// Data TLB entry array.
    pub dtlb: Option<Box<dyn LivenessProbe>>,
}

impl MemProbes {
    /// Whether any probe is attached.
    pub fn any_attached(&self) -> bool {
        self.l1i_data.is_some()
            || self.l1d_data.is_some()
            || self.l2_data.is_some()
            || self.l1i_tag.is_some()
            || self.l1d_tag.is_some()
            || self.l2_tag.is_some()
            || self.itlb.is_some()
            || self.dtlb.is_some()
    }
}

impl fmt::Debug for MemProbes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let on = |o: &Option<Box<dyn LivenessProbe>>| o.is_some();
        f.debug_struct("MemProbes")
            .field("l1i_data", &on(&self.l1i_data))
            .field("l1d_data", &on(&self.l1d_data))
            .field("l2_data", &on(&self.l2_data))
            .field("l1i_tag", &on(&self.l1i_tag))
            .field("l1d_tag", &on(&self.l1d_tag))
            .field("l2_tag", &on(&self.l2_tag))
            .field("itlb", &on(&self.itlb))
            .field("dtlb", &on(&self.dtlb))
            .finish()
    }
}

/// The demanded byte access of one cache access, for event reconstruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Demand {
    /// Bytes `[offset, offset + width)` of the line were read.
    Read {
        /// Byte offset within the line.
        offset: u32,
        /// Bytes read.
        width: u32,
    },
    /// Bytes `[offset, offset + width)` of the line were written.
    Write {
        /// Byte offset within the line.
        offset: u32,
        /// Bytes written.
        width: u32,
    },
}

/// Reconstructs the SRAM events of one completed [`Cache::access`] from the
/// stats delta (`before` vs. the cache's current counters) and the returned
/// line handle, and forwards them to the attached probes:
///
/// * every access compares the tags of all ways in the set (full tag rows);
/// * a miss overwrites the victim row's tag and the whole data line, after
///   reading the whole victim line out if it was written back dirty;
/// * the demanded bytes are then read or written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_cache_access(
    cache: &Cache,
    data_probe: &mut Option<Box<dyn LivenessProbe>>,
    tag_probe: &mut Option<Box<dyn LivenessProbe>>,
    now: u64,
    pa: u32,
    line: LineIdx,
    before: CacheStats,
    demand: Demand,
) {
    let after = cache.stats();
    let missed = after.misses > before.misses;
    let row = line.index();
    let line_bits = (LINE_BYTES * 8) as usize;
    if let Some(tp) = tag_probe {
        let ways = cache.config().ways as usize;
        let base = cache.set_of(pa) as usize * ways;
        let cols = cache.tag_geometry().cols();
        for way in 0..ways {
            tp.on_read(now, base + way, 0, cols);
        }
        if missed {
            tp.on_overwrite(now, row, 0, cols);
        }
    }
    if let Some(dp) = data_probe {
        if missed {
            if after.writebacks > before.writebacks {
                dp.on_read(now, row, 0, line_bits);
            }
            dp.on_overwrite(now, row, 0, line_bits);
        }
        match demand {
            Demand::Read { offset, width } => {
                dp.on_read(now, row, (offset * 8) as usize, (width * 8) as usize);
            }
            Demand::Write { offset, width } => {
                dp.on_write(now, row, (offset * 8) as usize, (width * 8) as usize);
            }
        }
    }
}
