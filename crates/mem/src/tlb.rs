//! Translation look-aside buffers with bit-accurate, injectable entries.
//!
//! Each entry packs `perm(3) | ppn | vpn | valid(1)` LSB-first (perms at
//! bits 0–2, then the PPN and VPN fields, valid as the top bit); with the
//! crate's 18-bit PPN and 22-bit VPN an entry is 44 bits, so a 32-entry TLB
//! exposes a 32 × 44 injectable bit surface.
//!
//! Fault behaviour:
//!
//! * flipped **valid** bit: the entry vanishes (next access misses and
//!   refills — usually masked) or a stale/garbage entry becomes active;
//! * flipped **VPN** bit: the entry stops matching its page and may start
//!   matching a *different* page, silently redirecting that page's accesses;
//! * flipped **PPN** bit: translations of the page go to the wrong physical
//!   frame — wrong data if the frame is inside DRAM, a simulator assert if
//!   the address leaves the system map (paper §IV.E);
//! * flipped **perm** bit: spurious protection faults (process crash) or
//!   missed protection.
//!
//! Replacement is round-robin, which keeps fault-free runs deterministic.

use crate::paging::PagePerms;
use crate::{PPN_BITS, VPN_BITS};
use mbu_sram::{BitCoord, Geometry, Injectable, Restorable, Snapshot};

/// Bit position of the permission field within an entry.
pub const PERM_SHIFT: u32 = 0;
/// Bit position of the PPN field within an entry.
pub const PPN_SHIFT: u32 = 3;
/// Bit position of the VPN field within an entry.
pub const VPN_SHIFT: u32 = PPN_SHIFT + PPN_BITS;
/// Bit position of the valid bit within an entry.
pub const VALID_SHIFT: u32 = VPN_SHIFT + VPN_BITS;
/// Bits per TLB entry.
pub const ENTRY_BITS: u32 = VALID_SHIFT + 1;

/// TLB shape configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of (fully-associative) entries.
    pub entries: usize,
    /// Extra latency of a page-table walk on a miss, in cycles.
    pub walk_latency: u32,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // Table I: 32-entry instruction and data TLBs.
        Self {
            entries: 32,
            walk_latency: 20,
        }
    }
}

/// A translation produced by a TLB hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical page number (possibly corrupted by an injected fault).
    pub ppn: u32,
    /// Page permissions.
    pub perms: PagePerms,
}

/// A fully-associative, round-robin TLB with a bit-accurate entry array.
///
/// # Example
///
/// ```
/// use mbu_mem::{Tlb, TlbConfig, PagePerms};
/// let mut tlb = Tlb::new(TlbConfig::default());
/// tlb.fill(0x400, 0x7F, PagePerms::RX);
/// assert_eq!(tlb.lookup(0x400).unwrap().ppn, 0x7F);
/// assert!(tlb.lookup(0x401).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<u64>,
    next_victim: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB must have at least one entry");
        Self {
            config,
            entries: vec![0; config.entries],
            next_victim: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up a virtual page number. Returns the first matching valid
    /// entry (a corrupted VPN can make an entry match a foreign page).
    pub fn lookup(&mut self, vpn: u32) -> Option<Translation> {
        self.lookup_indexed(vpn).map(|(_, t)| t)
    }

    /// Like [`Tlb::lookup`], but also reports *which* entry hit — the
    /// observability hook for liveness probes.
    pub fn lookup_indexed(&mut self, vpn: u32) -> Option<(usize, Translation)> {
        let vpn = vpn & ((1 << VPN_BITS) - 1);
        for (row, &e) in self.entries.iter().enumerate() {
            if (e >> VALID_SHIFT) & 1 == 1
                && ((e >> VPN_SHIFT) as u32 & ((1 << VPN_BITS) - 1)) == vpn
            {
                self.hits += 1;
                return Some((
                    row,
                    Translation {
                        ppn: (e >> PPN_SHIFT) as u32 & ((1 << PPN_BITS) - 1),
                        perms: PagePerms::from_bits((e >> PERM_SHIFT) as u32 & 0b111),
                    },
                ));
            }
        }
        self.misses += 1;
        None
    }

    /// The round-robin slot the next [`Tlb::fill`] will overwrite.
    pub fn victim_index(&self) -> usize {
        self.next_victim
    }

    /// Installs a translation in the round-robin victim slot.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` or `ppn` exceed their field widths.
    pub fn fill(&mut self, vpn: u32, ppn: u32, perms: PagePerms) {
        assert!(vpn < (1 << VPN_BITS), "vpn exceeds {VPN_BITS} bits");
        assert!(ppn < (1 << PPN_BITS), "ppn exceeds {PPN_BITS} bits");
        let e: u64 = (1u64 << VALID_SHIFT)
            | ((vpn as u64) << VPN_SHIFT)
            | ((ppn as u64) << PPN_SHIFT)
            | ((perms.to_bits() as u64) << PERM_SHIFT);
        self.entries[self.next_victim] = e;
        self.next_victim = (self.next_victim + 1) % self.entries.len();
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = 0);
        self.next_victim = 0;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Raw entry word (test introspection).
    pub fn raw_entry(&self, index: usize) -> u64 {
        self.entries[index]
    }

    /// Approximate heap bytes retained by one snapshot of this TLB.
    pub fn snapshot_bytes(&self) -> usize {
        self.entries.len() * 8
    }

    /// Liveness-aware state comparison against a golden checkpoint: `true`
    /// when every *reachable* bit of this TLB equals `golden`.
    ///
    /// Valid bits, whole words of valid entries, the round-robin victim
    /// pointer and the hit/miss counters must match exactly. The non-valid
    /// bits of an **invalid** entry are skipped: lookups ignore them and a
    /// fill overwrites the entire entry word before setting the valid bit,
    /// so they can never influence future behaviour.
    pub fn converged_with(&self, golden: &Self) -> bool {
        if self.config != golden.config
            || self.next_victim != golden.next_victim
            || self.hits != golden.hits
            || self.misses != golden.misses
        {
            return false;
        }
        self.entries.iter().zip(&golden.entries).all(|(&e, &g)| {
            let valid = (e >> VALID_SHIFT) & 1;
            valid == (g >> VALID_SHIFT) & 1 && (valid == 0 || e == g)
        })
    }
}

impl Snapshot for Tlb {
    type State = Tlb;

    fn snapshot(&self) -> Tlb {
        self.clone()
    }
}

impl Restorable for Tlb {
    fn restore(&mut self, state: &Tlb) {
        self.clone_from(state);
    }
}

impl Injectable for Tlb {
    fn injectable_geometry(&self) -> Geometry {
        Geometry::new(self.entries.len(), ENTRY_BITS as usize)
    }

    fn inject_flip(&mut self, coord: BitCoord) {
        assert!(
            coord.row < self.entries.len() && coord.col < ENTRY_BITS as usize,
            "TLB injection coordinate out of bounds"
        );
        self.entries[coord.row] ^= 1u64 << coord.col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            walk_latency: 20,
        })
    }

    #[test]
    fn fill_lookup_roundtrip() {
        let mut t = tlb();
        t.fill(0x3FF, 0x1234, PagePerms::RW);
        let tr = t.lookup(0x3FF).unwrap();
        assert_eq!(tr.ppn, 0x1234);
        assert_eq!(tr.perms, PagePerms::RW);
    }

    #[test]
    fn round_robin_eviction() {
        let mut t = tlb();
        for i in 0..5 {
            t.fill(i, i, PagePerms::R);
        }
        // Entry 0 was evicted by the 5th fill.
        assert!(t.lookup(0).is_none());
        assert!(t.lookup(4).is_some());
        assert!(t.lookup(1).is_some());
    }

    #[test]
    fn valid_bit_flip_drops_entry() {
        let mut t = tlb();
        t.fill(7, 9, PagePerms::RX);
        t.inject_flip(BitCoord::new(0, VALID_SHIFT as usize));
        assert!(t.lookup(7).is_none());
    }

    #[test]
    fn vpn_bit_flip_redirects_match() {
        let mut t = tlb();
        t.fill(0b1000, 5, PagePerms::R);
        t.inject_flip(BitCoord::new(0, VPN_SHIFT as usize)); // vpn 0b1000 -> 0b1001
        assert!(t.lookup(0b1000).is_none());
        assert_eq!(t.lookup(0b1001).unwrap().ppn, 5);
    }

    #[test]
    fn ppn_bit_flip_corrupts_translation() {
        let mut t = tlb();
        t.fill(1, 0b0001, PagePerms::R);
        t.inject_flip(BitCoord::new(0, (PPN_SHIFT + 1) as usize));
        assert_eq!(t.lookup(1).unwrap().ppn, 0b0011);
    }

    #[test]
    fn perm_bit_flip_toggles_write() {
        let mut t = tlb();
        t.fill(1, 1, PagePerms::R);
        t.inject_flip(BitCoord::new(0, 1)); // write bit
        assert!(t.lookup(1).unwrap().perms.write);
    }

    #[test]
    fn geometry_matches_config() {
        let t = Tlb::new(TlbConfig::default());
        let g = t.injectable_geometry();
        assert_eq!(g.rows(), 32);
        assert_eq!(g.cols(), ENTRY_BITS as usize);
    }

    #[test]
    fn flush_clears_all() {
        let mut t = tlb();
        t.fill(1, 1, PagePerms::R);
        t.flush();
        assert!(t.lookup(1).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_ppn_panics() {
        let mut t = tlb();
        t.fill(0, 1 << PPN_BITS, PagePerms::R);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut t = tlb();
        t.fill(1, 2, PagePerms::RW);
        let saved = t.snapshot();
        t.fill(3, 4, PagePerms::R);
        t.lookup(1);
        assert_ne!(t, saved);
        t.restore(&saved);
        assert_eq!(t, saved);
    }

    #[test]
    fn convergence_ignores_invalid_entry_bits() {
        let mut t = tlb();
        t.fill(1, 2, PagePerms::RW);
        let golden = t.snapshot();
        // Flip a PPN bit of a never-filled (invalid) entry: dead state.
        t.inject_flip(BitCoord::new(2, PPN_SHIFT as usize));
        assert!(t.converged_with(&golden));
        // Flip a live entry's PPN bit: must block convergence.
        t.inject_flip(BitCoord::new(0, PPN_SHIFT as usize));
        assert!(!t.converged_with(&golden));
        t.inject_flip(BitCoord::new(0, PPN_SHIFT as usize));
        assert!(t.converged_with(&golden));
        // A valid-bit flip is always live.
        t.inject_flip(BitCoord::new(2, VALID_SHIFT as usize));
        assert!(!t.converged_with(&golden));
    }
}
