//! ACE-style liveness analysis for the fault-injection stack.
//!
//! The injection campaigns measure AVF statistically (fraction of injected
//! runs that are not masked). This crate derives the same quantity
//! *analytically* from one fault-free observation run, following the ACE
//! methodology (Mukherjee et al., MICRO-36): instrument every storage
//! structure with [`mbu_sram::LivenessProbe`] hooks, record when each
//! field's bits are *live* (written and later read) versus *dead*
//! (overwritten before any read), and compute
//!
//! ```text
//! AVF ≈ live-bit-cycles / (total bits × total cycles)
//! ```
//!
//! Three consumers build on the recorded intervals:
//!
//! * **Analytical AVF** ([`capture`] → [`StructureResidency::analytical_avf`])
//!   cross-validated against the injection-measured AVF per (component,
//!   workload);
//! * **Occupancy observability** ([`OccupancyStats`]) — per-cycle ROB /
//!   issue-queue / store-buffer occupancy summaries and time series;
//! * **Campaign fast path** ([`LivenessOracle`]) — a conservative
//!   provably-masked pre-filter that lets campaigns skip simulating faults
//!   whose flipped bits are dead, with bit-identical classifications;
//! * **Fault-equivalence segmentation** ([`capture_component_segments`] /
//!   [`StructureResidency::slot_events`]) — the exact per-field
//!   access-event boundaries that partition the (bit, cycle) fault space
//!   into provably-equivalent classes (consumed by `mbu-equiv`).

#![forbid(unsafe_code)]

pub mod capture;
pub mod oracle;
pub mod residency;

pub use capture::{
    capture, capture_component, capture_component_segments, AceStructure, CaptureError,
    LivenessMap, OccupancyPoint, OccupancyProbe, OccupancyStats,
};
pub use oracle::LivenessOracle;
pub use residency::{FieldMap, ResidencyRecorder, SegmentEvent, SegmentKind, StructureResidency};
