//! Fault-free observation runs: capture per-structure residency and
//! pipeline occupancy for a (core, workload) pair.

use crate::residency::{FieldMap, ResidencyRecorder, StructureResidency};
use mbu_cpu::{CoreConfig, HwComponent, PipelineProbe, RunEnd, SimProbes, Simulator};
use mbu_isa::program::Program;
use mbu_mem::tlb::{ENTRY_BITS, PPN_SHIFT, VPN_SHIFT};
use mbu_sram::LivenessProbe;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// Cycle budget for an observation run. Fault-free workloads finish in well
/// under a million cycles; this bound only guards against a misconfigured
/// program wedging the capture.
const CAPTURE_CYCLE_BUDGET: u64 = u64::MAX / 8;

/// Cycles per occupancy time-series bucket.
const OCCUPANCY_CHUNK: u64 = 1024;

/// Every observable storage structure of the modeled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AceStructure {
    /// L1 data cache data array.
    L1dData,
    /// L1 instruction cache data array.
    L1iData,
    /// Unified L2 data array.
    L2Data,
    /// L1 data cache tag array.
    L1dTag,
    /// L1 instruction cache tag array.
    L1iTag,
    /// Unified L2 tag array.
    L2Tag,
    /// Physical register file.
    RegFile,
    /// Data TLB entry array.
    Dtlb,
    /// Instruction TLB entry array.
    Itlb,
}

impl AceStructure {
    /// All structures, data arrays first.
    pub const ALL: [AceStructure; 9] = [
        AceStructure::L1dData,
        AceStructure::L1iData,
        AceStructure::L2Data,
        AceStructure::RegFile,
        AceStructure::Dtlb,
        AceStructure::Itlb,
        AceStructure::L1dTag,
        AceStructure::L1iTag,
        AceStructure::L2Tag,
    ];

    /// The injectable component this structure's *data* belongs to, if it
    /// is one of the paper's six injection targets (tag arrays map to their
    /// cache component only through the tag-array ablation path).
    pub fn component(self) -> Option<HwComponent> {
        match self {
            AceStructure::L1dData => Some(HwComponent::L1D),
            AceStructure::L1iData => Some(HwComponent::L1I),
            AceStructure::L2Data => Some(HwComponent::L2),
            AceStructure::RegFile => Some(HwComponent::RegFile),
            AceStructure::Dtlb => Some(HwComponent::DTlb),
            AceStructure::Itlb => Some(HwComponent::ITlb),
            _ => None,
        }
    }

    /// The structure observing a component's injectable data array.
    pub fn for_component(component: HwComponent) -> AceStructure {
        match component {
            HwComponent::L1D => AceStructure::L1dData,
            HwComponent::L1I => AceStructure::L1iData,
            HwComponent::L2 => AceStructure::L2Data,
            HwComponent::RegFile => AceStructure::RegFile,
            HwComponent::DTlb => AceStructure::Dtlb,
            HwComponent::ITlb => AceStructure::Itlb,
        }
    }

    /// Short stable identifier (CSV keys, CLI).
    pub fn slug(self) -> &'static str {
        match self {
            AceStructure::L1dData => "l1d",
            AceStructure::L1iData => "l1i",
            AceStructure::L2Data => "l2",
            AceStructure::L1dTag => "l1d-tag",
            AceStructure::L1iTag => "l1i-tag",
            AceStructure::L2Tag => "l2-tag",
            AceStructure::RegFile => "regfile",
            AceStructure::Dtlb => "dtlb",
            AceStructure::Itlb => "itlb",
        }
    }
}

impl fmt::Display for AceStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Why a capture run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// The fault-free run did not exit cleanly.
    RunFailed {
        /// How the run actually ended.
        end: String,
    },
    /// A detached probe was not the recorder this crate attached.
    ProbeMismatch,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::RunFailed { end } => {
                write!(f, "fault-free observation run did not exit cleanly: {end}")
            }
            CaptureError::ProbeMismatch => f.write_str("detached probe was not a recorder"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// One mean-occupancy point of the time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyPoint {
    /// First cycle of the bucket.
    pub cycle: u64,
    /// Mean ROB entries over the bucket.
    pub rob: f64,
    /// Mean issue-queue entries over the bucket.
    pub iq: f64,
    /// Mean store-buffer (uncommitted stores in the ROB) entries.
    pub store_buffer: f64,
}

/// Occupancy summary + time series of the pipeline queue structures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OccupancyStats {
    /// Cycles sampled.
    pub samples: u64,
    /// Mean ROB occupancy.
    pub mean_rob: f64,
    /// Peak ROB occupancy.
    pub max_rob: usize,
    /// Mean issue-queue occupancy.
    pub mean_iq: f64,
    /// Peak issue-queue occupancy.
    pub max_iq: usize,
    /// Mean store-buffer occupancy.
    pub mean_sb: f64,
    /// Peak store-buffer occupancy.
    pub max_sb: usize,
    /// Cycles per time-series bucket.
    pub chunk: u64,
    /// Bucketed mean-occupancy time series.
    pub series: Vec<OccupancyPoint>,
}

/// Chunked occupancy accumulator (bounded memory: one point per
/// [`OCCUPANCY_CHUNK`] cycles, running sums for the means).
#[derive(Debug, Default)]
pub struct OccupancyProbe {
    samples: u64,
    sum: [u64; 3],
    max: [usize; 3],
    chunk_start: u64,
    chunk_samples: u64,
    chunk_sum: [u64; 3],
    series: Vec<OccupancyPoint>,
}

impl OccupancyProbe {
    fn flush_chunk(&mut self) {
        if self.chunk_samples > 0 {
            let n = self.chunk_samples as f64;
            self.series.push(OccupancyPoint {
                cycle: self.chunk_start,
                rob: self.chunk_sum[0] as f64 / n,
                iq: self.chunk_sum[1] as f64 / n,
                store_buffer: self.chunk_sum[2] as f64 / n,
            });
        }
        self.chunk_samples = 0;
        self.chunk_sum = [0; 3];
    }

    /// Freezes the accumulator into summary statistics.
    pub fn finish(mut self) -> OccupancyStats {
        self.flush_chunk();
        let n = self.samples.max(1) as f64;
        OccupancyStats {
            samples: self.samples,
            mean_rob: self.sum[0] as f64 / n,
            max_rob: self.max[0],
            mean_iq: self.sum[1] as f64 / n,
            max_iq: self.max[1],
            mean_sb: self.sum[2] as f64 / n,
            max_sb: self.max[2],
            chunk: OCCUPANCY_CHUNK,
            series: self.series,
        }
    }
}

impl PipelineProbe for OccupancyProbe {
    fn on_cycle(&mut self, cycle: u64, rob: usize, iq: usize, store_buffer: usize) {
        if self.chunk_samples > 0 && cycle >= self.chunk_start + OCCUPANCY_CHUNK {
            self.flush_chunk();
        }
        if self.chunk_samples == 0 {
            self.chunk_start = cycle - cycle % OCCUPANCY_CHUNK;
        }
        for (i, v) in [rob, iq, store_buffer].into_iter().enumerate() {
            self.sum[i] += v as u64;
            self.chunk_sum[i] += v as u64;
            self.max[i] = self.max[i].max(v);
        }
        self.samples += 1;
        self.chunk_samples += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The full liveness picture of one fault-free (core, workload) run.
#[derive(Debug)]
pub struct LivenessMap {
    /// Cycles of the fault-free run.
    pub total_cycles: u64,
    /// Instructions committed by the fault-free run.
    pub instructions: u64,
    /// Per-structure live intervals.
    pub structures: BTreeMap<AceStructure, StructureResidency>,
    /// Pipeline-queue occupancy.
    pub occupancy: OccupancyStats,
}

/// The field partition of a structure's rows.
fn field_map_for(structure: AceStructure, sim: &Simulator) -> FieldMap {
    let tlb_ranges = || {
        FieldMap::Ranges(vec![
            0..PPN_SHIFT as usize,
            PPN_SHIFT as usize..VPN_SHIFT as usize,
            VPN_SHIFT as usize..(ENTRY_BITS - 1) as usize,
            (ENTRY_BITS - 1) as usize..ENTRY_BITS as usize,
        ])
    };
    match structure {
        AceStructure::L1dData | AceStructure::L1iData | AceStructure::L2Data => FieldMap::Chunks {
            chunk: 8,
            cols: 256,
        },
        AceStructure::L1dTag => FieldMap::Row {
            cols: sim.tag_geometry(HwComponent::L1D).cols(),
        },
        AceStructure::L1iTag => FieldMap::Row {
            cols: sim.tag_geometry(HwComponent::L1I).cols(),
        },
        AceStructure::L2Tag => FieldMap::Row {
            cols: sim.tag_geometry(HwComponent::L2).cols(),
        },
        AceStructure::RegFile => FieldMap::Row { cols: 32 },
        AceStructure::Dtlb | AceStructure::Itlb => tlb_ranges(),
    }
}

/// Logical row count of a structure.
fn rows_for(structure: AceStructure, core: &CoreConfig) -> usize {
    match structure {
        AceStructure::L1dData | AceStructure::L1dTag => core.mem.l1d.lines() as usize,
        AceStructure::L1iData | AceStructure::L1iTag => core.mem.l1i.lines() as usize,
        AceStructure::L2Data | AceStructure::L2Tag => core.mem.l2.lines() as usize,
        AceStructure::RegFile => core.phys_regs as usize,
        AceStructure::Dtlb => core.mem.dtlb.entries,
        AceStructure::Itlb => core.mem.itlb.entries,
    }
}

fn recorder_for(
    structure: AceStructure,
    core: &CoreConfig,
    sim: &Simulator,
    with_segments: bool,
) -> ResidencyRecorder {
    let rows = rows_for(structure, core);
    let map = field_map_for(structure, sim);
    if with_segments {
        ResidencyRecorder::with_segments(rows, map)
    } else {
        ResidencyRecorder::new(rows, map)
    }
}

fn slot_mut(
    probes: &mut SimProbes,
    structure: AceStructure,
) -> &mut Option<Box<dyn LivenessProbe>> {
    match structure {
        AceStructure::L1dData => &mut probes.mem.l1d_data,
        AceStructure::L1iData => &mut probes.mem.l1i_data,
        AceStructure::L2Data => &mut probes.mem.l2_data,
        AceStructure::L1dTag => &mut probes.mem.l1d_tag,
        AceStructure::L1iTag => &mut probes.mem.l1i_tag,
        AceStructure::L2Tag => &mut probes.mem.l2_tag,
        AceStructure::RegFile => &mut probes.prf,
        AceStructure::Dtlb => &mut probes.mem.dtlb,
        AceStructure::Itlb => &mut probes.mem.itlb,
    }
}

fn run_with_probes(
    core: CoreConfig,
    program: &Program,
    structures: &[AceStructure],
    with_occupancy: bool,
    with_segments: bool,
) -> Result<LivenessMap, CaptureError> {
    let mut sim = Simulator::new(core, program);
    let mut probes = SimProbes::default();
    for &s in structures {
        *slot_mut(&mut probes, s) = Some(Box::new(recorder_for(s, &core, &sim, with_segments)));
    }
    if with_occupancy {
        probes.pipeline = Some(Box::new(OccupancyProbe::default()));
    }
    sim.attach_probes(probes);
    let end = sim.run_until_cycle(CAPTURE_CYCLE_BUDGET);
    if !matches!(end, Some(RunEnd::Exited { .. })) {
        return Err(CaptureError::RunFailed {
            end: format!("{end:?}"),
        });
    }
    let total_cycles = sim.cycle();
    let instructions = sim.instructions();
    let mut detached = sim.detach_probes();
    let mut out = BTreeMap::new();
    for &s in structures {
        let probe = slot_mut(&mut detached, s)
            .take()
            .ok_or(CaptureError::ProbeMismatch)?;
        let recorder = probe
            .into_any()
            .downcast::<ResidencyRecorder>()
            .map_err(|_| CaptureError::ProbeMismatch)?;
        out.insert(s, recorder.finish(total_cycles));
    }
    let occupancy = match detached.pipeline.take() {
        Some(p) => *p
            .into_any()
            .downcast::<OccupancyProbe>()
            .map_err(|_| CaptureError::ProbeMismatch)?,
        None => OccupancyProbe::default(),
    };
    Ok(LivenessMap {
        total_cycles,
        instructions,
        structures: out,
        occupancy: occupancy.finish(),
    })
}

/// Observes a full fault-free run of `program`, recording residency for
/// every structure in [`AceStructure::ALL`] plus pipeline occupancy.
///
/// # Errors
///
/// [`CaptureError::RunFailed`] if the fault-free run does not exit cleanly.
pub fn capture(core: CoreConfig, program: &Program) -> Result<LivenessMap, CaptureError> {
    run_with_probes(core, program, &AceStructure::ALL, true, false)
}

/// Observes a fault-free run recording only `component`'s data array — the
/// cheap path used to build a campaign oracle.
///
/// # Errors
///
/// [`CaptureError::RunFailed`] if the fault-free run does not exit cleanly.
pub fn capture_component(
    core: CoreConfig,
    program: &Program,
    component: HwComponent,
) -> Result<(StructureResidency, u64), CaptureError> {
    capture_component_inner(core, program, component, false)
}

/// Like [`capture_component`], but additionally records every access-event
/// boundary ([`crate::residency::SegmentEvent`]) so the returned residency
/// exposes the exact fault-equivalence segmentation of the component's
/// (bit, cycle) fault space — the input to `mbu-equiv` partitions.
///
/// # Errors
///
/// [`CaptureError::RunFailed`] if the fault-free run does not exit cleanly.
pub fn capture_component_segments(
    core: CoreConfig,
    program: &Program,
    component: HwComponent,
) -> Result<(StructureResidency, u64), CaptureError> {
    capture_component_inner(core, program, component, true)
}

fn capture_component_inner(
    core: CoreConfig,
    program: &Program,
    component: HwComponent,
    with_segments: bool,
) -> Result<(StructureResidency, u64), CaptureError> {
    let structure = AceStructure::for_component(component);
    let mut map = run_with_probes(core, program, &[structure], false, with_segments)?;
    let residency = map
        .structures
        .remove(&structure)
        .ok_or(CaptureError::ProbeMismatch)?;
    Ok((residency, map.total_cycles))
}
