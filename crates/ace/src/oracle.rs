//! Provably-masked injection pruning from fault-free residency.
//!
//! A [`LivenessOracle`] answers one question for the campaign driver: *is
//! this fault mask provably masked?* A mask is provably masked when every
//! flipped bit is dead at the injection cycle — per the fault-free trace it
//! is fully overwritten before any read — because then the injected run is
//! cycle-for-cycle identical to the golden run:
//!
//! 1. up to the injection cycle the runs are identical by construction;
//! 2. a flipped dead bit is, by the recorded intervals, overwritten (with
//!    data produced by the so-far-identical execution) before anything
//!    reads it, so no architectural or timing state ever differs;
//! 3. by induction the runs stay identical through program end — same
//!    output, same exit, same cycle count.
//!
//! The oracle is **conservative**: any uncertainty (a bit inside a live
//! interval, an unmapped coordinate, an interval merged over a short dead
//! gap) reports "possibly live" and the campaign falls through to full
//! simulation, so classifications are bit-identical with the oracle on or
//! off — only the wall-clock changes.

use crate::capture::{capture_component, capture_component_segments, CaptureError};
use crate::residency::StructureResidency;
use mbu_cpu::{CoreConfig, HwComponent};
use mbu_isa::program::Program;
use mbu_sram::BitCoord;

/// Fault-free residency of one component's data array, queryable by the
/// *physical* injection coordinates the campaign generates.
#[derive(Debug, Clone)]
pub struct LivenessOracle {
    component: HwComponent,
    residency: StructureResidency,
    /// Physical column interleaving of the component's bit array (caches);
    /// 1 for structures whose physical and logical geometries coincide.
    interleave: usize,
    total_cycles: u64,
}

impl LivenessOracle {
    /// Captures a fault-free run of `program` and builds the oracle for
    /// `component`'s data array.
    ///
    /// # Errors
    ///
    /// [`CaptureError::RunFailed`] if the observation run does not exit
    /// cleanly.
    pub fn build(
        core: CoreConfig,
        program: &Program,
        component: HwComponent,
    ) -> Result<Self, CaptureError> {
        Self::build_inner(core, program, component, false)
    }

    /// Like [`LivenessOracle::build`], but captures with access-event
    /// boundaries recorded, so [`LivenessOracle::residency`] exposes the
    /// exact fault-equivalence segmentation (`StructureResidency::
    /// slot_events`) in addition to the liveness intervals.
    ///
    /// # Errors
    ///
    /// [`CaptureError::RunFailed`] if the observation run does not exit
    /// cleanly.
    pub fn build_with_segments(
        core: CoreConfig,
        program: &Program,
        component: HwComponent,
    ) -> Result<Self, CaptureError> {
        Self::build_inner(core, program, component, true)
    }

    fn build_inner(
        core: CoreConfig,
        program: &Program,
        component: HwComponent,
        with_segments: bool,
    ) -> Result<Self, CaptureError> {
        let (residency, total_cycles) = if with_segments {
            capture_component_segments(core, program, component)?
        } else {
            capture_component(core, program, component)?
        };
        let interleave = match component {
            HwComponent::L1D => core.mem.l1d.interleave as usize,
            HwComponent::L1I => core.mem.l1i.interleave as usize,
            HwComponent::L2 => core.mem.l2.interleave as usize,
            HwComponent::RegFile | HwComponent::DTlb | HwComponent::ITlb => 1,
        };
        Ok(Self {
            component,
            residency,
            interleave: interleave.max(1),
            total_cycles,
        })
    }

    /// The component this oracle describes.
    pub fn component(&self) -> HwComponent {
        self.component
    }

    /// Physical column interleaving of the component's bit array — the
    /// forward map from the logical `(row, bit)` coordinates the residency
    /// (and `mbu-equiv` partitions) use to the physical [`BitCoord`]s the
    /// injector flips is `phys.row = row / I`, `phys.col = bit·I + row % I`.
    pub fn interleave(&self) -> usize {
        self.interleave
    }

    /// Cycles of the observed fault-free run.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The underlying residency record.
    pub fn residency(&self) -> &StructureResidency {
        &self.residency
    }

    /// Maps a physical injection coordinate to the logical `(row, bit)`
    /// the residency record tracks (inverse of the injector's interleave
    /// permutation: `line = row·I + col mod I`, `bit = col / I`).
    fn logical(&self, coord: BitCoord) -> (usize, usize) {
        (
            coord.row * self.interleave + coord.col % self.interleave,
            coord.col / self.interleave,
        )
    }

    /// Whether the bit at physical `coord` is (possibly) live at `cycle`.
    pub fn is_live_at(&self, coord: BitCoord, cycle: u64) -> bool {
        let (row, bit) = self.logical(coord);
        self.residency.is_live_at(row, bit, cycle)
    }

    /// Whether flipping exactly `coords` at `inject_cycle` is provably
    /// masked (every flipped bit dead per the fault-free trace). `false`
    /// means "unknown — simulate".
    pub fn provably_masked(&self, coords: &[BitCoord], inject_cycle: u64) -> bool {
        if inject_cycle >= self.total_cycles || coords.is_empty() {
            return false;
        }
        coords.iter().all(|&c| !self.is_live_at(c, inject_cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residency::{FieldMap, ResidencyRecorder};
    use mbu_sram::LivenessProbe;

    fn oracle_with(interleave: usize) -> LivenessOracle {
        let mut rec = ResidencyRecorder::new(
            4,
            FieldMap::Chunks {
                chunk: 8,
                cols: 256,
            },
        );
        // Line 2, byte 0 live over [10, 90].
        rec.on_write(10, 2, 0, 8);
        rec.on_read(90, 2, 0, 8);
        rec.on_write(95, 2, 0, 8);
        LivenessOracle {
            component: HwComponent::L1D,
            residency: rec.finish(1000),
            interleave,
            total_cycles: 1000,
        }
    }

    #[test]
    fn dead_everywhere_masks_live_does_not() {
        let o = oracle_with(1);
        let live = BitCoord::new(2, 3); // byte 0 of line 2
        let dead = BitCoord::new(2, 100); // untouched byte of line 2
        assert!(!o.provably_masked(&[live], 50));
        assert!(
            o.provably_masked(&[live], 200),
            "dead after overwrite window"
        );
        assert!(o.provably_masked(&[dead], 50));
        assert!(!o.provably_masked(&[live, dead], 50), "any live bit blocks");
        assert!(o.provably_masked(&[live, dead], 200));
    }

    #[test]
    fn injection_past_run_end_is_not_provable() {
        let o = oracle_with(1);
        assert!(!o.provably_masked(&[BitCoord::new(2, 100)], 1000));
        assert!(!o.provably_masked(&[], 50), "empty mask is not a claim");
    }

    #[test]
    fn interleave_mapping_matches_injector() {
        // With I = 2: physical (row 1, col 1) → line 1·2 + 1 = 3, bit 0.
        let mut rec = ResidencyRecorder::new(
            4,
            FieldMap::Chunks {
                chunk: 8,
                cols: 256,
            },
        );
        rec.on_write(10, 3, 0, 8);
        rec.on_read(500, 3, 0, 8);
        let o = LivenessOracle {
            component: HwComponent::L1D,
            residency: rec.finish(1000),
            interleave: 2,
            total_cycles: 1000,
        };
        assert!(
            o.is_live_at(BitCoord::new(1, 1), 100),
            "maps to live line 3 byte 0"
        );
        assert!(!o.is_live_at(BitCoord::new(1, 0), 100), "line 2 untouched");
    }
}
