//! Per-field live-interval recording from a structure's probe event stream.
//!
//! A [`ResidencyRecorder`] implements [`LivenessProbe`] and folds the
//! write/read/invalidate stream of one storage array into *live intervals*:
//! a field (a group of fate-sharing bits) is live from a defining write to
//! the **last read** of that value before its next full overwrite, and dead
//! everywhere else. The paper's ACE framing (Mukherjee et al.): un-ACE
//! cycles are exactly the dead intervals, so
//!
//! ```text
//! analytical AVF = live-bit-cycles / (total bits × total cycles)
//! ```
//!
//! Conservatism rules (the campaign oracle must never call a live bit dead):
//!
//! * a write that only *partially* covers a field is treated as a read —
//!   the field's old value may survive in the untouched bits;
//! * a read of any bit of a field marks the whole field read (fate-sharing);
//! * a field read before any recorded write is live from cycle 0 (initial
//!   contents);
//! * invalidations are advisory only — the bits physically persist, and a
//!   later read without an intervening write would still observe them, so
//!   invalidation never terminates an interval early.

use mbu_sram::LivenessProbe;
use std::any::Any;
use std::ops::Range;

/// Adjacent live intervals closer than this many cycles are merged in the
/// stored interval list. Merging only ever *adds* liveness (the gap becomes
/// live), so oracle queries stay conservative; the exact pre-merge
/// live-cycle tally is kept separately for analytical AVF.
const MERGE_GAP: u64 = 32;

/// How a row's bit columns partition into fate-sharing fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldMap {
    /// The whole row is one field (e.g. a 32-bit physical register).
    Row {
        /// Bits per row.
        cols: usize,
    },
    /// The row splits into equal-width chunks (e.g. a cache line tracked
    /// per byte: `chunk = 8`, `cols = 256`).
    Chunks {
        /// Bits per chunk; must divide `cols`.
        chunk: usize,
        /// Bits per row.
        cols: usize,
    },
    /// Explicit field ranges covering `0..cols` without gaps (e.g. the TLB
    /// entry's perm / PPN / VPN / valid fields).
    Ranges(Vec<Range<usize>>),
}

impl FieldMap {
    /// Total bit columns per row.
    pub fn cols(&self) -> usize {
        match self {
            FieldMap::Row { cols } => *cols,
            FieldMap::Chunks { cols, .. } => *cols,
            FieldMap::Ranges(ranges) => ranges.last().map(|r| r.end).unwrap_or(0),
        }
    }

    /// Number of fields per row.
    pub fn fields_per_row(&self) -> usize {
        match self {
            FieldMap::Row { .. } => 1,
            FieldMap::Chunks { chunk, cols } => cols / chunk,
            FieldMap::Ranges(ranges) => ranges.len(),
        }
    }

    /// The field index a bit column belongs to.
    pub fn field_of(&self, col: usize) -> usize {
        match self {
            FieldMap::Row { .. } => 0,
            FieldMap::Chunks { chunk, .. } => col / chunk,
            FieldMap::Ranges(ranges) => ranges
                .iter()
                .position(|r| r.contains(&col))
                .unwrap_or(ranges.len().saturating_sub(1)),
        }
    }

    /// The bit range of a field.
    pub fn field_range(&self, field: usize) -> Range<usize> {
        match self {
            FieldMap::Row { cols } => 0..*cols,
            FieldMap::Chunks { chunk, .. } => field * chunk..(field + 1) * chunk,
            FieldMap::Ranges(ranges) => ranges[field].clone(),
        }
    }
}

/// How a recorded access event terminates the fault-equivalence segment
/// that precedes it (see [`StructureResidency::slot_events`]).
///
/// Two flips of the same bit whose injection cycles fall strictly between
/// the same pair of consecutive access events are provably equivalent: the
/// flipped bit is not consulted until the next event, so both runs reach
/// that event in bit-identical states and share one outcome. The event
/// *kind* additionally tells which segments are provably `Masked` without
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// The event *fully overwrites* the field: a flip anywhere in the
    /// preceding segment is erased before any observation — provably
    /// masked, same soundness argument as the liveness oracle.
    Overwritten,
    /// The event is an advisory invalidation (or an unordered same-cycle
    /// mix of invalidate + overwrite): it may mutate unprobed metadata, so
    /// the preceding segment is a real class but cannot be pruned.
    Barrier,
    /// The event observes the field (a read, or a partial write that
    /// preserves old bits): the preceding segment's outcome requires
    /// simulation of one representative.
    Observed,
}

impl SegmentKind {
    /// Merges two same-cycle events on one field. Intra-cycle event order
    /// is not recorded, so the merge must be conservative: any observation
    /// dominates (the flip may have been consumed), otherwise any barrier
    /// dominates (the overwrite may have been undone or reordered).
    fn merge(self, other: SegmentKind) -> SegmentKind {
        self.max(other)
    }
}

/// One access-event boundary of a field's fault-equivalence segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEvent {
    /// The cycle the event was observed at.
    pub cycle: u64,
    /// How the event terminates the segment preceding it.
    pub kind: SegmentKind,
}

/// Per-field interval-tracking state.
#[derive(Debug, Clone, Copy)]
struct FieldState {
    /// Cycle the current value was (fully) written; 0 for initial contents.
    written_at: u64,
    /// Last cycle the current value was read.
    last_read: u64,
    /// Whether the current value has been read at all.
    has_read: bool,
}

impl FieldState {
    fn fresh(now: u64) -> Self {
        Self {
            written_at: now,
            last_read: 0,
            has_read: false,
        }
    }
}

/// Records one structure's event stream into per-field live intervals.
#[derive(Debug)]
pub struct ResidencyRecorder {
    map: FieldMap,
    rows: usize,
    states: Vec<FieldState>,
    /// Merged live intervals `[start, end]` (inclusive) per field, sorted.
    intervals: Vec<Vec<(u64, u64)>>,
    /// Exact (pre-merge) live bit-cycles over all fields.
    live_bit_cycles: u64,
    /// Advisory invalidation events seen (statistic only; see module docs).
    invalidates: u64,
    events: u64,
    /// Per-slot sorted access-event boundaries, recorded only when the
    /// recorder was built with [`ResidencyRecorder::with_segments`].
    segments: Option<Vec<Vec<SegmentEvent>>>,
}

impl ResidencyRecorder {
    /// Creates a recorder for a `rows × map.cols()` structure.
    pub fn new(rows: usize, map: FieldMap) -> Self {
        let nfields = rows * map.fields_per_row();
        Self {
            map,
            rows,
            states: vec![FieldState::fresh(0); nfields],
            intervals: vec![Vec::new(); nfields],
            live_bit_cycles: 0,
            invalidates: 0,
            events: 0,
            segments: None,
        }
    }

    /// Like [`ResidencyRecorder::new`], but additionally records every
    /// per-field access-event boundary ([`SegmentEvent`]) so the finished
    /// [`StructureResidency`] can expose the exact fault-equivalence
    /// segmentation of the (bit, cycle) space.
    pub fn with_segments(rows: usize, map: FieldMap) -> Self {
        let nfields = rows * map.fields_per_row();
        let mut r = Self::new(rows, map);
        r.segments = Some(vec![Vec::new(); nfields]);
        r
    }

    /// Records one segment-boundary event on `slot`. Events arrive in
    /// nondecreasing cycle order from a monotonic simulator; same-cycle
    /// events merge conservatively, and a (never expected) out-of-order
    /// event is inserted at its sorted position rather than corrupting the
    /// boundary list.
    fn push_event(&mut self, slot: usize, now: u64, kind: SegmentKind) {
        let Some(segments) = &mut self.segments else {
            return;
        };
        let v = &mut segments[slot];
        match v.last_mut() {
            Some(last) if last.cycle == now => last.kind = last.kind.merge(kind),
            Some(last) if last.cycle > now => {
                let i = v.partition_point(|e| e.cycle < now);
                if i < v.len() && v[i].cycle == now {
                    v[i].kind = v[i].kind.merge(kind);
                } else {
                    v.insert(i, SegmentEvent { cycle: now, kind });
                }
            }
            _ => v.push(SegmentEvent { cycle: now, kind }),
        }
    }

    /// Field indices overlapped by `[col, col + width)` in `row`, together
    /// with whether the range *fully* covers each field.
    fn touched(&self, col: usize, width: usize) -> Range<usize> {
        let first = self
            .map
            .field_of(col.min(self.map.cols().saturating_sub(1)));
        let last = self
            .map
            .field_of((col + width - 1).min(self.map.cols().saturating_sub(1)));
        first..last + 1
    }

    fn close_interval(&mut self, slot: usize, field: usize) {
        let st = self.states[slot];
        if st.has_read && st.last_read >= st.written_at {
            let bits = self.map.field_range(field).len() as u64;
            self.live_bit_cycles += (st.last_read - st.written_at + 1) * bits;
            let iv = &mut self.intervals[slot];
            match iv.last_mut() {
                Some(last) if st.written_at <= last.1.saturating_add(MERGE_GAP) => {
                    last.1 = last.1.max(st.last_read);
                }
                _ => iv.push((st.written_at, st.last_read)),
            }
        }
    }

    fn mark_read(&mut self, now: u64, row: usize, col: usize, width: usize) {
        if row >= self.rows || width == 0 {
            return;
        }
        let base = row * self.map.fields_per_row();
        for field in self.touched(col, width) {
            let st = &mut self.states[base + field];
            st.last_read = st.last_read.max(now);
            st.has_read = true;
            self.push_event(base + field, now, SegmentKind::Observed);
        }
    }

    /// Closes all pending intervals and freezes the recording.
    pub fn finish(mut self, total_cycles: u64) -> StructureResidency {
        for slot in 0..self.states.len() {
            let field = slot % self.map.fields_per_row();
            self.close_interval(slot, field);
        }
        let total_bits = (self.rows * self.map.cols()) as u64;
        StructureResidency {
            map: self.map,
            rows: self.rows,
            intervals: self.intervals,
            live_bit_cycles: self.live_bit_cycles,
            total_bits,
            total_cycles,
            invalidates: self.invalidates,
            events: self.events,
            segments: self.segments,
        }
    }
}

impl LivenessProbe for ResidencyRecorder {
    fn on_write(&mut self, now: u64, row: usize, col: usize, width: usize) {
        if row >= self.rows || width == 0 {
            return;
        }
        self.events += 1;
        let base = row * self.map.fields_per_row();
        for field in self.touched(col, width) {
            let r = self.map.field_range(field);
            if col <= r.start && col + width >= r.end {
                // Full overwrite: the old value's observation window closes.
                self.close_interval(base + field, field);
                self.states[base + field] = FieldState::fresh(now);
                self.push_event(base + field, now, SegmentKind::Overwritten);
            } else {
                // Partial write: the field's old bits may survive — treat
                // as an observation (keeps the whole field conservative).
                let st = &mut self.states[base + field];
                st.last_read = st.last_read.max(now);
                st.has_read = true;
                self.push_event(base + field, now, SegmentKind::Observed);
            }
        }
    }

    fn on_read(&mut self, now: u64, row: usize, col: usize, width: usize) {
        self.events += 1;
        self.mark_read(now, row, col, width);
    }

    fn on_invalidate(&mut self, now: u64, row: usize, col: usize, width: usize) {
        // Advisory only for *liveness*: invalidated bits persist physically
        // and could still be observed by a later read, so deadness is
        // decided purely by the read/overwrite pattern (module docs). For
        // fault-equivalence *segmentation* the event is still a boundary —
        // an invalidation may mutate unprobed metadata, so segments on
        // either side of it must not be merged (recorded as a barrier).
        self.events += 1;
        self.invalidates += 1;
        if self.segments.is_some() && row < self.rows && width > 0 {
            let base = row * self.map.fields_per_row();
            for field in self.touched(col, width) {
                self.push_event(base + field, now, SegmentKind::Barrier);
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Frozen per-field live intervals of one structure over one run.
#[derive(Debug, Clone)]
pub struct StructureResidency {
    map: FieldMap,
    rows: usize,
    intervals: Vec<Vec<(u64, u64)>>,
    live_bit_cycles: u64,
    total_bits: u64,
    total_cycles: u64,
    /// Advisory invalidation events observed during the run.
    pub invalidates: u64,
    /// Total probe events observed during the run.
    pub events: u64,
    /// Per-slot sorted access-event boundaries; `None` unless the recorder
    /// was built with [`ResidencyRecorder::with_segments`].
    segments: Option<Vec<Vec<SegmentEvent>>>,
}

impl StructureResidency {
    /// Rows of the structure's logical geometry.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit columns per row.
    pub fn cols(&self) -> usize {
        self.map.cols()
    }

    /// Total bits of the structure.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Cycles of the recorded run.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Exact live bit-cycles (pre-merge; the analytical AVF numerator).
    pub fn live_bit_cycles(&self) -> u64 {
        self.live_bit_cycles
    }

    /// Analytical AVF: live-bit-cycles / (bits × cycles).
    pub fn analytical_avf(&self) -> f64 {
        if self.total_bits == 0 || self.total_cycles == 0 {
            return 0.0;
        }
        self.live_bit_cycles as f64 / (self.total_bits as f64 * self.total_cycles as f64)
    }

    /// Mean fraction of the structure's bits live at any cycle — identical
    /// to the analytical AVF, named for occupancy reporting.
    pub fn mean_live_fraction(&self) -> f64 {
        self.analytical_avf()
    }

    /// Whether the bit at logical `(row, col)` is (possibly) live at
    /// `cycle`. Out-of-range coordinates report live (conservative).
    pub fn is_live_at(&self, row: usize, col: usize, cycle: u64) -> bool {
        if row >= self.rows || col >= self.map.cols() {
            return true;
        }
        let slot = row * self.map.fields_per_row() + self.map.field_of(col);
        let iv = &self.intervals[slot];
        // Last interval starting at or before `cycle`.
        match iv
            .partition_point(|&(start, _)| start <= cycle)
            .checked_sub(1)
        {
            None => false,
            Some(i) => cycle <= iv[i].1,
        }
    }

    /// Number of stored (merged) live intervals across all fields.
    pub fn interval_count(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    /// The field map the recording was made under.
    pub fn field_map(&self) -> &FieldMap {
        &self.map
    }

    /// Number of field slots (`rows × fields_per_row`). Slot `s` covers
    /// row `s / fields_per_row`, field `s % fields_per_row`.
    pub fn slot_count(&self) -> usize {
        self.rows * self.map.fields_per_row()
    }

    /// The field slot containing logical bit `(row, col)`. Out-of-range
    /// coordinates return `None`.
    pub fn slot_of(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.rows || col >= self.map.cols() {
            return None;
        }
        Some(row * self.map.fields_per_row() + self.map.field_of(col))
    }

    /// Whether access-event boundaries were recorded
    /// (see [`ResidencyRecorder::with_segments`]).
    pub fn has_segments(&self) -> bool {
        self.segments.is_some()
    }

    /// The sorted access-event boundaries of one field slot, or `None` if
    /// the recording was made without segment capture.
    pub fn slot_events(&self, slot: usize) -> Option<&[SegmentEvent]> {
        self.segments.as_ref().map(|s| s[slot].as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> ResidencyRecorder {
        ResidencyRecorder::new(4, FieldMap::Row { cols: 32 })
    }

    #[test]
    fn write_read_overwrite_forms_interval() {
        let mut r = rec();
        r.on_write(10, 0, 0, 32);
        r.on_read(20, 0, 0, 32);
        r.on_read(40, 0, 0, 32);
        r.on_write(100, 0, 0, 32);
        let res = r.finish(200);
        assert!(res.is_live_at(0, 5, 10));
        assert!(res.is_live_at(0, 5, 40));
        assert!(!res.is_live_at(0, 5, 41), "dead after last read");
        assert!(!res.is_live_at(0, 5, 150), "unread second value is dead");
        assert_eq!(res.live_bit_cycles(), 31 * 32);
    }

    #[test]
    fn unread_value_is_fully_dead() {
        let mut r = rec();
        r.on_write(10, 0, 0, 32);
        let res = r.finish(100);
        assert!(!res.is_live_at(0, 0, 50));
        assert_eq!(res.live_bit_cycles(), 0);
    }

    #[test]
    fn read_before_any_write_is_initial_content_span() {
        let mut r = rec();
        r.on_read(30, 1, 0, 32);
        let res = r.finish(100);
        assert!(res.is_live_at(1, 0, 0), "live from cycle 0");
        assert!(res.is_live_at(1, 0, 30));
        assert!(!res.is_live_at(1, 0, 31));
    }

    #[test]
    fn invalidate_does_not_end_liveness() {
        let mut r = rec();
        r.on_write(10, 0, 0, 32);
        r.on_invalidate(20, 0, 0, 32);
        r.on_read(50, 0, 0, 32); // bits persisted and were observed
        let res = r.finish(100);
        assert!(res.is_live_at(0, 0, 30), "read-after-invalidate keeps span");
        assert_eq!(res.invalidates, 1);
    }

    #[test]
    fn chunked_fields_track_independently() {
        let mut r = ResidencyRecorder::new(
            2,
            FieldMap::Chunks {
                chunk: 8,
                cols: 256,
            },
        );
        r.on_write(5, 0, 0, 256); // full-line fill
        r.on_read(50, 0, 32, 8); // read byte 4 only
        r.on_write(80, 0, 0, 256);
        let res = r.finish(100);
        assert!(res.is_live_at(0, 35, 40), "read byte live until its read");
        assert!(!res.is_live_at(0, 0, 40), "unread byte dead");
    }

    #[test]
    fn partial_write_is_conservative_read() {
        let mut r = ResidencyRecorder::new(1, FieldMap::Ranges(vec![0..3, 3..21]));
        r.on_write(5, 0, 0, 21);
        r.on_write(30, 0, 0, 2); // covers only part of field 0..3
        let res = r.finish(100);
        assert!(res.is_live_at(0, 1, 20), "partial write observes old value");
        assert!(
            !res.is_live_at(0, 10, 20),
            "other field untouched and unread"
        );
    }

    #[test]
    fn nearby_intervals_merge_but_exact_cycles_do_not() {
        let mut r = rec();
        for k in 0..3u64 {
            r.on_write(k * 10, 0, 0, 32);
            r.on_read(k * 10 + 2, 0, 0, 32);
        }
        let res = r.finish(100);
        // Three 3-cycle spans, gaps of 7 < MERGE_GAP: one stored interval.
        assert_eq!(res.interval_count(), 1);
        assert_eq!(res.live_bit_cycles(), 3 * 3 * 32);
        assert!(res.is_live_at(0, 0, 5), "merged gap reads as live");
    }

    #[test]
    fn out_of_range_queries_are_live() {
        let res = rec().finish(10);
        assert!(res.is_live_at(99, 0, 0));
        assert!(res.is_live_at(0, 99, 0));
    }

    #[test]
    fn segments_record_sorted_boundaries_with_kinds() {
        let mut r = ResidencyRecorder::with_segments(4, FieldMap::Row { cols: 32 });
        r.on_write(10, 0, 0, 32);
        r.on_read(20, 0, 0, 32);
        r.on_read(40, 0, 4, 8);
        r.on_invalidate(60, 0, 0, 32);
        r.on_write(100, 0, 0, 32);
        let res = r.finish(200);
        assert!(res.has_segments());
        let slot = res.slot_of(0, 0).unwrap();
        let events = res.slot_events(slot).unwrap();
        assert_eq!(
            events,
            &[
                SegmentEvent {
                    cycle: 10,
                    kind: SegmentKind::Overwritten
                },
                SegmentEvent {
                    cycle: 20,
                    kind: SegmentKind::Observed
                },
                SegmentEvent {
                    cycle: 40,
                    kind: SegmentKind::Observed
                },
                SegmentEvent {
                    cycle: 60,
                    kind: SegmentKind::Barrier
                },
                SegmentEvent {
                    cycle: 100,
                    kind: SegmentKind::Overwritten
                },
            ]
        );
        // Untouched rows have empty (but present) boundary lists.
        let other = res.slot_of(1, 0).unwrap();
        assert_eq!(res.slot_events(other).unwrap(), &[]);
    }

    #[test]
    fn same_cycle_events_merge_conservatively() {
        let mut r = ResidencyRecorder::with_segments(1, FieldMap::Row { cols: 32 });
        r.on_write(5, 0, 0, 32);
        r.on_read(5, 0, 0, 32);
        r.on_invalidate(9, 0, 0, 32);
        r.on_write(9, 0, 0, 32);
        let res = r.finish(20);
        let events = res.slot_events(0).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 5);
        assert_eq!(
            events[0].kind,
            SegmentKind::Observed,
            "an observation in the cycle dominates"
        );
        assert_eq!(events[1].cycle, 9);
        assert_eq!(
            events[1].kind,
            SegmentKind::Barrier,
            "invalidate + overwrite in one cycle cannot be pruned"
        );
    }

    #[test]
    fn segments_absent_by_default_and_partial_writes_observe() {
        let mut r = rec();
        r.on_write(10, 0, 0, 32);
        let res = r.finish(50);
        assert!(!res.has_segments());
        assert!(res.slot_events(0).is_none());

        let mut r = ResidencyRecorder::with_segments(1, FieldMap::Ranges(vec![0..3, 3..21]));
        r.on_write(5, 0, 0, 2); // partial cover of field 0
        let res = r.finish(50);
        assert_eq!(
            res.slot_events(0).unwrap(),
            &[SegmentEvent {
                cycle: 5,
                kind: SegmentKind::Observed
            }]
        );
    }

    #[test]
    fn slot_of_rejects_out_of_range() {
        let res = rec().finish(10);
        assert!(res.slot_of(99, 0).is_none());
        assert!(res.slot_of(0, 99).is_none());
        assert_eq!(res.slot_count(), 4);
        assert_eq!(res.field_map().cols(), 32);
    }

    #[test]
    fn analytical_avf_ratio() {
        let mut r = ResidencyRecorder::new(1, FieldMap::Row { cols: 32 });
        r.on_write(0, 0, 0, 32);
        r.on_read(49, 0, 0, 32);
        r.on_write(50, 0, 0, 32);
        let res = r.finish(100);
        // Live [0,49] = 50 cycles of 100, all 32 bits share fate.
        assert!((res.analytical_avf() - 0.5).abs() < 1e-12);
    }
}
