//! End-to-end capture tests: fault-free observation of a real workload
//! produces sane residency, occupancy and oracle behaviour, and the probe
//! hooks never perturb the simulated run itself.

use mbu_ace::{capture, AceStructure, LivenessOracle};
use mbu_cpu::{CoreConfig, HwComponent, Simulator};
use mbu_sram::BitCoord;
use mbu_workloads::Workload;

#[test]
fn capture_matches_unprobed_run_and_reports_liveness() {
    let core = CoreConfig::cortex_a9_like();
    let program = Workload::Stringsearch.program();

    // The probe hooks must not change the simulation: same cycle count and
    // output as an unprobed run.
    let plain = Simulator::new(core, &program).run(u64::MAX / 8);
    let map = capture(core, &program).expect("fault-free capture");
    assert_eq!(
        map.total_cycles, plain.cycles,
        "probes must not perturb timing"
    );
    assert_eq!(map.instructions, plain.instructions);

    // Every structure was recorded; the actively-exercised ones saw events
    // and have nonzero but sub-unity analytical AVF.
    assert_eq!(map.structures.len(), AceStructure::ALL.len());
    for s in [
        AceStructure::RegFile,
        AceStructure::L1iData,
        AceStructure::Itlb,
    ] {
        let r = &map.structures[&s];
        assert!(r.events > 0, "{s} saw no events");
        let avf = r.analytical_avf();
        assert!(
            avf > 0.0 && avf < 1.0,
            "{s} analytical AVF {avf} out of range"
        );
    }

    // Occupancy was sampled every cycle with a plausible series.
    assert_eq!(map.occupancy.samples, map.total_cycles);
    assert!(map.occupancy.mean_rob > 0.0);
    assert!(map.occupancy.max_rob <= core.rob_entries as usize);
    assert!(map.occupancy.max_iq <= core.iq_entries as usize);
    assert!(!map.occupancy.series.is_empty());
}

#[test]
fn oracle_dead_bits_exist_and_skip_conservatively() {
    let core = CoreConfig::cortex_a9_like();
    let program = Workload::Qsort.program();
    let oracle = LivenessOracle::build(core, &program, HwComponent::L2).expect("oracle");

    // Sample the whole L2 surface mid-run: a scaled 8 KB L2 under a tiny
    // workload must have plenty of dead bits, and not every bit dead.
    let g = Simulator::new(core, &program).component_geometry(HwComponent::L2);
    let mid = oracle.total_cycles() / 2;
    let mut dead = 0usize;
    let mut total = 0usize;
    for row in 0..g.rows() {
        for col in (0..g.cols()).step_by(8) {
            total += 1;
            if oracle.provably_masked(&[BitCoord::new(row, col)], mid) {
                dead += 1;
            }
        }
    }
    assert!(dead > 0, "no provably-dead L2 bits at mid-run");
    assert!(dead < total, "oracle claims the whole L2 is dead");

    // Past the end of the observed run nothing is provable.
    assert!(!oracle.provably_masked(&[BitCoord::new(0, 0)], oracle.total_cycles() + 1));
}
