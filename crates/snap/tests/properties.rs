//! Property tests of the snapshot layer: at *arbitrary* cycles — including
//! mid-miss cache states, partially-full ROBs and draining store buffers —
//! a snapshot→restore roundtrip is bit-identical, and a restored machine
//! steps cycle-for-cycle like the original.

use mbu_cpu::{CoreConfig, HwComponent, Simulator};
use mbu_sram::{BitCoord, Restorable, Snapshot};
use mbu_workloads::Workload;
use proptest::prelude::*;
use std::sync::OnceLock;

const COMPONENTS: [HwComponent; 6] = [
    HwComponent::L1D,
    HwComponent::L1I,
    HwComponent::L2,
    HwComponent::RegFile,
    HwComponent::DTlb,
    HwComponent::ITlb,
];

/// Shared fault-free execution time so every case can pick a uniformly
/// random in-run cycle without re-running the golden simulation.
fn t_ff() -> u64 {
    static T: OnceLock<u64> = OnceLock::new();
    *T.get_or_init(|| {
        let p = Workload::Stringsearch.program();
        Simulator::new(CoreConfig::cortex_a9_like(), &p)
            .run(u64::MAX / 8)
            .cycles
    })
}

fn sim_at(cycle: u64) -> Simulator {
    let p = Workload::Stringsearch.program();
    let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
    sim.run_until_cycle(cycle);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot → restore is bit-exact at any cycle, for any injectable
    /// structure, even after the structure was corrupted in between.
    #[test]
    fn roundtrip_is_bit_exact_for_every_component(
        frac in 0u64..1000,
        comp_idx in 0usize..6,
        row_sel in any::<u64>(),
        col_sel in any::<u64>(),
    ) {
        let cycle = t_ff() * frac / 1000;
        let mut sim = sim_at(cycle);
        let saved = sim.snapshot();
        prop_assert_eq!(saved.cycle(), cycle);
        // Corrupt the chosen structure, then rewind: the flip must vanish.
        let comp = COMPONENTS[comp_idx];
        let g = sim.component_geometry(comp);
        let coord = BitCoord::new(
            (row_sel % g.rows() as u64) as usize,
            (col_sel % g.cols() as u64) as usize,
        );
        sim.inject_flips(comp, &[coord]);
        sim.restore(&saved);
        prop_assert_eq!(sim.snapshot(), saved.clone());
        // And re-applying the identical flip reproduces the corrupted state
        // exactly (fast-forwarded injection ≡ injection after a full run).
        sim.inject_flips(comp, &[coord]);
        let corrupted = sim.snapshot();
        sim.restore(&saved);
        sim.inject_flips(comp, &[coord]);
        prop_assert_eq!(sim.snapshot(), corrupted);
    }

    /// A fresh simulator restored from a mid-run checkpoint advances
    /// cycle-for-cycle identically to the machine it was captured from.
    #[test]
    fn restored_machine_steps_identically(frac in 0u64..1000, steps in 1u64..96) {
        let cycle = t_ff() * frac / 1000;
        let mut original = sim_at(cycle);
        let saved = original.snapshot();
        let p = Workload::Stringsearch.program();
        let mut restored = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        restored.restore(&saved);
        for _ in 0..steps {
            let a = original.step();
            let b = restored.step();
            prop_assert_eq!(a, b);
            prop_assert!(original.converged_with(&restored.snapshot()));
        }
        prop_assert_eq!(original.snapshot(), restored.snapshot());
    }
}
